"""One configuration surface for the runtime and the driver.

Historically ``DSPRuntime(...)`` grew engine knobs (optimizer, plan
cache, admission control, retries) while ``connect(...)`` grew driver
knobs (result format, caches, default timeout) — two overlapping kwarg
lists for one logical thing: how this DSP instance should behave.
:class:`RuntimeConfig` collapses both into a single frozen dataclass
accepted by ``DSPRuntime(config=...)`` and ``connect(config=...)``.

The old keyword arguments still work for one release; they are funneled
through :func:`merge_legacy_kwargs`, which folds them into a config and
emits a ``DeprecationWarning`` per kwarg.
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class RuntimeConfig:
    """Every tuning knob of the runtime and the driver, in one place.

    Engine side: ``optimize`` (the XQuery optimizer), ``pushdown``
    (source predicate/projection pushdown), the plan cache bound,
    admission control, and the transient-source retry policy.
    Driver side: the result ``format``, simulated metadata latency,
    the statement/metadata cache bounds, and the per-statement default
    deadline.
    """

    # -- engine ------------------------------------------------------------
    optimize: bool = True
    pushdown: bool = True
    #: Statistics-driven cost-based planning (join build-side choice,
    #: for-clause reordering, selectivity-ordered conjuncts). Requires
    #: ``optimize``; also gated by the ``REPRO_COST_PLANNING`` env var.
    cost: bool = True
    plan_cache_capacity: int = 256
    max_concurrent_queries: int = 32
    admission_queue_timeout: float = 5.0
    max_inflight_rows: Optional[int] = 1_000_000
    retry_policy: Optional[object] = None  # engine.lifecycle.RetryPolicy
    #: Rows per column-oriented batch in the vectorized streaming
    #: executor. ``0`` disables batching (tuple-at-a-time pipeline).
    #: Overridable per process with the ``REPRO_BATCH_SIZE`` env var.
    batch_size: int = 1024
    #: Worker processes for partitioned scatter/gather execution of
    #: vectorized scans. ``0`` (the default) disables parallelism;
    #: ``N >= 2`` splits eligible scans into up to N partitions run on
    #: a process pool. Overridable with ``REPRO_PARALLELISM``.
    parallelism: int = 0
    #: Minimum estimated row count before a scan is worth scattering
    #: across the pool — small scans must not pay the fork/IPC tax.
    #: Overridable with ``REPRO_PARALLEL_MIN_ROWS``.
    parallel_min_rows: int = 5_000

    # -- driver ------------------------------------------------------------
    format: str = "delimited"
    metadata_latency: float = 0.0
    statement_cache_capacity: int = 256
    metadata_cache_capacity: int = 1024
    default_timeout: Optional[float] = None
    #: Socket connect + handshake deadline (seconds) for ``repro+tcp``
    #: remote connections; also the DSN's ``connect_timeout`` parameter.
    remote_connect_timeout: float = 10.0

    def replace(self, **changes) -> "RuntimeConfig":
        """A copy with *changes* applied (unknown names raise)."""
        return dataclasses.replace(self, **changes)


#: Field names accepted as legacy keyword arguments, per call site.
ENGINE_FIELDS = frozenset({
    "optimize", "pushdown", "cost", "plan_cache_capacity",
    "max_concurrent_queries", "admission_queue_timeout",
    "max_inflight_rows", "retry_policy", "batch_size",
    "parallelism", "parallel_min_rows",
})
DRIVER_FIELDS = frozenset({
    "format", "metadata_latency", "statement_cache_capacity",
    "metadata_cache_capacity", "default_timeout",
    "remote_connect_timeout",
})
ALL_FIELDS = ENGINE_FIELDS | DRIVER_FIELDS


def merge_legacy_kwargs(config: RuntimeConfig, legacy: dict, what: str,
                        allowed: frozenset = ALL_FIELDS,
                        ignore_none: bool = False,
                        warn: bool = True) -> RuntimeConfig:
    """Fold pre-RuntimeConfig keyword arguments into *config*.

    Unknown names raise ``TypeError`` (matching normal keyword
    behaviour); each accepted kwarg emits a ``DeprecationWarning``
    naming the replacement. ``ignore_none`` reproduces the old
    ``connect()`` semantics where ``None`` meant "use the default".
    """
    changes = {}
    for key, value in legacy.items():
        if key not in allowed:
            raise TypeError(
                f"{what} got an unexpected keyword argument {key!r}")
        if ignore_none and value is None:
            continue
        changes[key] = value
    if not changes:
        return config
    if warn:
        names = ", ".join(sorted(changes))
        warnings.warn(
            f"passing {names} to {what} directly is deprecated; "
            f"pass config=RuntimeConfig(...) instead",
            DeprecationWarning, stacklevel=3)
    return config.replace(**changes)
