"""DML execution: SQL mutations compiled to source-level plans.

The paper's translator is read-only — INSERT/UPDATE/DELETE never reach
the XQuery generator. Instead the engine turns a parsed
:class:`repro.sql.ast.MutationStatement` into a :class:`MutationPlan`:
victim rows are selected by scanning the target table in canonical
order and evaluating the full WHERE predicate per row with the
reference SQL executor's expression evaluator (so DML predicates get
exactly the SELECT path's SQL-92 semantics — three-valued logic, type
promotion, LIKE, CASE, ...), and SET/VALUES expressions are evaluated
and coerced to the column types the same way. The plan carries plain
data (:class:`repro.sources.spi.Mutation` batches keyed by row
ordinal) plus the version token the victims were selected under, so
the source can refuse a stale plan.

DML expressions are restricted to the subquery-free subset: scalar
subqueries, EXISTS, IN (SELECT ...), and quantified comparisons in a
WHERE/SET/VALUES position raise ``UnsupportedSQLError``; aggregates
raise ``SQLSemanticError`` (there is no group to aggregate over).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SQLSemanticError, UnsupportedSQLError
from ..sql import ast
from ..sources.spi import DataSource, Mutation
from .sqlexec import Binding, SQLExecutor, TableProvider, _Env
from .table import coerce_value

__all__ = [
    "MutationPlan",
    "mutation_parameter_count",
    "plan_mutation",
]


@dataclass(frozen=True)
class MutationPlan:
    """One statement's mutations, ready for ``apply_mutations``.

    ``version`` is the target table's token at victim-selection time;
    it travels to the source as ``expected_version``. ``rowcount`` is
    the statement's affected-row count (known at plan time: the engine
    selected the victims)."""

    source: DataSource
    table: str
    version: object
    mutations: tuple[Mutation, ...]
    rowcount: int


def _check_scalar(expr: ast.Expr, where: str) -> None:
    """Enforce the DML expression subset: no subqueries, no aggregates."""
    for node in ast.walk(expr):
        if ast.subqueries_of(node):
            raise UnsupportedSQLError(
                f"subqueries are not supported in DML {where}")
        if isinstance(node, ast.AggregateCall):
            raise SQLSemanticError(
                f"aggregate functions are not allowed in DML {where}")


def mutation_parameter_count(statement: ast.MutationStatement) -> int:
    """The number of ``?`` placeholders the statement binds (the
    highest parameter ordinal across all of its expressions)."""
    highest = 0
    for expr in _expressions_of(statement):
        for node in ast.walk(expr):
            if isinstance(node, ast.Parameter):
                highest = max(highest, node.index)
    return highest


def _expressions_of(statement: ast.MutationStatement):
    if isinstance(statement, ast.Insert):
        for row in statement.rows:
            yield from row
    elif isinstance(statement, ast.Update):
        for assignment in statement.assignments:
            yield assignment.value
        if statement.where is not None:
            yield statement.where
    else:
        assert isinstance(statement, ast.Delete)
        if statement.where is not None:
            yield statement.where


def plan_mutation(runtime, statement: ast.MutationStatement,
                  metadata, parameters=()) -> MutationPlan:
    """Bind and evaluate *statement* into a :class:`MutationPlan`.

    *metadata* is the driver-fetched :class:`TableMetadata` of the
    target table (the same stage-two metadata SELECT uses); *runtime*
    resolves it to a writable (source, physical table) pair. The
    returned plan has not been applied — the caller (the transaction
    manager) decides when ``apply_mutations`` runs.
    """
    source, table = runtime.write_target(metadata.namespace,
                                         metadata.function_name)
    columns = [(c.name, c.sql_type) for c in metadata.columns]
    executor = SQLExecutor(TableProvider(None), parameters)
    if isinstance(statement, ast.Insert):
        mutation = _plan_insert(statement, columns, executor, table)
        version = source.version(table)
        return MutationPlan(source=source, table=table, version=version,
                            mutations=(mutation,),
                            rowcount=len(mutation.rows))
    # UPDATE/DELETE select victims against a snapshot scan; the token is
    # read first so a concurrent change between token and scan surfaces
    # as a version mismatch at apply time, never as corrupted rows.
    version = source.version(table)
    rows = [tuple(row) for row in source.scan(table, None, None)]
    binding = Binding(name=statement.table.name,
                      columns=tuple(name for name, _t in columns),
                      schema=metadata.schema, table=metadata.table)
    if isinstance(statement, ast.Update):
        mutation = _plan_update(statement, columns, executor, binding,
                                rows, table)
        count = len(mutation.changes)
    else:
        assert isinstance(statement, ast.Delete)
        mutation = _plan_delete(statement, executor, binding, rows, table)
        count = len(mutation.ordinals)
    return MutationPlan(source=source, table=table, version=version,
                        mutations=(mutation,), rowcount=count)


def _plan_insert(statement: ast.Insert, columns, executor,
                 table: str) -> Mutation:
    names = [name for name, _t in columns]
    if statement.columns:
        targets = list(statement.columns)
        seen: set[str] = set()
        for name in targets:
            if name not in names:
                raise SQLSemanticError(
                    f"table {statement.table.name} has no column {name}")
            if name in seen:
                raise SQLSemanticError(
                    f"column {name} named twice in INSERT column list")
            seen.add(name)
    else:
        targets = names
    env = _Env([], ())  # VALUES rows see no range variables
    position = {name: i for i, name in enumerate(names)}
    types = [t for _n, t in columns]
    rows: list[tuple] = []
    for value_row in statement.rows:
        if len(value_row) != len(targets):
            raise SQLSemanticError(
                f"INSERT targets {len(targets)} columns, VALUES row "
                f"has {len(value_row)} expressions")
        values: list[object] = [None] * len(names)
        for name, expr in zip(targets, value_row):
            _check_scalar(expr, "VALUES")
            index = position[name]
            values[index] = coerce_value(executor._eval(expr, env),
                                         types[index])
        rows.append(tuple(values))
    return Mutation(kind="insert", table=table, rows=tuple(rows))


def _plan_update(statement: ast.Update, columns, executor,
                 binding: Binding, rows, table: str) -> Mutation:
    names = [name for name, _t in columns]
    position = {name: i for i, name in enumerate(names)}
    types = [t for _n, t in columns]
    seen: set[str] = set()
    for assignment in statement.assignments:
        if assignment.column not in position:
            raise SQLSemanticError(
                f"table {statement.table.name} has no column "
                f"{assignment.column}")
        if assignment.column in seen:
            raise SQLSemanticError(
                f"column {assignment.column} assigned twice in UPDATE")
        seen.add(assignment.column)
        _check_scalar(assignment.value, "SET")
    if statement.where is not None:
        _check_scalar(statement.where, "WHERE")
    changes: list[tuple[int, tuple]] = []
    for ordinal, row in enumerate(rows):
        env = _Env([binding], (row,))
        if statement.where is not None and \
                executor._truth(statement.where, env) is not True:
            continue
        new_row = list(row)
        for assignment in statement.assignments:
            index = position[assignment.column]
            new_row[index] = coerce_value(
                executor._eval(assignment.value, env), types[index])
        changes.append((ordinal, tuple(new_row)))
    return Mutation(kind="update", table=table, changes=tuple(changes))


def _plan_delete(statement: ast.Delete, executor, binding: Binding,
                 rows, table: str) -> Mutation:
    if statement.where is not None:
        _check_scalar(statement.where, "WHERE")
    ordinals: list[int] = []
    for ordinal, row in enumerate(rows):
        if statement.where is not None:
            env = _Env([binding], (row,))
            if executor._truth(statement.where, env) is not True:
                continue
        ordinals.append(ordinal)
    return Mutation(kind="delete", table=table, ordinals=tuple(ordinals))
