"""In-memory relational storage backing physical data services.

The paper's physical data services wrap relational sources (e.g. an Oracle
CUSTOMERS table). Here the relational source is an in-memory, column-typed
table; the DSP runtime materializes its rows as flat XML elements when the
corresponding data service function is called.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field
from decimal import Decimal

from ..errors import CatalogError, UnknownArtifactError
from ..sql.types import SQLType

_PYTHON_KINDS = {
    "SMALLINT": (int,),
    "INTEGER": (int,),
    "BIGINT": (int,),
    "DECIMAL": (Decimal, int),
    "REAL": (float, int),
    "DOUBLE": (float, int),
    "CHAR": (str,),
    "VARCHAR": (str,),
    "DATE": (datetime.date,),
    "TIME": (datetime.time,),
    "TIMESTAMP": (datetime.datetime,),
}


def coerce_value(value: object, sql_type: SQLType) -> object:
    """Check/coerce a Python value for storage under *sql_type*.

    None always passes (SQL NULL). ints are widened to Decimal/float for
    DECIMAL/floating columns; anything else must already match.
    """
    if value is None:
        return None
    kinds = _PYTHON_KINDS.get(sql_type.kind)
    if kinds is None:
        raise CatalogError(f"unsupported column type {sql_type}")
    if isinstance(value, bool) or not isinstance(value, kinds):
        raise CatalogError(
            f"value {value!r} is not valid for column type {sql_type}")
    if sql_type.kind == "DECIMAL" and isinstance(value, int):
        return Decimal(value)
    if sql_type.kind in ("REAL", "DOUBLE") and isinstance(value, int):
        return float(value)
    if sql_type.kind == "TIMESTAMP" and not \
            isinstance(value, datetime.datetime):
        raise CatalogError(
            f"value {value!r} is not valid for column type {sql_type}")
    if sql_type.kind == "DATE" and isinstance(value, datetime.datetime):
        raise CatalogError(
            f"value {value!r} is not valid for column type {sql_type}")
    return value


@dataclass
class Table:
    """A named, typed, ordered collection of rows.

    ``generation`` is the table's version token (compared by equality
    only): every change to the row set — inserts, and the write path's
    copy-on-write row swaps — moves it. Values are drawn from a private
    allocator that never rewinds, even though transaction rollback may
    restore ``generation`` itself to an earlier value (the visible rows
    *are* that earlier state, so caches keyed on the old token become
    valid again). Because rolled-back generations are never re-issued,
    one token identifies exactly one row-set for the table's lifetime —
    a cache entry recorded mid-transaction can never be mistaken for
    state written after the rollback."""

    name: str
    columns: list[tuple[str, SQLType]]
    rows: list[tuple] = field(default_factory=list)
    generation: int = 0
    _alloc: int = field(default=0, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        seen = set()
        for column_name, _t in self.columns:
            if column_name in seen:
                raise CatalogError(
                    f"duplicate column {column_name} in table {self.name}")
            seen.add(column_name)

    def column_names(self) -> tuple[str, ...]:
        return tuple(name for name, _t in self.columns)

    def column_types(self) -> tuple[SQLType, ...]:
        return tuple(t for _n, t in self.columns)

    def insert(self, *values: object) -> None:
        """Append one row, type-checking each value."""
        if len(values) != len(self.columns):
            raise CatalogError(
                f"table {self.name} has {len(self.columns)} columns, "
                f"got {len(values)} values")
        row = tuple(coerce_value(value, sql_type)
                    for value, (_n, sql_type) in zip(values, self.columns))
        self.rows.append(row)
        self._advance()

    def insert_many(self, rows) -> None:
        for row in rows:
            self.insert(*row)

    def replace_rows(self, rows: list[tuple]) -> None:
        """Swap in a new row list (copy-on-write mutation): in-flight
        iterators keep the old list — the snapshot read the write path
        relies on — and the generation token moves forward."""
        self.rows = rows
        self._advance()

    def _advance(self) -> None:
        # max() because rollback restores ``generation`` to an older
        # value without touching the allocator: the next write must
        # skip past every generation the rolled-back transaction used.
        self._alloc = max(self._alloc, self.generation) + 1
        self.generation = self._alloc


class Storage:
    """A collection of tables — the 'relational backend'."""

    def __init__(self):
        self._tables: dict[str, Table] = {}

    def create_table(self, name: str,
                     columns: list[tuple[str, SQLType]]) -> Table:
        if name in self._tables:
            raise CatalogError(f"table {name} already exists")
        table = Table(name=name, columns=list(columns))
        self._tables[name] = table
        return table

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise UnknownArtifactError(
                f"no table {name} in storage") from None

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def table_names(self) -> list[str]:
        return sorted(self._tables)
