"""Query lifecycle control: deadlines, cancellation, admission, retries.

The paper's driver fronts heterogeneous enterprise sources; at serving
scale the mediator — not the client — must absorb slow and flaky
backends. This module provides the control plane every execution now
carries:

* :class:`QueryContext` — one per query: an absolute deadline, a
  :class:`CancellationToken`, and row accounting. The compiled FLWOR
  pipeline and the streaming codec call :meth:`QueryContext.tick` at
  tuple granularity (the check itself fires once per batch), so a
  ``Cursor.cancel()`` from another thread or an expired deadline aborts
  an in-flight stream within one batch.
* :class:`AdmissionController` — bounds concurrent queries (a
  queue-with-timeout, not an immediate reject), and bounds total
  in-flight streamed rows across all open queries so a runaway join
  cannot hold the runtime's memory hostage.
* :class:`RetryPolicy` — exponential backoff with jitter for
  ``TransientSourceError`` from physical sources, capped by the query's
  remaining deadline.

Everything is standard library and thread-safe; cancellation is a flag
read by the executing thread at its next check point, never a forced
interrupt.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Callable, Optional

from .. import clock
from ..errors import (
    AdmissionRejectedError,
    QueryCancelledError,
    QueryTimeoutError,
)

#: Reserved variable-frame key under which the active QueryContext rides
#: through the compiled executor's per-row frames. Defined next to
#: ``_Frame`` (repro.xquery.evaluator) so the executor needs no import
#: from the engine layer; re-exported here as the canonical name.
from ..xquery.evaluator import CONTEXT_KEY  # noqa: F401

#: How many ticks (frames/rows) pass between deadline/cancel checks.
DEFAULT_CHECK_INTERVAL = 64


class CancellationToken:
    """A thread-safe one-way flag: once cancelled, forever cancelled.

    ``cancel()`` is safe from any thread; the executing thread observes
    the flag at its next tuple-batch check point.
    """

    __slots__ = ("_cancelled", "reason")

    def __init__(self):
        self._cancelled = False
        self.reason: Optional[str] = None

    def cancel(self, reason: Optional[str] = None) -> None:
        # A plain attribute store is atomic in CPython; no lock needed
        # for a monotonic bool.
        self.reason = reason
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled


class QueryContext:
    """Per-query lifecycle state carried through the execution layers.

    Built once per ``Cursor.execute`` (or handed to ``DSPRuntime``
    methods directly); travels to the compiled pipeline inside the root
    variable frame under :data:`CONTEXT_KEY` and to physical sources via
    ``DSPRuntime.call_function(..., context=...)``.
    """

    __slots__ = ("deadline", "timeout", "token", "rows_emitted",
                 "source_calls", "rows_buffered", "_ticks", "_mask")

    def __init__(self, timeout: Optional[float] = None,
                 token: Optional[CancellationToken] = None,
                 check_interval: int = DEFAULT_CHECK_INTERVAL):
        if check_interval < 1:
            raise ValueError("check_interval must be >= 1")
        #: Absolute monotonic deadline (None = no deadline). Computed at
        #: construction, so queue wait and translation count against it.
        self.timeout = timeout
        self.deadline = (None if timeout is None
                         else clock.monotonic() + timeout)
        self.token = CancellationToken() if token is None else token
        self.rows_emitted = 0
        self.source_calls = 0
        #: Rows materialized inside the executor ahead of the client's
        #: fetch position (whole batches buffered by the vectorized
        #: pipeline). Admission charges max(buffered, fetched).
        self.rows_buffered = 0
        self._ticks = 0
        # Round the interval down to a power of two so the batch test is
        # a single mask.
        self._mask = (1 << (check_interval.bit_length() - 1)) - 1

    # -- checks (hot path) -------------------------------------------------

    def tick(self) -> None:
        """Count one tuple/frame; every batch, run the full check."""
        self._ticks += 1
        if (self._ticks & self._mask) == 0:
            self.check()

    def tick_rows(self, count: int) -> None:
        """Count *count* tuples at once (one columnar batch) and run the
        full check — batch granularity is the vectorized executor's tick
        granularity, so cancellation latency is bounded by one batch."""
        self._ticks += count
        self.check()

    def check(self) -> None:
        """Raise if the query has been cancelled or timed out."""
        if self.token._cancelled:
            reason = self.token.reason
            raise QueryCancelledError(
                "query cancelled" + (f": {reason}" if reason else ""))
        if self.deadline is not None and clock.monotonic() > self.deadline:
            raise QueryTimeoutError(
                f"query exceeded its {self.timeout:.3f}s deadline")

    # -- bookkeeping -------------------------------------------------------

    def remaining(self) -> Optional[float]:
        """Seconds until the deadline (None when unbounded); never
        negative."""
        if self.deadline is None:
            return None
        return max(0.0, self.deadline - clock.monotonic())

    def cancel(self, reason: Optional[str] = None) -> None:
        self.token.cancel(reason)

    @property
    def cancelled(self) -> bool:
        return self.token.cancelled


class AdmissionSlot:
    """One admitted query's hold on the controller; released exactly
    once (idempotent), returning its concurrency slot and row budget.
    Idempotency is arbitrated by the controller's lock, keeping the
    slot itself allocation-light (one per query on the hot path)."""

    __slots__ = ("_controller", "rows", "released")

    def __init__(self, controller: "AdmissionController"):
        self._controller = controller
        self.rows = 0
        self.released = False

    def note_rows(self, count: int) -> None:
        """Charge *count* freshly streamed rows against the global
        in-flight budget; raises ``AdmissionRejectedError`` when the
        budget is exhausted."""
        self.rows += count
        self._controller._charge_rows(count)

    def release(self) -> None:
        self._controller._release(self)


class AdmissionController:
    """Bounds concurrent queries and total in-flight streamed rows.

    ``acquire()`` queues (bounded by *queue_timeout* or the query's
    remaining deadline, whichever is smaller) rather than failing fast:
    under a short burst, queries wait their turn; under sustained
    overload, they are rejected with ``AdmissionRejectedError``.
    """

    def __init__(self, max_concurrent: int = 32,
                 queue_timeout: float = 5.0,
                 max_inflight_rows: Optional[int] = None):
        if max_concurrent < 1:
            raise ValueError("max_concurrent must be >= 1")
        self.max_concurrent = max_concurrent
        self.queue_timeout = queue_timeout
        self.max_inflight_rows = max_inflight_rows
        self._lock = threading.Lock()
        self._available = threading.Semaphore(max_concurrent)
        self._active = 0
        self._queued = 0
        self._admitted_total = 0
        self._rejected_total = 0
        self._inflight_rows = 0

    def acquire(self, context: Optional[QueryContext] = None) \
            -> AdmissionSlot:
        """Wait for a concurrency slot; reject on queue timeout.

        The wait is bounded by the controller's *queue_timeout* and by
        the query's remaining deadline — a query must never spend its
        whole deadline queueing and then start work with nothing left.
        """
        # Fast path: a free slot needs no queue bookkeeping (the common
        # case — only a saturated controller pays for the wait).
        admitted = self._available.acquire(blocking=False)
        if not admitted:
            timeout = self.queue_timeout
            if context is not None:
                remaining = context.remaining()
                if remaining is not None:
                    timeout = min(timeout, remaining)
            with self._lock:
                self._queued += 1
            try:
                admitted = self._available.acquire(timeout=timeout)
            finally:
                with self._lock:
                    self._queued -= 1
        if not admitted:
            with self._lock:
                self._rejected_total += 1
            raise AdmissionRejectedError(
                f"admission queue timed out after {timeout:.3f}s "
                f"({self.max_concurrent} queries already running)")
        with self._lock:
            self._active += 1
            self._admitted_total += 1
        return AdmissionSlot(self)

    def _charge_rows(self, count: int) -> None:
        if self.max_inflight_rows is None:
            with self._lock:
                self._inflight_rows += count
            return
        with self._lock:
            self._inflight_rows += count
            over = self._inflight_rows > self.max_inflight_rows
        if over:
            raise AdmissionRejectedError(
                f"in-flight streamed rows exceeded the "
                f"{self.max_inflight_rows}-row budget")

    def _release(self, slot: AdmissionSlot) -> None:
        with self._lock:
            if slot.released:  # idempotent: double release frees nothing
                return
            slot.released = True
            self._active -= 1
            self._inflight_rows -= slot.rows
        self._available.release()

    def stats(self) -> dict:
        """A consistent snapshot for ``Connection.stats()``."""
        with self._lock:
            return {
                "active": self._active,
                "queued": self._queued,
                "admitted": self._admitted_total,
                "rejected": self._rejected_total,
                "inflight_rows": self._inflight_rows,
                "max_concurrent": self.max_concurrent,
                "max_inflight_rows": self.max_inflight_rows,
            }


class TenantSlot:
    """One tenant-admitted query's hold on its :class:`TenantQuota`;
    mirrors :class:`AdmissionSlot` one layer up — released exactly once,
    returning the concurrency slot and every charged row."""

    __slots__ = ("_quota", "rows", "released")

    def __init__(self, quota: "TenantQuota"):
        self._quota = quota
        self.rows = 0
        self.released = False

    def note_rows(self, count: int) -> None:
        """Charge *count* rows served to this tenant against its
        in-flight budget; raises ``AdmissionRejectedError`` when the
        tenant's budget is exhausted."""
        self.rows += count
        self._quota._charge_rows(count)

    def release(self) -> None:
        self._quota._release(self)


class TenantQuota:
    """Per-tenant resource bounds, layered *above* the runtime's global
    :class:`AdmissionController`.

    The global controller protects the runtime as a whole (it queues
    briefly, then rejects); the tenant quota protects tenants from each
    other, so it **fails fast** — a tenant at its concurrency cap is
    rejected immediately rather than allowed to camp on the shared
    queue. Three knobs, each optional:

    * ``max_concurrent`` — queries a tenant may have live at once (a
      streamed result counts until exhausted or closed);
    * ``max_inflight_rows`` — rows served to the tenant and not yet
      released by cursor exhaustion/close;
    * ``max_timeout`` — ceiling on any per-execute deadline: a client
      asking for more (or for no deadline at all) is clamped to this.
    """

    def __init__(self, max_concurrent: Optional[int] = None,
                 queue_timeout: float = 0.0,
                 max_inflight_rows: Optional[int] = None,
                 max_timeout: Optional[float] = None):
        if max_concurrent is not None and max_concurrent < 1:
            raise ValueError("max_concurrent must be >= 1")
        self.max_concurrent = max_concurrent
        self.queue_timeout = queue_timeout
        self.max_inflight_rows = max_inflight_rows
        self.max_timeout = max_timeout
        self._lock = threading.Lock()
        self._active = 0
        self._admitted_total = 0
        self._rejected_total = 0
        self._inflight_rows = 0

    def clamp_timeout(self, timeout: Optional[float]) -> Optional[float]:
        """The effective per-execute deadline under this quota."""
        if self.max_timeout is None:
            return timeout
        if timeout is None:
            return self.max_timeout
        return min(timeout, self.max_timeout)

    def acquire(self) -> TenantSlot:
        """Claim a tenant concurrency slot; fail-fast on a full quota."""
        with self._lock:
            if (self.max_concurrent is not None
                    and self._active >= self.max_concurrent):
                self._rejected_total += 1
                raise AdmissionRejectedError(
                    f"tenant quota: {self.max_concurrent} queries "
                    f"already running for this tenant")
            self._active += 1
            self._admitted_total += 1
        return TenantSlot(self)

    def _charge_rows(self, count: int) -> None:
        with self._lock:
            self._inflight_rows += count
            over = (self.max_inflight_rows is not None
                    and self._inflight_rows > self.max_inflight_rows)
        if over:
            raise AdmissionRejectedError(
                f"tenant quota: in-flight rows exceeded the "
                f"{self.max_inflight_rows}-row tenant budget")

    def _release(self, slot: TenantSlot) -> None:
        with self._lock:
            if slot.released:
                return
            slot.released = True
            self._active -= 1
            self._inflight_rows -= slot.rows

    def stats(self) -> dict:
        """A consistent snapshot for the server's ``stats`` verb."""
        with self._lock:
            return {
                "active": self._active,
                "admitted": self._admitted_total,
                "rejected": self._rejected_total,
                "inflight_rows": self._inflight_rows,
                "max_concurrent": self.max_concurrent,
                "max_inflight_rows": self.max_inflight_rows,
                "max_timeout": self.max_timeout,
            }


class RetryPolicy:
    """Exponential backoff with full jitter for transient source faults.

    ``attempts`` is the total number of tries (1 = no retries). Delays
    are ``base * 2**n`` capped at ``max_backoff``, multiplied by a
    uniform jitter factor in ``[1 - jitter, 1]`` so a thundering herd of
    retries decorrelates. Sleeps are additionally capped by the query's
    remaining deadline: a retry never outlives the query.
    """

    def __init__(self, attempts: int = 3, base: float = 0.05,
                 max_backoff: float = 2.0, jitter: float = 0.5,
                 sleep: Callable[[float], None] = time.sleep,
                 rng: Optional[random.Random] = None):
        if attempts < 1:
            raise ValueError("attempts must be >= 1")
        if not 0.0 <= jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        self.attempts = attempts
        self.base = base
        self.max_backoff = max_backoff
        self.jitter = jitter
        self._sleep = sleep
        self._rng = rng if rng is not None else random.Random()

    def backoff(self, attempt: int) -> float:
        """The jittered delay before retry number *attempt* (0-based)."""
        delay = min(self.max_backoff, self.base * (2 ** attempt))
        if self.jitter:
            delay *= 1.0 - self.jitter * self._rng.random()
        return delay

    def sleep_before_retry(self, attempt: int,
                           context: Optional[QueryContext] = None) -> None:
        """Back off before retry *attempt*, respecting the deadline.

        Raises ``QueryTimeoutError`` (via ``context.check()``) rather
        than sleeping when the deadline has already passed.
        """
        delay = self.backoff(attempt)
        if context is not None:
            context.check()
            remaining = context.remaining()
            if remaining is not None:
                delay = min(delay, remaining)
        if delay > 0:
            self._sleep(delay)


#: Shared permissive defaults for runtimes that don't configure their own.
def default_admission_controller() -> AdmissionController:
    return AdmissionController(max_concurrent=32, queue_timeout=5.0,
                               max_inflight_rows=1_000_000)
