"""Reference SQL-92 executor — the translator's correctness oracle.

The paper's first translation goal (section 3.2) is correctness: "the
XQuery must do what the SQL query would have done". To make that testable,
this module evaluates the *same* SQL AST directly over the backing tables
with textbook SQL-92 semantics (three-valued logic, NULL-skipping
aggregates, bag-semantics set operations). Integration tests then assert
that translate → XQuery-execute → decode produces the same multiset of
rows as this executor.

The executor is deliberately naive (nested loops, no indexes): clarity
over speed, since its job is semantics, not performance. It is also the
"direct relational" baseline for the end-to-end benchmarks (experiment
E12 in DESIGN.md).
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass
from decimal import Decimal, InvalidOperation

from ..errors import SQLSemanticError
from ..sql import ast
from ..sql.types import SQLType
from ..xquery.functions import sql_like_match
from .. import clock

#: SQL truth values: True, False, and None for UNKNOWN.
Truth = bool | None


@dataclass(frozen=True)
class Binding:
    """One range variable in a FROM scope."""

    name: str                 # range variable: alias or table name
    columns: tuple[str, ...]
    schema: str | None = None
    table: str | None = None  # underlying table name (None for derived)
    aliased: bool = False     # if aliased, schema.table qualification is off


class Relation:
    """An intermediate result: bindings plus rows of per-binding tuples."""

    def __init__(self, bindings: list[Binding],
                 rows: list[tuple[tuple, ...]]):
        self.bindings = bindings
        self.rows = rows


@dataclass
class ResultTable:
    """Final result: flat column list and value rows."""

    columns: list[str]
    rows: list[tuple]


class _Env:
    """Evaluation environment: a scope row plus a link to the outer
    query's environment for correlated subqueries."""

    __slots__ = ("bindings", "row", "parent", "group_rows")

    def __init__(self, bindings, row, parent=None, group_rows=None):
        self.bindings = bindings
        self.row = row
        self.parent = parent
        # For grouped queries: the list of (bindings-aligned) rows of the
        # current group, used by aggregate evaluation.
        self.group_rows = group_rows


def canonical_value(value: object) -> tuple:
    """Canonical hashable form for grouping/distinct/set-op row keys.

    NULLs compare equal to each other here (SQL GROUP BY / DISTINCT / set
    operation semantics), and numeric kinds unify.
    """
    if value is None:
        return ("null",)
    if isinstance(value, bool):
        return ("b", value)
    if isinstance(value, float):
        return ("n", Decimal(repr(value)).normalize())
    if isinstance(value, (int, Decimal)):
        return ("n", Decimal(value).normalize())
    if isinstance(value, str):
        return ("s", value)
    if isinstance(value, datetime.datetime):
        return ("dt", value.isoformat())
    if isinstance(value, datetime.date):
        return ("d", value.isoformat())
    if isinstance(value, datetime.time):
        return ("t", value.isoformat())
    raise SQLSemanticError(f"cannot key value {value!r}")


def row_key(row: tuple) -> tuple:
    return tuple(canonical_value(v) for v in row)


class TableProvider:
    """Resolves table references to (column names, rows).

    The default implementation reads a ``repro.engine.table.Storage``;
    the DSP runtime provides one that goes through data service functions.
    """

    def __init__(self, storage):
        self._storage = storage

    def resolve(self, ref: ast.TableRef) \
            -> tuple[list[str], list[tuple], str | None]:
        table = self._storage.table(ref.name)
        return list(table.column_names()), list(table.rows), None


class SQLExecutor:
    """Evaluates SQL Query ASTs with SQL-92 semantics.

    ``hash_joins`` enables a hash-based fast path for inner/outer joins
    whose condition contains equality conjuncts between the two sides:
    matching pairs are found through a hash table built on the smaller
    input instead of the quadratic nested loop, with any non-equality
    conjuncts kept as residual filters. Output rows, their order, and
    NULL/outer-join semantics are identical to the nested loop; the
    fast path declines (falls back) whenever key types could make
    hashing diverge from SQL comparison semantics.
    """

    def __init__(self, provider: TableProvider,
                 parameters: list | tuple = (), *,
                 hash_joins: bool = True):
        self._provider = provider
        self._parameters = list(parameters)
        self._hash_joins = hash_joins

    # -- entry point ------------------------------------------------------

    def execute(self, query: ast.Query) -> ResultTable:
        return self._execute_query(query, env=None)

    def _execute_query(self, query: ast.Query,
                       env: _Env | None) -> ResultTable:
        if isinstance(query.body, ast.SetOp):
            result = self._execute_setop(query.body, env)
            if query.order_by:
                result = self._order_result(result, query.order_by)
            return result
        return self._execute_select(query.body, query.order_by, env)

    # -- set operations --------------------------------------------------------

    def _body_result(self, body: ast.QueryBody,
                     env: _Env | None) -> ResultTable:
        if isinstance(body, ast.SetOp):
            return self._execute_setop(body, env)
        return self._execute_select(body, (), env)

    def _execute_setop(self, op: ast.SetOp, env: _Env | None) -> ResultTable:
        left = self._body_result(op.left, env)
        right = self._body_result(op.right, env)
        if len(left.columns) != len(right.columns):
            raise SQLSemanticError(
                f"{op.op} operands have {len(left.columns)} and "
                f"{len(right.columns)} columns")
        if op.op == "UNION":
            rows = left.rows + right.rows
            if not op.all:
                rows = _distinct_rows(rows)
            return ResultTable(columns=left.columns, rows=rows)
        right_bag = _bag(right.rows)
        if op.op == "INTERSECT":
            rows = []
            taken: dict[tuple, int] = {}
            for row in left.rows:
                key = row_key(row)
                available = right_bag.get(key, 0)
                used = taken.get(key, 0)
                if available == 0:
                    continue
                if op.all:
                    if used < available:
                        taken[key] = used + 1
                        rows.append(row)
                else:
                    if used == 0:
                        taken[key] = 1
                        rows.append(row)
            return ResultTable(columns=left.columns, rows=rows)
        # EXCEPT
        rows = []
        removed: dict[tuple, int] = {}
        emitted: set[tuple] = set()
        for row in left.rows:
            key = row_key(row)
            if op.all:
                if removed.get(key, 0) < right_bag.get(key, 0):
                    removed[key] = removed.get(key, 0) + 1
                    continue
                rows.append(row)
            else:
                if key in right_bag or key in emitted:
                    continue
                emitted.add(key)
                rows.append(row)
        return ResultTable(columns=left.columns, rows=rows)

    # -- SELECT core --------------------------------------------------------------

    def _execute_select(self, select: ast.Select,
                        order_by: tuple[ast.SortItem, ...],
                        outer_env: _Env | None) -> ResultTable:
        relation = self._evaluate_from(select.from_clause, outer_env)
        if select.where is not None:
            kept = []
            for row in relation.rows:
                env = _Env(relation.bindings, row, outer_env)
                if self._truth(select.where, env) is True:
                    kept.append(row)
            relation = Relation(relation.bindings, kept)

        grouped = bool(select.group_by) or self._has_aggregates(select)
        items = self._expand_items(select, relation)
        columns = [self._item_name(item, index)
                   for index, item in enumerate(items)]

        if grouped:
            rows_with_keys = self._grouped_rows(
                select, items, order_by, relation, outer_env)
        else:
            rows_with_keys = []
            for row in relation.rows:
                env = _Env(relation.bindings, row, outer_env)
                projected = tuple(self._eval(item.expr, env)
                                  for item in items)
                sort_values = self._sort_values(
                    order_by, items, projected, env)
                rows_with_keys.append((projected, sort_values))

        if select.distinct:
            deduped = _distinct_rows([r for r, _k in rows_with_keys])
            # Re-derive sort keys for the surviving rows: after DISTINCT,
            # ORDER BY may only reference result columns/positions.
            rows_with_keys = [
                (row, self._result_sort_values(order_by, columns, row))
                for row in deduped]

        if order_by:
            rows_with_keys.sort(
                key=lambda pair: _directional_keys(pair[1], order_by))
        return ResultTable(columns=columns,
                           rows=[row for row, _k in rows_with_keys])

    def _has_aggregates(self, select: ast.Select) -> bool:
        for item in select.items:
            if isinstance(item, ast.SelectItem) and \
                    ast.contains_aggregate(item.expr):
                return True
        if select.having is not None:
            return True
        return False

    def _expand_items(self, select: ast.Select,
                      relation: Relation) -> list[ast.SelectItem]:
        items: list[ast.SelectItem] = []
        for item in select.items:
            if isinstance(item, ast.StarItem):
                for binding in relation.bindings:
                    if item.qualifier and not _qualifier_matches(
                            item.qualifier, binding):
                        continue
                    for column in binding.columns:
                        items.append(ast.SelectItem(
                            expr=ast.ColumnRef((binding.name,), column),
                            alias=column))
                if item.qualifier and not any(
                        _qualifier_matches(item.qualifier, b)
                        for b in relation.bindings):
                    raise SQLSemanticError(
                        f"unknown qualifier "
                        f"{'.'.join(item.qualifier)} in select list")
            else:
                items.append(item)
        return items

    def _item_name(self, item: ast.SelectItem, index: int) -> str:
        if item.alias:
            return item.alias
        if isinstance(item.expr, ast.ColumnRef):
            return item.expr.column
        return f"EXPR${index + 1}"

    # -- grouping --------------------------------------------------------------------

    def _grouped_rows(self, select, items, order_by, relation, outer_env):
        groups: dict[tuple, list] = {}
        order: list[tuple] = []
        for row in relation.rows:
            env = _Env(relation.bindings, row, outer_env)
            key = tuple(canonical_value(self._eval(e, env))
                        for e in select.group_by)
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(row)
        if not select.group_by and not groups:
            # Aggregates over an empty, ungrouped input: one group of
            # zero rows (COUNT(*) = 0, SUM = NULL, ...).
            groups[()] = []
            order.append(())
        rows_with_keys = []
        for key in order:
            group = groups[key]
            representative = group[0] if group else \
                tuple(tuple(None for _ in b.columns)
                      for b in relation.bindings)
            env = _Env(relation.bindings, representative, outer_env,
                       group_rows=group)
            if select.having is not None:
                if self._truth(select.having, env) is not True:
                    continue
            projected = tuple(self._eval(item.expr, env) for item in items)
            sort_values = self._sort_values(order_by, items, projected, env)
            rows_with_keys.append((projected, sort_values))
        return rows_with_keys

    # -- ordering ---------------------------------------------------------------------

    def _sort_values(self, order_by, items, projected, env):
        values = []
        for sort in order_by:
            if isinstance(sort.key, int):
                if not (1 <= sort.key <= len(projected)):
                    raise SQLSemanticError(
                        f"ORDER BY position {sort.key} out of range")
                values.append(projected[sort.key - 1])
                continue
            resolved = self._resolve_sort_alias(sort.key, items, projected)
            if resolved is not _NOT_FOUND:
                values.append(resolved)
            else:
                values.append(self._eval(sort.key, env))
        return values

    def _resolve_sort_alias(self, key: ast.Expr, items, projected):
        """An unqualified ORDER BY name matching a select alias refers to
        that result column (SQL-92 ORDER BY resolution)."""
        if isinstance(key, ast.ColumnRef) and not key.qualifier:
            for index, item in enumerate(items):
                if item.alias == key.column:
                    return projected[index]
        return _NOT_FOUND

    def _result_sort_values(self, order_by, columns, row):
        values = []
        for sort in order_by:
            if isinstance(sort.key, int):
                values.append(row[sort.key - 1])
            elif isinstance(sort.key, ast.ColumnRef) and not sort.key.qualifier:
                try:
                    values.append(row[columns.index(sort.key.column)])
                except ValueError:
                    raise SQLSemanticError(
                        f"ORDER BY column {sort.key.column} is not in the "
                        f"result of DISTINCT/set operation") from None
            else:
                raise SQLSemanticError(
                    "ORDER BY over DISTINCT results must use result "
                    "columns or positions")
        return values

    def _order_result(self, result: ResultTable,
                      order_by: tuple[ast.SortItem, ...]) -> ResultTable:
        keyed = [(row, self._result_sort_values(order_by, result.columns,
                                                row))
                 for row in result.rows]
        keyed.sort(key=lambda pair: _directional_keys(pair[1], order_by))
        return ResultTable(columns=result.columns,
                           rows=[row for row, _k in keyed])

    # -- FROM evaluation ------------------------------------------------------------------

    def _evaluate_from(self, from_clause, outer_env) -> Relation:
        relation = None
        for table_expr in from_clause:
            current = self._evaluate_table(table_expr, outer_env)
            relation = current if relation is None else \
                _cross_join(relation, current)
        assert relation is not None
        names = [b.name for b in relation.bindings]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise SQLSemanticError(
                f"duplicate range variable(s) in FROM: "
                f"{', '.join(sorted(duplicates))}")
        return relation

    def _evaluate_table(self, table_expr: ast.TableExpr,
                        outer_env) -> Relation:
        if isinstance(table_expr, ast.TableRef):
            columns, rows, schema = self._provider.resolve(table_expr)
            if table_expr.column_aliases:
                columns = self._apply_column_aliases(
                    table_expr.column_aliases, columns, table_expr.name)
            binding = Binding(
                name=table_expr.alias or table_expr.name,
                columns=tuple(columns),
                schema=table_expr.schema or schema,
                table=table_expr.name,
                aliased=table_expr.alias is not None)
            return Relation([binding], [(tuple(row),) for row in rows])
        if isinstance(table_expr, ast.DerivedTable):
            result = self._execute_query(table_expr.query, outer_env)
            columns = result.columns
            if table_expr.column_aliases:
                columns = self._apply_column_aliases(
                    table_expr.column_aliases, columns, table_expr.alias)
            binding = Binding(name=table_expr.alias,
                              columns=tuple(columns), aliased=True)
            return Relation([binding], [(tuple(row),) for row in result.rows])
        assert isinstance(table_expr, ast.Join)
        return self._evaluate_join(table_expr, outer_env)

    def _apply_column_aliases(self, aliases, columns, name):
        if len(aliases) != len(columns):
            raise SQLSemanticError(
                f"{name}: {len(aliases)} column aliases for "
                f"{len(columns)} columns")
        return list(aliases)

    def _evaluate_join(self, join: ast.Join, outer_env) -> Relation:
        left = self._evaluate_table(join.left, outer_env)
        right = self._evaluate_table(join.right, outer_env)
        bindings = left.bindings + right.bindings
        condition = join.condition
        if join.natural or join.using:
            condition = self._using_condition(join, left, right)
        if join.kind == "CROSS":
            return _cross_join(left, right)
        if self._hash_joins and condition is not None:
            hashed = self._hash_equi_join(join, left, right, bindings,
                                          condition, outer_env)
            if hashed is not None:
                return hashed

        def matches(lrow, rrow) -> bool:
            if condition is None:
                return True
            env = _Env(bindings, lrow + rrow, outer_env)
            return self._truth(condition, env) is True

        rows = []
        right_matched = [False] * len(right.rows)
        for lrow in left.rows:
            matched = False
            for rindex, rrow in enumerate(right.rows):
                if matches(lrow, rrow):
                    matched = True
                    right_matched[rindex] = True
                    rows.append(lrow + rrow)
            if not matched and join.kind in ("LEFT", "FULL"):
                rows.append(lrow + _null_row(right))
        if join.kind in ("RIGHT", "FULL"):
            for rindex, rrow in enumerate(right.rows):
                if not right_matched[rindex]:
                    rows.append(_null_row(left) + rrow)
        return Relation(bindings, rows)

    def _hash_equi_join(self, join: ast.Join, left: Relation,
                        right: Relation, bindings: list[Binding],
                        condition: ast.Expr,
                        outer_env) -> Relation | None:
        """Hash-based equi-join; returns None (nested-loop fallback)
        when no usable equality conjunct exists or the key values
        decline the exact-type gate.

        Matching pairs are recorded per left row (probe rindices stay
        ascending either way the table is built), so emission —
        including LEFT/RIGHT/FULL padding — replays the nested loop's
        exact output order."""
        split = len(left.bindings)
        resolve_env = _Env(bindings, None, outer_env)
        equis: list[tuple[tuple[int, int], tuple[int, int]]] = []
        residual: list[ast.Expr] = []
        for conj in _flatten_and(condition):
            pair = None
            if isinstance(conj, ast.Comparison) and conj.op == "=" \
                    and isinstance(conj.left, ast.ColumnRef) \
                    and isinstance(conj.right, ast.ColumnRef):
                try:
                    lres = resolve_column(conj.left, resolve_env)
                    rres = resolve_column(conj.right, resolve_env)
                except SQLSemanticError:
                    # Let the nested loop raise (or not, on empty
                    # inputs) with its per-row timing.
                    return None
                if lres[2] == 0 and rres[2] == 0 \
                        and (lres[0] < split) != (rres[0] < split):
                    if lres[0] < split:
                        pair = ((lres[0], lres[1]),
                                (rres[0] - split, rres[1]))
                    else:
                        pair = ((rres[0], rres[1]),
                                (lres[0] - split, lres[1]))
            if pair is None:
                residual.append(conj)
            else:
                equis.append(pair)
        if not equis:
            return None
        left_keys = [tuple(row[b][c] for (b, c), _r in equis)
                     for row in left.rows]
        right_keys = [tuple(row[b][c] for _l, (b, c) in equis)
                      for row in right.rows]
        # Exact-type gate: hashing matches _compare("=") only when every
        # key position holds one value shape across both sides (int
        # promotion, date/datetime mixing, and float/Decimal rounding
        # all make dict equality diverge from SQL comparison — or from
        # its errors).
        for position in range(len(equis)):
            tags = set()
            for keys in (left_keys, right_keys):
                for key in keys:
                    value = key[position]
                    if value is None:
                        continue
                    tag = _hash_key_tag(value)
                    if tag is None:
                        return None
                    tags.add(tag)
            if len(tags) > 1:
                return None

        def residual_true(lrow, rrow) -> bool:
            # The conjuncts evaluate in original AND order: a False
            # short-circuits the rest (like the And tree), an UNKNOWN
            # keeps evaluating but can no longer match.
            matched = True
            if residual:
                env = _Env(bindings, lrow + rrow, outer_env)
                for conj in residual:
                    truth = self._truth(conj, env)
                    if truth is False:
                        return False
                    if truth is None:
                        matched = False
            return matched

        matches_by_left: list[list[int]] = [[] for _ in left.rows]
        right_matched = [False] * len(right.rows)
        table: dict[tuple, list[int]] = {}
        if len(right.rows) <= len(left.rows):
            for rindex, key in enumerate(right_keys):
                if None not in key:
                    table.setdefault(key, []).append(rindex)
            for lindex, key in enumerate(left_keys):
                if None in key:
                    continue
                for rindex in table.get(key, ()):
                    if residual_true(left.rows[lindex],
                                     right.rows[rindex]):
                        matches_by_left[lindex].append(rindex)
                        right_matched[rindex] = True
        else:
            for lindex, key in enumerate(left_keys):
                if None not in key:
                    table.setdefault(key, []).append(lindex)
            for rindex, key in enumerate(right_keys):
                if None in key:
                    continue
                for lindex in table.get(key, ()):
                    if residual_true(left.rows[lindex],
                                     right.rows[rindex]):
                        matches_by_left[lindex].append(rindex)
                        right_matched[rindex] = True
        rows = []
        for lindex, lrow in enumerate(left.rows):
            matched = matches_by_left[lindex]
            for rindex in matched:
                rows.append(lrow + right.rows[rindex])
            if not matched and join.kind in ("LEFT", "FULL"):
                rows.append(lrow + _null_row(right))
        if join.kind in ("RIGHT", "FULL"):
            for rindex, rrow in enumerate(right.rows):
                if not right_matched[rindex]:
                    rows.append(_null_row(left) + rrow)
        return Relation(bindings, rows)

    def _using_condition(self, join: ast.Join, left: Relation,
                         right: Relation) -> ast.Expr:
        if join.natural:
            left_cols = {c for b in left.bindings for c in b.columns}
            names = [c for b in right.bindings for c in b.columns
                     if c in left_cols]
            if not names:
                raise SQLSemanticError("NATURAL JOIN with no common columns")
        else:
            names = list(join.using)
        condition: ast.Expr | None = None
        for name in names:
            left_binding = _binding_with_column(left, name, "left")
            right_binding = _binding_with_column(right, name, "right")
            clause = ast.Comparison(
                op="=",
                left=ast.ColumnRef((left_binding.name,), name),
                right=ast.ColumnRef((right_binding.name,), name))
            condition = clause if condition is None else \
                ast.And(left=condition, right=clause)
        assert condition is not None
        return condition

    # -- expression evaluation ----------------------------------------------------------

    def _truth(self, expr: ast.Expr, env: _Env) -> Truth:
        """Evaluate a predicate under three-valued logic."""
        value = self._eval(expr, env)
        if value is None:
            return None
        if not isinstance(value, bool):
            raise SQLSemanticError(
                f"predicate evaluated to non-boolean {value!r}")
        return value

    def _eval(self, expr: ast.Expr, env: _Env):
        handler = _EVAL.get(type(expr))
        if handler is None:
            raise SQLSemanticError(
                f"cannot evaluate {type(expr).__name__}")
        return handler(self, expr, env)

    def _eval_literal(self, expr: ast.Literal, env):
        return expr.value

    def _eval_null(self, expr: ast.NullLiteral, env):
        return None

    def _eval_parameter(self, expr: ast.Parameter, env):
        try:
            return self._parameters[expr.index - 1]
        except IndexError:
            raise SQLSemanticError(
                f"no value bound for parameter {expr.index}") from None

    def _eval_column(self, expr: ast.ColumnRef, env: _Env):
        binding_index, column_index, env_level = \
            resolve_column(expr, env)
        target = env
        for _ in range(env_level):
            target = target.parent
        return target.row[binding_index][column_index]

    def _eval_unary(self, expr: ast.UnaryOp, env):
        value = self._eval(expr.operand, env)
        if value is None:
            return None
        if expr.op == "-":
            return -value
        return value

    def _eval_binary(self, expr: ast.BinaryOp, env):
        left = self._eval(expr.left, env)
        right = self._eval(expr.right, env)
        if left is None or right is None:
            return None
        if expr.op == "||":
            if not isinstance(left, str) or not isinstance(right, str):
                raise SQLSemanticError("|| requires character operands")
            return left + right
        return _arith(expr.op, left, right)

    def _eval_case(self, expr: ast.CaseExpr, env):
        if expr.operand is not None:
            operand = self._eval(expr.operand, env)
            for when, then in expr.whens:
                if operand is None:
                    break
                when_value = self._eval(when, env)
                if when_value is not None and \
                        _compare("=", operand, when_value) is True:
                    return self._eval(then, env)
        else:
            for when, then in expr.whens:
                if self._truth(when, env) is True:
                    return self._eval(then, env)
        if expr.else_ is not None:
            return self._eval(expr.else_, env)
        return None

    def _eval_cast(self, expr: ast.Cast, env):
        return sql_cast(self._eval(expr.operand, env), expr.target)

    def _eval_extract(self, expr: ast.ExtractExpr, env):
        value = self._eval(expr.source, env)
        if value is None:
            return None
        field = expr.field
        try:
            if field == "YEAR":
                return value.year
            if field == "MONTH":
                return value.month
            if field == "DAY":
                return value.day
            if field == "HOUR":
                return value.hour
            if field == "MINUTE":
                return value.minute
            if field == "SECOND":
                return Decimal(value.second)
        except AttributeError:
            raise SQLSemanticError(
                f"EXTRACT({field}) from a non-datetime value "
                f"{value!r}") from None
        raise SQLSemanticError(f"unknown EXTRACT field {field}")

    def _eval_trim(self, expr: ast.TrimExpr, env):
        source = self._eval(expr.source, env)
        if source is None:
            return None
        chars = " "
        if expr.chars is not None:
            chars = self._eval(expr.chars, env)
            if chars is None:
                return None
            if len(chars) != 1:
                raise SQLSemanticError("TRIM character must be one char")
        if expr.mode == "LEADING":
            return source.lstrip(chars)
        if expr.mode == "TRAILING":
            return source.rstrip(chars)
        return source.strip(chars)

    def _eval_function(self, expr: ast.FunctionCall, env):
        args = [self._eval(a, env) for a in expr.args]
        return _call_sql_function(expr.name, args)

    def _eval_aggregate(self, expr: ast.AggregateCall, env: _Env):
        if env.group_rows is None:
            raise SQLSemanticError(
                f"aggregate {expr.func} used outside a grouped query")
        if expr.star:
            return len(env.group_rows)
        values = []
        for row in env.group_rows:
            inner = _Env(env.bindings, row, env.parent)
            value = self._eval(expr.arg, inner)
            if value is not None:
                values.append(value)
        if expr.distinct:
            seen = set()
            unique = []
            for value in values:
                key = canonical_value(value)
                if key not in seen:
                    seen.add(key)
                    unique.append(value)
            values = unique
        return _aggregate(expr.func, values)

    def _eval_scalar_subquery(self, expr: ast.ScalarSubquery, env):
        result = self._execute_query(expr.query, env)
        if len(result.columns) != 1:
            raise SQLSemanticError(
                f"scalar subquery returns {len(result.columns)} columns")
        if not result.rows:
            return None
        if len(result.rows) > 1:
            raise SQLSemanticError(
                f"scalar subquery returned {len(result.rows)} rows")
        return result.rows[0][0]

    def _subquery_column(self, query: ast.Query, env) -> list:
        result = self._execute_query(query, env)
        if len(result.columns) != 1:
            raise SQLSemanticError(
                f"subquery in a predicate must return one column, "
                f"got {len(result.columns)}")
        return [row[0] for row in result.rows]

    def _eval_comparison(self, expr: ast.Comparison, env):
        left = self._eval(expr.left, env)
        right = self._eval(expr.right, env)
        if left is None or right is None:
            return None
        return _compare(expr.op, left, right)

    def _eval_quantified(self, expr: ast.QuantifiedComparison, env):
        left = self._eval(expr.left, env)
        values = self._subquery_column(expr.query, env)
        if left is None:
            if not values:
                return expr.quantifier == "ALL"
            return None
        saw_unknown = False
        for value in values:
            if value is None:
                saw_unknown = True
                continue
            holds = _compare(expr.op, left, value)
            if expr.quantifier == "ANY" and holds:
                return True
            if expr.quantifier == "ALL" and not holds:
                return False
        if saw_unknown:
            return None
        return expr.quantifier == "ALL"

    def _eval_is_null(self, expr: ast.IsNull, env):
        value = self._eval(expr.operand, env)
        result = value is None
        return not result if expr.negated else result

    def _eval_between(self, expr: ast.Between, env):
        value = self._eval(expr.operand, env)
        low = self._eval(expr.low, env)
        high = self._eval(expr.high, env)
        lower = None if value is None or low is None \
            else _compare(">=", value, low)
        upper = None if value is None or high is None \
            else _compare("<=", value, high)
        result = _and3(lower, upper)
        return _not3(result) if expr.negated else result

    def _eval_in_list(self, expr: ast.InList, env):
        value = self._eval(expr.operand, env)
        items = [self._eval(item, env) for item in expr.items]
        result = self._membership(value, items)
        return _not3(result) if expr.negated else result

    def _eval_in_subquery(self, expr: ast.InSubquery, env):
        value = self._eval(expr.operand, env)
        items = self._subquery_column(expr.query, env)
        result = self._membership(value, items)
        return _not3(result) if expr.negated else result

    def _membership(self, value, items) -> Truth:
        if value is None:
            return None
        saw_null = False
        for item in items:
            if item is None:
                saw_null = True
                continue
            if _compare("=", value, item):
                return True
        if saw_null:
            return None
        return False

    def _eval_like(self, expr: ast.Like, env):
        value = self._eval(expr.operand, env)
        pattern = self._eval(expr.pattern, env)
        escape = None
        if expr.escape is not None:
            escape = self._eval(expr.escape, env)
            if escape is None:
                return None
        if value is None or pattern is None:
            return None
        result = sql_like_match(value, pattern, escape)
        return (not result) if expr.negated else result

    def _eval_exists(self, expr: ast.Exists, env):
        result = self._execute_query(expr.query, env)
        return bool(result.rows)

    def _eval_not(self, expr: ast.Not, env):
        return _not3(self._truth(expr.operand, env))

    def _eval_and(self, expr: ast.And, env):
        left = self._truth(expr.left, env)
        if left is False:
            return False
        return _and3(left, self._truth(expr.right, env))

    def _eval_or(self, expr: ast.Or, env):
        left = self._truth(expr.left, env)
        if left is True:
            return True
        return _or3(left, self._truth(expr.right, env))


_EVAL = {
    ast.Literal: SQLExecutor._eval_literal,
    ast.NullLiteral: SQLExecutor._eval_null,
    ast.Parameter: SQLExecutor._eval_parameter,
    ast.ColumnRef: SQLExecutor._eval_column,
    ast.UnaryOp: SQLExecutor._eval_unary,
    ast.BinaryOp: SQLExecutor._eval_binary,
    ast.CaseExpr: SQLExecutor._eval_case,
    ast.Cast: SQLExecutor._eval_cast,
    ast.ExtractExpr: SQLExecutor._eval_extract,
    ast.TrimExpr: SQLExecutor._eval_trim,
    ast.FunctionCall: SQLExecutor._eval_function,
    ast.AggregateCall: SQLExecutor._eval_aggregate,
    ast.ScalarSubquery: SQLExecutor._eval_scalar_subquery,
    ast.Comparison: SQLExecutor._eval_comparison,
    ast.QuantifiedComparison: SQLExecutor._eval_quantified,
    ast.IsNull: SQLExecutor._eval_is_null,
    ast.Between: SQLExecutor._eval_between,
    ast.InList: SQLExecutor._eval_in_list,
    ast.InSubquery: SQLExecutor._eval_in_subquery,
    ast.Like: SQLExecutor._eval_like,
    ast.Exists: SQLExecutor._eval_exists,
    ast.Not: SQLExecutor._eval_not,
    ast.And: SQLExecutor._eval_and,
    ast.Or: SQLExecutor._eval_or,
}


# ---------------------------------------------------------------------------
# Name resolution
# ---------------------------------------------------------------------------

_NOT_FOUND = object()


def _qualifier_matches(qualifier: tuple[str, ...], binding: Binding) -> bool:
    if len(qualifier) == 1:
        return qualifier[0] == binding.name
    if len(qualifier) == 2:
        return (not binding.aliased and binding.schema == qualifier[0]
                and binding.table == qualifier[1])
    if len(qualifier) == 3:
        return (not binding.aliased and binding.schema == qualifier[1]
                and binding.table == qualifier[2])
    return False


def resolve_column(ref: ast.ColumnRef, env: _Env) -> tuple[int, int, int]:
    """Resolve a column reference against the environment chain.

    Returns (binding index, column index, environment depth). Raises
    SQLSemanticError for unknown or ambiguous references — the same SQL-92
    scoping rules the translator's stage two applies.
    """
    level = 0
    current: _Env | None = env
    while current is not None:
        matches = []
        for bindex, binding in enumerate(current.bindings):
            if ref.qualifier and not _qualifier_matches(ref.qualifier,
                                                        binding):
                continue
            if ref.column in binding.columns:
                matches.append((bindex,
                                binding.columns.index(ref.column)))
            elif ref.qualifier:
                raise SQLSemanticError(
                    f"column {ref.display()} does not exist in "
                    f"{binding.name}")
        if len(matches) > 1:
            raise SQLSemanticError(
                f"ambiguous column reference {ref.display()}")
        if matches:
            return matches[0][0], matches[0][1], level
        current = current.parent
        level += 1
    raise SQLSemanticError(f"unknown column {ref.display()}")


def _binding_with_column(relation: Relation, column: str,
                         side: str) -> Binding:
    matches = [b for b in relation.bindings if column in b.columns]
    if not matches:
        raise SQLSemanticError(
            f"USING column {column} not found on the {side} side")
    if len(matches) > 1:
        raise SQLSemanticError(
            f"USING column {column} is ambiguous on the {side} side")
    return matches[0]


# ---------------------------------------------------------------------------
# Relational helpers
# ---------------------------------------------------------------------------


def _flatten_and(expr: ast.Expr) -> list[ast.Expr]:
    """The conjuncts of a left-to-right flattened AND tree."""
    if isinstance(expr, ast.And):
        return _flatten_and(expr.left) + _flatten_and(expr.right)
    return [expr]


def _hash_key_tag(value) -> str | None:
    """The type shape of a join-key value, or None for shapes where
    hashing could diverge from ``_compare`` (bool/int aliasing, numeric
    cross-type promotion, float/Decimal equality)."""
    if isinstance(value, bool):
        return None
    if isinstance(value, int):
        return "i"
    if isinstance(value, str):
        return "s"
    if isinstance(value, datetime.datetime):
        return "dt"
    if isinstance(value, datetime.date):
        return "d"
    if isinstance(value, datetime.time):
        return "t"
    return None


def _cross_join(left: Relation, right: Relation) -> Relation:
    rows = [lrow + rrow for lrow in left.rows for rrow in right.rows]
    return Relation(left.bindings + right.bindings, rows)


def _null_row(relation: Relation) -> tuple:
    return tuple(tuple(None for _ in binding.columns)
                 for binding in relation.bindings)


def _bag(rows: list[tuple]) -> dict[tuple, int]:
    bag: dict[tuple, int] = {}
    for row in rows:
        key = row_key(row)
        bag[key] = bag.get(key, 0) + 1
    return bag


def _distinct_rows(rows: list[tuple]) -> list[tuple]:
    seen = set()
    result = []
    for row in rows:
        key = row_key(row)
        if key not in seen:
            seen.add(key)
            result.append(row)
    return result


def _directional_keys(values: list, order_by) -> tuple:
    keys = []
    for value, sort in zip(values, order_by):
        keys.append(_SortKey(value, sort.ascending))
    return tuple(keys)


class _SortKey:
    """NULLs-least sort key with per-key direction (matches the XQuery
    engine's 'empty least' ordering)."""

    __slots__ = ("rank", "ascending")

    def __init__(self, value, ascending: bool):
        if value is None:
            self.rank = (0, "")
        elif isinstance(value, bool):
            self.rank = (1, value)
        elif isinstance(value, (int, float, Decimal)):
            self.rank = (1, float(value))
        elif isinstance(value, str):
            self.rank = (1, value)
        elif isinstance(value, datetime.datetime):
            self.rank = (1, value.isoformat())
        elif isinstance(value, (datetime.date, datetime.time)):
            self.rank = (1, value.isoformat())
        else:
            raise SQLSemanticError(f"cannot order by value {value!r}")
        self.ascending = ascending

    def __lt__(self, other: "_SortKey") -> bool:
        if self.ascending:
            return self.rank < other.rank
        return other.rank < self.rank

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _SortKey) and self.rank == other.rank


# ---------------------------------------------------------------------------
# Scalar semantics (shared helpers)
# ---------------------------------------------------------------------------


def _not3(value: Truth) -> Truth:
    if value is None:
        return None
    return not value


def _and3(a: Truth, b: Truth) -> Truth:
    if a is False or b is False:
        return False
    if a is None or b is None:
        return None
    return True


def _or3(a: Truth, b: Truth) -> Truth:
    if a is True or b is True:
        return True
    if a is None or b is None:
        return None
    return False


def _promote_pair(a, b):
    if isinstance(a, float) or isinstance(b, float):
        return float(a), float(b)
    if isinstance(a, Decimal) or isinstance(b, Decimal):
        return (a if isinstance(a, Decimal) else Decimal(a),
                b if isinstance(b, Decimal) else Decimal(b))
    return a, b


def _arith(op: str, a, b):
    if isinstance(a, str) or isinstance(b, str):
        raise SQLSemanticError(
            f"arithmetic {op} on non-numeric operands")
    if op == "/":
        if isinstance(a, int) and isinstance(b, int):
            if b == 0:
                raise SQLSemanticError("division by zero")
            # Integer division truncates toward zero (matches idiv).
            return int(Decimal(a) / Decimal(b))
        a, b = _promote_pair(a, b)
        try:
            return a / b
        except (ZeroDivisionError, InvalidOperation):
            raise SQLSemanticError("division by zero") from None
    a, b = _promote_pair(a, b)
    if op == "+":
        return a + b
    if op == "-":
        return a - b
    if op == "*":
        return a * b
    raise SQLSemanticError(f"unknown operator {op}")


def _compare(op: str, a, b) -> bool:
    """Non-null SQL comparison (types must be comparable)."""
    if isinstance(a, bool) or isinstance(b, bool):
        if not (isinstance(a, bool) and isinstance(b, bool)):
            raise SQLSemanticError("cannot compare boolean with non-boolean")
    elif isinstance(a, (int, float, Decimal)) != \
            isinstance(b, (int, float, Decimal)):
        raise SQLSemanticError(
            f"cannot compare {type(a).__name__} with {type(b).__name__}")
    elif isinstance(a, (int, float, Decimal)):
        a, b = _promote_pair(a, b)
    elif isinstance(a, datetime.datetime) != isinstance(b, datetime.datetime):
        raise SQLSemanticError("cannot compare datetime with non-datetime")
    elif type(a) is not type(b) and not (
            isinstance(a, str) and isinstance(b, str)):
        raise SQLSemanticError(
            f"cannot compare {type(a).__name__} with {type(b).__name__}")
    if op == "=":
        return a == b
    if op == "<>":
        return a != b
    if op == "<":
        return a < b
    if op == "<=":
        return a <= b
    if op == ">":
        return a > b
    if op == ">=":
        return a >= b
    raise SQLSemanticError(f"unknown comparison operator {op}")


def _aggregate(func: str, values: list):
    if func == "COUNT":
        return len(values)
    if not values:
        return None
    if func == "SUM":
        total = values[0]
        for value in values[1:]:
            total = _arith("+", total, value)
        return total
    if func == "AVG":
        total = values[0]
        for value in values[1:]:
            total = _arith("+", total, value)
        if isinstance(total, float):
            return total / len(values)
        return Decimal(total) / Decimal(len(values)) \
            if isinstance(total, int) else total / Decimal(len(values))
    if func == "MIN":
        best = values[0]
        for value in values[1:]:
            if _compare("<", value, best):
                best = value
        return best
    if func == "MAX":
        best = values[0]
        for value in values[1:]:
            if _compare(">", value, best):
                best = value
        return best
    raise SQLSemanticError(f"unknown aggregate {func}")


def sql_cast(value, target: SQLType):
    """SQL CAST semantics over Python values (NULL passes through)."""
    if value is None:
        return None
    kind = target.kind
    try:
        if kind in ("SMALLINT", "INTEGER", "BIGINT"):
            if isinstance(value, str):
                return int(value.strip())
            if isinstance(value, (int, float, Decimal)):
                return int(value)
        if kind == "DECIMAL":
            if isinstance(value, float):
                result = Decimal(repr(value))
            elif isinstance(value, str):
                result = Decimal(value.strip())
            else:
                result = Decimal(value)
            if target.scale is not None:
                result = result.quantize(Decimal(1).scaleb(-target.scale))
            return result
        if kind in ("REAL", "DOUBLE"):
            if isinstance(value, str):
                return float(value.strip())
            return float(value)
        if kind in ("CHAR", "VARCHAR"):
            text = _sql_string_of(value)
            if target.length is not None:
                text = text[:target.length]
            return text
        if kind == "DATE":
            if isinstance(value, datetime.datetime):
                return value.date()
            if isinstance(value, datetime.date):
                return value
            return datetime.date.fromisoformat(str(value).strip())
        if kind == "TIME":
            if isinstance(value, datetime.datetime):
                return value.time()
            if isinstance(value, datetime.time):
                return value
            return datetime.time.fromisoformat(str(value).strip())
        if kind == "TIMESTAMP":
            if isinstance(value, datetime.datetime):
                return value
            if isinstance(value, datetime.date):
                return datetime.datetime.combine(value, datetime.time())
            return datetime.datetime.fromisoformat(str(value).strip())
    except (ValueError, InvalidOperation) as exc:
        raise SQLSemanticError(
            f"cannot CAST {value!r} to {target}") from exc
    raise SQLSemanticError(f"unsupported CAST target {target}")


def _sql_string_of(value) -> str:
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return repr(value)
    if isinstance(value, Decimal):
        return format(value, "f")
    if isinstance(value, datetime.datetime):
        return value.isoformat(sep="T")
    if isinstance(value, (datetime.date, datetime.time)):
        return value.isoformat()
    return str(value)


def _call_sql_function(name: str, args: list):
    """Scalar function dispatch; all functions propagate NULL."""
    name = name.upper()
    if name in ("CURRENT_DATE",):
        return clock.today()
    if name == "CURRENT_TIME":
        return clock.current_time()
    if name == "CURRENT_TIMESTAMP":
        return clock.now().replace(microsecond=0)
    if name == "COALESCE":
        for arg in args:
            if arg is not None:
                return arg
        return None
    if name == "NULLIF":
        a, b = args
        if a is None:
            return None
        if b is not None and _compare("=", a, b):
            return None
        return a
    if any(arg is None for arg in args):
        return None
    if name == "UPPER":
        return args[0].upper()
    if name == "LOWER":
        return args[0].lower()
    if name == "CONCAT":
        return args[0] + args[1]
    if name == "SUBSTRING":
        text, start = args[0], int(args[1])
        end = start + int(args[2]) if len(args) == 3 else len(text) + 1
        if len(args) == 3 and int(args[2]) < 0:
            raise SQLSemanticError("negative length in SUBSTRING")
        return "".join(ch for pos, ch in enumerate(text, start=1)
                       if start <= pos < end)
    if name in ("CHAR_LENGTH", "CHARACTER_LENGTH", "LENGTH"):
        return len(args[0])
    if name == "POSITION":
        needle, hay = args
        if not needle:
            return 1
        return hay.find(needle) + 1
    if name == "ABS":
        return abs(args[0])
    if name == "MOD":
        a, b = args
        if b == 0:
            raise SQLSemanticError("MOD by zero")
        if isinstance(a, float) or isinstance(b, float):
            import math
            return math.fmod(a, b)
        return a - b * int(Decimal(a) / Decimal(b))
    if name == "ROUND":
        value = args[0]
        places = int(args[1]) if len(args) == 2 else 0
        if isinstance(value, float):
            import math
            factor = 10.0 ** places
            return math.floor(value * factor + 0.5) / factor
        as_decimal = value if isinstance(value, Decimal) else Decimal(value)
        from decimal import ROUND_HALF_UP
        rounded = as_decimal.quantize(Decimal(1).scaleb(-places),
                                      rounding=ROUND_HALF_UP)
        return int(rounded) if isinstance(value, int) else rounded
    if name == "FLOOR":
        import math
        if isinstance(value := args[0], int):
            return value
        if isinstance(value, Decimal):
            return Decimal(math.floor(value))
        return float(math.floor(value))
    if name == "CEILING":
        import math
        if isinstance(value := args[0], int):
            return value
        if isinstance(value, Decimal):
            return Decimal(math.ceil(value))
        return float(math.ceil(value))
    if name == "SQRT":
        import math
        if args[0] < 0:
            raise SQLSemanticError("SQRT of a negative number")
        return math.sqrt(args[0])
    raise SQLSemanticError(f"unknown function {name}")
