"""Fault injection for physical sources: flaky, slow, and hung backends.

The paper's platform mediates over files, custom functions, and remote
services — exactly the sources that fail in production. This module
wraps a physical data service function so tests (and chaos drills) can
dial in:

* **error-rate** — each call raises ``TransientSourceError`` with
  probability ``error_rate`` (seeded RNG for reproducibility), or
  deterministically for the first ``fail_times`` calls (the
  retry-then-succeed shape);
* **latency** — a fixed sleep per call, sliced so deadlines and
  cancellation still abort promptly mid-sleep;
* **hang** — the call blocks until the query's deadline expires or its
  token is cancelled (raising the corresponding lifecycle error), or
  until the ``hang_seconds`` safety cap elapses.

The wrapper is a binding-level shim: ``install_fault(runtime, table,
profile)`` swaps a registered function's binding for a
:class:`FaultyBinding` that applies the profile, then delegates to the
original binding through the runtime's normal execution (including its
retry policy — which is how retries are exercised end to end).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Optional

from ..errors import TransientSourceError, UnknownArtifactError
from .lifecycle import QueryContext

#: Sleep slice for interruptible waits: deadline/cancel is observed
#: within this many seconds even while a source is "hung".
WAIT_SLICE = 0.01


@dataclass
class FaultProfile:
    """Configuration for one faulty source."""

    #: Probability in [0, 1] that a call raises TransientSourceError.
    error_rate: float = 0.0
    #: Deterministic mode: fail exactly the first N calls, then succeed.
    fail_times: int = 0
    #: Seconds of added latency per call (interruptible).
    latency: float = 0.0
    #: Block until deadline/cancel instead of returning.
    hang: bool = False
    #: Safety cap on a hang when the query has no deadline or token
    #: trigger; None hangs until the lifecycle aborts it.
    hang_seconds: Optional[float] = None
    #: RNG seed for the stochastic error mode.
    seed: Optional[int] = None


class FaultyBinding:
    """Wraps a real binding; the runtime applies the profile before
    delegating to the wrapped binding."""

    __slots__ = ("inner", "profile", "calls", "failures", "hangs", "_rng")

    def __init__(self, inner, profile: FaultProfile):
        self.inner = inner
        self.profile = profile
        self.calls = 0
        self.failures = 0
        self.hangs = 0
        self._rng = random.Random(profile.seed)

    def apply(self, context: Optional[QueryContext]) -> None:
        """Run the configured fault behaviors for one source call.

        Raises ``TransientSourceError`` for injected failures and lets
        ``context.check()`` raise the lifecycle error during latency or
        hang waits.
        """
        self.calls += 1
        profile = self.profile
        if profile.fail_times and self.calls <= profile.fail_times:
            self.failures += 1
            raise TransientSourceError(
                f"injected failure {self.calls}/{profile.fail_times}")
        if profile.error_rate and self._rng.random() < profile.error_rate:
            self.failures += 1
            raise TransientSourceError(
                f"injected stochastic failure (rate={profile.error_rate})")
        if profile.latency:
            _interruptible_sleep(profile.latency, context)
        if profile.hang:
            self.hangs += 1
            _hang(profile.hang_seconds, context)


def _interruptible_sleep(seconds: float,
                         context: Optional[QueryContext]) -> None:
    """Sleep *seconds* in slices, checking the lifecycle each slice so
    a slow source still aborts within ~WAIT_SLICE of its deadline."""
    deadline = time.monotonic() + seconds
    while True:
        if context is not None:
            context.check()
        left = deadline - time.monotonic()
        if left <= 0:
            return
        time.sleep(min(WAIT_SLICE, left))


def _hang(cap: Optional[float], context: Optional[QueryContext]) -> None:
    """Block until the lifecycle aborts the query (or the cap elapses)."""
    started = time.monotonic()
    while True:
        if context is not None:
            context.check()
        if cap is not None and time.monotonic() - started >= cap:
            return
        time.sleep(WAIT_SLICE)


def make_faulty(function, profile: FaultProfile):
    """A copy of *function* whose binding injects *profile*'s faults
    before delegating to the original binding."""
    from ..catalog import DataServiceFunction

    return DataServiceFunction(
        name=function.name,
        return_schema=function.return_schema,
        parameters=function.parameters,
        binding=FaultyBinding(function.binding, profile),
    )


def install_fault(runtime, name: str,
                  profile: FaultProfile) -> FaultyBinding:
    """Wrap the registered function whose local name is *name* (its SQL
    table name) in a fault-injecting binding, in place on *runtime*.
    Returns the binding so tests can assert call/failure counts."""
    for key, function in runtime._functions.items():
        if key[1] == name:
            faulty = make_faulty(function, profile)
            runtime._functions[key] = faulty
            return faulty.binding
    raise UnknownArtifactError(f"no data service function named {name}")
