"""The DSP runtime: executes data service functions and XQuery programs.

This is the server side of the paper's Figure 1: data services (physical
and logical) hosted over heterogeneous sources, queryable with XQuery. The
JDBC-analog driver connects to an instance of this runtime, sends it the
XQuery produced by the translator, and receives the result sequence.

Physical data service functions materialize rows of a Storage table as a
sequence of flat, schema-typed XML elements (paper Example 1). Logical
data service functions evaluate their XQuery bodies — written over other
data service functions — with their parameters bound as external
variables.
"""

from __future__ import annotations

from typing import Iterator, Optional

from ..catalog import (
    Application,
    CallableBinding,
    CsvBinding,
    DataService,
    DataServiceFunction,
    FunctionParameter,
    MetadataAPI,
    TableBinding,
    XQueryBinding,
    flat_schema,
    function_namespace,
    sql_to_xs,
)
from ..errors import (
    SourceUnavailableError,
    TransientSourceError,
    UnknownArtifactError,
    XQueryDynamicError,
)
from ..obs import NULL_TRACER, LRUCache, MetricsRegistry
from ..xmlmodel import Element, QName, Text
from ..xquery import parse_xquery
from ..xquery.atomic import parse_lexical, serialize_atomic
from ..xquery.compile import CompiledQuery, compile_module
from .faults import FaultyBinding
from .lifecycle import AdmissionController, QueryContext, RetryPolicy
from .table import Storage, Table


class DSPRuntime:
    """Hosts one application over one storage backend."""

    def __init__(self, application: Application, storage: Storage,
                 optimize: bool = True, plan_cache_capacity: int = 256,
                 metrics: Optional[MetricsRegistry] = None,
                 max_concurrent_queries: int = 32,
                 admission_queue_timeout: float = 5.0,
                 max_inflight_rows: Optional[int] = 1_000_000,
                 retry_policy: Optional[RetryPolicy] = None):
        self.application = application
        self.storage = storage
        #: Enable the XQuery engine's optimizer (hash equi-joins, filter
        #: hoisting, let/for fusion). The paper's translator leaves
        #: "any/all optimizations ... to the XQuery processor"; this is
        #: that processor's knob.
        self.optimize = optimize
        #: Runtime-side metrics: the plan cache publishes
        #: ``plan_cache.hits`` / ``plan_cache.misses`` /
        #: ``plan_cache.evictions`` here.
        self.metrics = MetricsRegistry() if metrics is None else metrics
        self._functions: dict[tuple[str, str], DataServiceFunction] = {}
        #: Compiled-plan cache: bounded, thread-safe, single-flight, so
        #: concurrent executions of the same XQuery parse and compile it
        #: once. Keyed like the driver's statement cache, by query text
        #: (plus the optimize flag, so toggling it never reuses a plan
        #: built under the other setting).
        self.plan_cache = LRUCache(plan_cache_capacity,
                                   registry=self.metrics,
                                   prefix="plan_cache")
        #: Materialized element trees for table-bound physical functions,
        #: keyed by function identity. Tables are append-only (Storage
        #: exposes insert/insert_many but no update or delete), so the
        #: row count is a sufficient staleness check; query execution
        #: never mutates source trees (constructors copy nodes).
        self._table_elements: dict[tuple[str, str], tuple[int, list]] = {}
        self.function_call_count = 0
        #: Admission control for top-level queries: bounded concurrency
        #: with a queue-with-timeout, plus a global in-flight streamed
        #: row budget. Enforced at the query entry points (the PEP 249
        #: driver and the shell), never on nested data-service calls —
        #: a logical function's body must not deadlock against its own
        #: parent's slot.
        self.admission = AdmissionController(
            max_concurrent=max_concurrent_queries,
            queue_timeout=admission_queue_timeout,
            max_inflight_rows=max_inflight_rows)
        #: Per-source retry with backoff+jitter for TransientSourceError
        #: from physical bindings; publishes ``source.retries`` /
        #: ``source.failures`` on this runtime's metrics.
        self.retry_policy = RetryPolicy() if retry_policy is None \
            else retry_policy
        self._source_retries = self.metrics.counter("source.retries")
        self._source_failures = self.metrics.counter("source.failures")
        for project, service in application.all_data_services():
            uri = function_namespace(project, service)
            for function in service.functions.values():
                self._functions[(uri, function.name)] = function

    # -- function execution -------------------------------------------------

    def call_function(self, uri: str, local: str, args: list,
                      context: Optional[QueryContext] = None) -> list:
        """Execute a data service function; this is also the evaluator's
        FunctionResolver. *context* (threaded down from the executing
        query's frames) bounds source waits and is consulted by fault
        wrappers and the retry policy."""
        self.function_call_count += 1
        if context is not None:
            context.source_calls += 1
        try:
            function = self._functions[(uri, local)]
        except KeyError:
            raise UnknownArtifactError(
                f"no data service function {{{uri}}}{local}") from None
        if len(args) != len(function.parameters):
            raise XQueryDynamicError(
                f"{local} expects {len(function.parameters)} arguments, "
                f"got {len(args)}", code="XPTY0004")
        binding = function.binding
        if binding is None:
            raise UnknownArtifactError(
                f"data service function {local} has no binding")
        # Only sources that can raise TransientSourceError (files,
        # custom functions, fault wrappers) pay for the retry loop.
        if isinstance(binding, (CsvBinding, CallableBinding,
                                FaultyBinding)):
            return self._call_with_retry(uri, local, function, binding,
                                         args, context)
        return self._run_binding(uri, local, function, binding, args,
                                 context)

    def _call_with_retry(self, uri: str, local: str, function, binding,
                         args: list,
                         context: Optional[QueryContext]) -> list:
        """Run a (possibly fault-injected) physical source under the
        runtime's retry policy: transient failures back off with jitter
        and retry, bounded by the policy's attempt budget and the
        query's deadline."""
        policy = self.retry_policy
        last: Optional[TransientSourceError] = None
        for attempt in range(policy.attempts):
            try:
                return self._run_binding(uri, local, function, binding,
                                         args, context)
            except TransientSourceError as exc:
                last = exc
                if attempt + 1 >= policy.attempts:
                    break
                self._source_retries.increment()
                policy.sleep_before_retry(attempt, context)
        self._source_failures.increment()
        raise SourceUnavailableError(
            f"source {local} unavailable: {last}",
            attempts=policy.attempts) from last

    def _run_binding(self, uri: str, local: str, function, binding,
                     args: list,
                     context: Optional[QueryContext]) -> list:
        """Execute one binding once (faults applied, no retry)."""
        if context is not None:
            context.check()
        if isinstance(binding, FaultyBinding):
            binding.apply(context)
            binding = binding.inner
        if isinstance(binding, TableBinding):
            table = self.storage.table(binding.table_name)
            if len(function.return_schema.columns) != len(table.columns):
                raise UnknownArtifactError(
                    f"schema/table column count mismatch for "
                    f"{function.name}")
            cached = self._table_elements.get((uri, local))
            if cached is not None and cached[0] == len(table.rows):
                return cached[1]
            elements = self._rows_to_elements(function.return_schema,
                                              table.rows)
            self._table_elements[(uri, local)] = (len(table.rows), elements)
            return elements
        if isinstance(binding, CsvBinding):
            return self._rows_to_elements(
                function.return_schema,
                self._read_csv(binding, function.return_schema))
        if isinstance(binding, CallableBinding):
            values = [arg[0] if arg else None for arg in args]
            rows = binding.provider(*values)
            return self._rows_to_elements(function.return_schema,
                                          list(rows))
        if isinstance(binding, XQueryBinding):
            variables = {
                param.name: arg
                for param, arg in zip(function.parameters, args)
            }
            result = self.execute(binding.body, variables=variables,
                                  context=context)
            return self._validate_against_schema(function, result)
        raise UnknownArtifactError(
            f"data service function {local} has no binding")

    def _rows_to_elements(self, schema, rows: list) -> list:
        """Materialize Python-value rows as typed flat XML elements
        (paper Example 1) — shared by every physical source kind."""
        columns = schema.columns
        name = QName(schema.element_name, schema.target_namespace,
                     prefix="ns0")
        result = []
        for row in rows:
            if len(row) != len(columns):
                raise UnknownArtifactError(
                    f"source row has {len(row)} values; schema "
                    f"{schema.element_name} declares {len(columns)} "
                    f"columns")
            element = Element(name)
            for decl, value in zip(columns, row):
                child = Element(QName(decl.name),
                                type_annotation=decl.xs_type)
                if value is not None:
                    child.append(Text(serialize_atomic(value)))
                element.append(child)
            result.append(element)
        return result

    def _read_csv(self, binding: CsvBinding, schema) -> list[tuple]:
        """Read a delimited file as typed rows; empty fields are NULL."""
        import csv

        columns = schema.columns
        rows: list[tuple] = []
        with open(binding.path, newline="", encoding="utf-8") as handle:
            reader = csv.reader(handle, delimiter=binding.delimiter)
            for index, record in enumerate(reader):
                if binding.header and index == 0:
                    continue
                if not record:
                    continue
                values = []
                for decl, cell in zip(columns, record):
                    if cell == "":
                        values.append(None)
                    else:
                        values.append(parse_lexical(decl.xs_type, cell))
                rows.append(tuple(values))
        return rows

    def _validate_against_schema(self, function: DataServiceFunction,
                                 result: list) -> list:
        """Schema-validate a logical function's result.

        Logical function bodies build elements with constructors, which
        are untyped in the XQuery data model; the function's declared
        return type (``as schema-element(t1:X)*``) makes the real engine
        validate and type them. We reproduce that by annotating each
        result row's children with the declared xs: simple types.
        """
        schema = function.return_schema
        if not schema.is_flat():
            return result
        types = {decl.name: decl.xs_type for decl in schema.columns}
        for item in result:
            if not isinstance(item, Element):
                raise XQueryDynamicError(
                    f"{function.name} returned a non-element item",
                    code="XPTY0004")
            for child in item.child_elements():
                annotation = types.get(child.name.local)
                if annotation is not None and \
                        child.type_annotation is None:
                    child.type_annotation = annotation
        return result

    # -- query execution -----------------------------------------------------

    def prepare(self, xquery_text: str, tracer=None) -> CompiledQuery:
        """Parse, plan, and closure-compile an XQuery (with caching).

        The compiled plan is immutable and thread-safe, so one cache
        entry serves every subsequent execution of the same text. Pass a
        ``repro.obs.Tracer`` to record ``xquery.parse`` and
        ``xquery.compile`` spans (cold compiles only) under the caller's
        current span."""
        tracer = NULL_TRACER if tracer is None else tracer

        def load() -> CompiledQuery:
            with tracer.span("xquery.parse"):
                module = parse_xquery(xquery_text)
            with tracer.span("xquery.compile"):
                return compile_module(module, resolver=self.call_function,
                                      optimize=self.optimize)

        return self.plan_cache.get_or_load((xquery_text, self.optimize),
                                           load)

    def execute(self, xquery_text: str,
                variables: dict[str, object] | None = None,
                tracer=None,
                context: Optional[QueryContext] = None) -> list:
        """Compile (with plan caching) and evaluate an XQuery, returning
        the materialized result sequence. *context* bounds the run with
        a deadline/cancellation token checked at tuple-batch granularity
        inside the compiled pipeline."""
        tracer = NULL_TRACER if tracer is None else tracer
        plan = self.prepare(xquery_text, tracer=tracer)
        with tracer.span("xquery.evaluate"):
            return plan.evaluate(variables, context=context)

    def execute_stream(self, xquery_text: str,
                       variables: dict[str, object] | None = None,
                       tracer=None,
                       context: Optional[QueryContext] = None) -> Iterator:
        """Compile (with plan caching) and evaluate an XQuery as a lazy
        item stream: FLWOR bodies pull source rows through the live
        pipeline only as the caller consumes items."""
        tracer = NULL_TRACER if tracer is None else tracer
        plan = self.prepare(xquery_text, tracer=tracer)
        return plan.stream_items(variables, context=context)

    def metadata_api(self, latency: float = 0.0) -> MetadataAPI:
        """The remote metadata API endpoint for this application."""
        return MetadataAPI(self.application, latency=latency)


def physical_function(table: Table, project_name: str,
                      service_path: str) -> DataServiceFunction:
    """Build the physical data service function a metadata import would
    produce for *table* (paper Example 2)."""
    service_name = service_path.rsplit("/", 1)[-1]
    namespace = f"ld:{project_name}/{service_path}"
    location = f"ld:{project_name}/schemas/{service_name}.xsd"
    columns = [(name, sql_to_xs(sql_type))
               for name, sql_type in table.columns]
    return DataServiceFunction(
        name=table.name,
        return_schema=flat_schema(table.name, namespace, location, columns),
        binding=TableBinding(table.name),
    )


def csv_function(name: str, path: str, project_name: str,
                 service_path: str, columns: list[tuple[str, str]],
                 delimiter: str = ",", header: bool = True) \
        -> DataServiceFunction:
    """A physical data service over a delimited file (Figure 1's 'files'
    source kind). ``columns`` maps column names to xs: simple types, in
    file order."""
    service_name = service_path.rsplit("/", 1)[-1]
    namespace = f"ld:{project_name}/{service_path}"
    location = f"ld:{project_name}/schemas/{service_name}.xsd"
    return DataServiceFunction(
        name=name,
        return_schema=flat_schema(name, namespace, location, columns),
        binding=CsvBinding(path=path, delimiter=delimiter, header=header),
    )


def callable_function(name: str, provider, project_name: str,
                      service_path: str, columns: list[tuple[str, str]],
                      parameters: tuple[FunctionParameter, ...] = ()) \
        -> DataServiceFunction:
    """A physical data service over a host Python function (Figure 1's
    'custom functions' source kind). *provider* receives one positional
    argument per declared parameter and returns row tuples."""
    service_name = service_path.rsplit("/", 1)[-1]
    namespace = f"ld:{project_name}/{service_path}"
    location = f"ld:{project_name}/schemas/{service_name}.xsd"
    return DataServiceFunction(
        name=name,
        return_schema=flat_schema(name, namespace, location, columns),
        parameters=parameters,
        binding=CallableBinding(provider=provider),
    )


def logical_function(name: str, body: str, project_name: str,
                     service_path: str,
                     columns: list[tuple[str, str]],
                     element_name: str | None = None,
                     parameters: tuple[FunctionParameter, ...] = ()) \
        -> DataServiceFunction:
    """Build a logical data service function with an XQuery body.

    ``columns`` maps the flat result's child element names to xs: simple
    type names, defining the .xsd the data service developer would author.
    """
    service_name = service_path.rsplit("/", 1)[-1]
    namespace = f"ld:{project_name}/{service_path}"
    location = f"ld:{project_name}/schemas/{service_name}.xsd"
    return DataServiceFunction(
        name=name,
        return_schema=flat_schema(element_name or name, namespace,
                                  location, columns),
        parameters=parameters,
        binding=XQueryBinding(body),
    )


def import_tables(application: Application, project_name: str,
                  storage: Storage, tables: list[str] | None = None) -> None:
    """Simulate DSP's relational metadata import: create one physical data
    service per storage table under *project_name*."""
    project = application.projects.get(project_name)
    if project is None:
        from ..catalog import Project
        project = Project(project_name)
        application.add_project(project)
    for table_name in (tables if tables is not None
                       else storage.table_names()):
        table = storage.table(table_name)
        service = DataService(table_name)
        service.add_function(
            physical_function(table, project_name, table_name))
        project.add_data_service(service)
