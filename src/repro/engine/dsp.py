"""The DSP runtime: executes data service functions and XQuery programs.

This is the server side of the paper's Figure 1: data services (physical
and logical) hosted over heterogeneous sources, queryable with XQuery. The
JDBC-analog driver connects to an instance of this runtime, sends it the
XQuery produced by the translator, and receives the result sequence.

Physical data service functions materialize rows of a Storage table as a
sequence of flat, schema-typed XML elements (paper Example 1). Logical
data service functions evaluate their XQuery bodies — written over other
data service functions — with their parameters bound as external
variables.
"""

from __future__ import annotations

import os
import threading
from typing import Iterator, Optional

from ..catalog import (
    Application,
    CallableBinding,
    CsvBinding,
    DataService,
    DataServiceFunction,
    FunctionParameter,
    MetadataAPI,
    RowSchema,
    SourceBinding,
    TableBinding,
    XQueryBinding,
    flat_schema,
    function_namespace,
    sql_to_xs,
)
from ..config import ENGINE_FIELDS, RuntimeConfig, merge_legacy_kwargs
from ..errors import (
    NotSupportedError,
    SourceUnavailableError,
    TransientSourceError,
    UnknownArtifactError,
    XQueryDynamicError,
)
from ..obs import NULL_TRACER, LRUCache, MetricsRegistry
from ..sources import DataSource, ScanRequest, filter_request
from ..sources.memory import TableSource
from ..xmlmodel import Element, QName, Text
from ..xquery import parse_xquery
from ..xquery.atomic import parse_lexical, serialize_atomic
from ..xquery.compile import CompiledQuery, compile_module
from .faults import FaultyBinding
from .lifecycle import AdmissionController, QueryContext, RetryPolicy
from .table import Storage, Table


def _env_int(name: str, configured: int) -> int:
    """An int knob: the *name* env var wins over the config when it
    parses as a non-negative int; junk is ignored."""
    raw = os.environ.get(name)
    if raw is not None:
        try:
            value = int(raw)
        except ValueError:
            value = configured
        else:
            if value < 0:
                value = configured
        return value
    return max(0, int(configured))


def _resolve_batch_size(configured: int) -> int:
    """The effective batch size: ``REPRO_BATCH_SIZE`` wins over the
    config when it parses as a non-negative int; junk is ignored."""
    return _env_int("REPRO_BATCH_SIZE", configured)


class DSPRuntime:
    """Hosts one application over its physical sources.

    *storage* may be a classic in-memory :class:`Storage` (wrapped in a
    :class:`TableSource`), any :class:`repro.sources.DataSource` (e.g. a
    ``SQLiteSource``), or None for an application with no default
    source. Either way it becomes the runtime's *default source* — the
    one ``TableBinding`` functions scan; further sources attach through
    :meth:`register_source` and are addressed by ``SourceBinding``.

    Tuning lives in :class:`repro.RuntimeConfig`; the pre-config
    keyword arguments (``optimize=``, ``plan_cache_capacity=``, ...)
    still work for one release with a ``DeprecationWarning``.
    """

    def __init__(self, application: Application,
                 storage: "Storage | DataSource | None" = None,
                 config: Optional[RuntimeConfig] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 **legacy):
        config = merge_legacy_kwargs(
            config if config is not None else RuntimeConfig(),
            legacy, "DSPRuntime()", allowed=ENGINE_FIELDS)
        self.application = application
        self.storage = storage
        self.config = config
        #: Registered physical sources by name; SourceBinding functions
        #: address these.
        self.sources: dict[str, DataSource] = {}
        if storage is None:
            self._default_source: Optional[DataSource] = None
        elif isinstance(storage, DataSource):
            self._default_source = storage
        else:
            self._default_source = TableSource(storage)
        if self._default_source is not None:
            self.sources[self._default_source.name] = self._default_source
        #: TableBinding scans pay for the retry loop only when the
        #: default source is something that can actually fail
        #: transiently (not the in-process table wrapper).
        self._default_source_retryable = not isinstance(
            self._default_source, (TableSource, type(None)))
        #: Enable the XQuery engine's optimizer (hash equi-joins, filter
        #: hoisting, let/for fusion). The paper's translator leaves
        #: "any/all optimizations ... to the XQuery processor"; this is
        #: that processor's knob.
        self.optimize = config.optimize
        #: Enable predicate/projection pushdown into capable sources.
        self.pushdown = config.pushdown
        #: Statistics-driven cost-based planning: join build-side
        #: choice, order-restoring for-clause reordering, and
        #: most-selective-first conjunct ordering. Needs the optimizer
        #: (the cost pass rewrites its plans); ``REPRO_COST_PLANNING=0``
        #: disables it environment-wide for A/B runs.
        self.cost = (config.cost and config.optimize
                     and os.environ.get("REPRO_COST_PLANNING", "1") != "0")
        #: Rows per column-oriented batch in the vectorized streaming
        #: executor; 0 keeps the tuple-at-a-time pipeline everywhere.
        #: ``REPRO_BATCH_SIZE`` overrides the config for A/B runs.
        self.batch_size = _resolve_batch_size(config.batch_size)
        #: Worker processes for partitioned scatter/gather execution;
        #: 0 keeps every scan serial. ``REPRO_PARALLELISM`` overrides
        #: the config, and ``REPRO_PARALLEL_MIN_ROWS`` tunes the
        #: estimated-row threshold below which scattering is skipped.
        self.parallelism = _env_int("REPRO_PARALLELISM",
                                    config.parallelism)
        self.parallel_min_rows = _env_int("REPRO_PARALLEL_MIN_ROWS",
                                          config.parallel_min_rows)
        #: Lazy fork-server state for engine.parallel (created on first
        #: eligible scatter, torn down in close()).
        self._pool = None
        #: Runtime-side metrics: the plan cache publishes
        #: ``plan_cache.hits`` / ``plan_cache.misses`` /
        #: ``plan_cache.evictions`` here.
        self.metrics = MetricsRegistry() if metrics is None else metrics
        self._functions: dict[tuple[str, str], DataServiceFunction] = {}
        #: Compiled-plan cache: bounded, thread-safe, single-flight, so
        #: concurrent executions of the same XQuery parse and compile it
        #: once. Keyed like the driver's statement cache, by query text
        #: (plus the optimize/pushdown flags, so toggling either never
        #: reuses a plan built under the other setting).
        self.plan_cache = LRUCache(config.plan_cache_capacity,
                                   registry=self.metrics,
                                   prefix="plan_cache")
        #: Materialized element trees for source-bound physical
        #: functions, keyed by function identity and guarded by the
        #: source's ``version`` staleness token (row count for in-memory
        #: tables, data-version counters for SQLite, file mtime/size for
        #: XML). Pushed scans bypass this cache — their element trees
        #: are request-specific.
        self._table_elements: dict[tuple[str, str],
                                   tuple[object, list]] = {}
        #: Columnar twin of ``_table_elements``: materialized column
        #: lists for unpushed scans, guarded by the same version token.
        #: Column lists handed to the vectorized executor are read-only
        #: by contract (operators always build fresh output lists).
        self._table_columns: dict[tuple[str, str],
                                  tuple[object, list, int]] = {}
        self.function_call_count = 0
        #: Admission control for top-level queries: bounded concurrency
        #: with a queue-with-timeout, plus a global in-flight streamed
        #: row budget. Enforced at the query entry points (the PEP 249
        #: driver and the shell), never on nested data-service calls —
        #: a logical function's body must not deadlock against its own
        #: parent's slot.
        self.admission = AdmissionController(
            max_concurrent=config.max_concurrent_queries,
            queue_timeout=config.admission_queue_timeout,
            max_inflight_rows=config.max_inflight_rows)
        #: Per-source retry with backoff+jitter for TransientSourceError
        #: from physical bindings; publishes ``source.retries`` /
        #: ``source.failures`` on this runtime's metrics.
        self.retry_policy = RetryPolicy() if config.retry_policy is None \
            else config.retry_policy
        self._init_counters()
        #: Table statistics cache for cost-based planning, keyed by
        #: function identity and guarded by the source's ``version``
        #: token. ``_stats_epoch`` counts cache (re)computations and
        #: source registrations; it is part of the plan-cache key, so a
        #: plan built over stale statistics is recompiled (once) rather
        #: than reused forever.
        self._stats_cache: dict[tuple[str, str], tuple[object, object]] = {}
        self._stats_epoch = 0
        #: Single-writer lock for the DML path: held by an autocommit
        #: statement for its plan+apply window, or by an explicit
        #: transaction from its first write until commit/rollback.
        #: Readers never take it — they read consistent snapshots via
        #: version tokens and copy-on-write row lists.
        self.write_lock = threading.Lock()
        for project, service in application.all_data_services():
            uri = function_namespace(project, service)
            for function in service.functions.values():
                self._functions[(uri, function.name)] = function

    def _init_counters(self) -> None:
        """Bind the runtime's named counters/histograms against the
        current metrics registry (re-run after a fork swaps it)."""
        #: Per-source retry with backoff+jitter publishes these.
        self._source_retries = self.metrics.counter("source.retries")
        self._source_failures = self.metrics.counter("source.failures")
        #: Pushdown observability: rows actually pulled out of sources,
        #: and the subset that came from scans the source pre-filtered.
        self._rows_scanned = self.metrics.counter("sources.rows_scanned")
        self._rows_pushed = self.metrics.counter("sources.rows_pushed")
        #: Secondary-index observability: scans answered by a source
        #: hash index, and the (lazy) index builds those scans caused.
        self._index_hits = self.metrics.counter("sources.index_hits")
        self._index_builds = self.metrics.counter("sources.index_builds")
        #: Sum of the cost model's estimated output rows over cold
        #: compiles; paired with per-node actuals in EXPLAIN output.
        self._estimated_rows = self.metrics.counter(
            "planner.estimated_rows")
        #: Scatter/gather observability: queries that ran partitioned,
        #: partitions scattered, distinct pool workers used, wholesale
        #: fallbacks to the serial path, and gather-merge wall time.
        self._parallel_queries = self.metrics.counter("parallel.queries")
        self._parallel_partitions = self.metrics.counter(
            "parallel.partitions")
        self._parallel_workers = self.metrics.counter("parallel.workers")
        self._parallel_fallbacks = self.metrics.counter(
            "parallel.fallbacks")
        self._gather_seconds = self.metrics.histogram(
            "parallel.gather_seconds")
        #: Grouped-aggregation observability: queries that ran the
        #: vectorized hash-aggregation stage, group-table entries it
        #: emitted, and scatters that aggregated partially in workers.
        self._agg_queries = self.metrics.counter("vector.agg_queries")
        self._agg_groups = self.metrics.counter("vector.agg_groups")
        self._partial_aggs = self.metrics.counter(
            "parallel.partial_aggs")

    # -- source registry -----------------------------------------------------

    def register_source(self, source: DataSource) -> DataSource:
        """Attach a physical source; ``SourceBinding(source.name, ...)``
        functions scan it. Re-registering a name replaces the source."""
        self.sources[source.name] = source
        # New (or replaced) source: cached statistics may describe the
        # old one, and cached plans may have been costed without it.
        self._stats_cache.clear()
        self._stats_epoch += 1
        return source

    def source(self, name: str) -> DataSource:
        try:
            return self.sources[name]
        except KeyError:
            raise UnknownArtifactError(
                f"no data source {name!r} registered") from None

    def close(self) -> None:
        """Close every registered source (idempotent) and tear down the
        worker pool if one was started."""
        self.shutdown_pool()
        for source in self.sources.values():
            source.close()

    # -- parallel execution --------------------------------------------------

    def try_parallel(self, plan, state):
        """Scatter an eligible vectorized plan across the process pool;
        None means "run serially" (ineligible, below threshold, or any
        worker-side failure — the serial path is the fallback for every
        parallel problem)."""
        if self.parallelism < 2:
            return None
        from . import parallel
        return parallel.execute(self, plan, state)

    def shutdown_pool(self) -> None:
        """Terminate the scatter/gather worker pool (idempotent)."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.terminate()
            pool.join()

    def reset_after_fork(self) -> None:
        """Re-initialize process-local state inside a pool worker.

        The fork snapshot shares no execution with the parent from here
        on: locks may have been captured mid-acquire, so every
        lock-bearing structure (metrics, plan cache, admission) is
        rebuilt, sources get their own reset hook, and parallelism is
        forced off — workers never nest pools. Plain-dict caches
        (element trees, column lists, statistics) stay: they describe
        the copy-on-write snapshot the worker scans.
        """
        self.parallelism = 0
        self._pool = None
        self.write_lock = threading.Lock()
        self.metrics = MetricsRegistry()
        self._init_counters()
        self.plan_cache = LRUCache(self.config.plan_cache_capacity,
                                   registry=self.metrics,
                                   prefix="plan_cache")
        self.admission = AdmissionController(
            max_concurrent=self.config.max_concurrent_queries,
            queue_timeout=self.config.admission_queue_timeout,
            max_inflight_rows=self.config.max_inflight_rows)
        for source in self.sources.values():
            source.reset_after_fork()

    # -- function execution -------------------------------------------------

    def call_function(self, uri: str, local: str, args: list,
                      context: Optional[QueryContext] = None,
                      scan: Optional[ScanRequest] = None) -> list:
        """Execute a data service function; this is also the evaluator's
        FunctionResolver. *context* (threaded down from the executing
        query's frames) bounds source waits and is consulted by fault
        wrappers and the retry policy. *scan* is an advisory pushdown
        request the compiler attaches to source-backed scans; bindings
        that are not SPI scans ignore it."""
        self.function_call_count += 1
        if context is not None:
            context.source_calls += 1
        try:
            function = self._functions[(uri, local)]
        except KeyError:
            raise UnknownArtifactError(
                f"no data service function {{{uri}}}{local}") from None
        if len(args) != len(function.parameters):
            raise XQueryDynamicError(
                f"{local} expects {len(function.parameters)} arguments, "
                f"got {len(args)}", code="XPTY0004")
        binding = function.binding
        if binding is None:
            raise UnknownArtifactError(
                f"data service function {local} has no binding")
        # Only sources that can raise TransientSourceError (files,
        # custom functions, fault wrappers, external SPI sources) pay
        # for the retry loop.
        if isinstance(binding, (CsvBinding, CallableBinding,
                                FaultyBinding, SourceBinding)) or \
                (isinstance(binding, TableBinding)
                 and self._default_source_retryable):
            return self._call_with_retry(uri, local, function, binding,
                                         args, context, scan)
        return self._run_binding(uri, local, function, binding, args,
                                 context, scan)

    def _call_with_retry(self, uri: str, local: str, function, binding,
                         args: list, context: Optional[QueryContext],
                         scan: Optional[ScanRequest] = None) -> list:
        """Run a (possibly fault-injected) physical source under the
        runtime's retry policy: transient failures back off with jitter
        and retry, bounded by the policy's attempt budget and the
        query's deadline."""
        return self._retry_loop(
            local, context,
            lambda: self._run_binding(uri, local, function, binding,
                                      args, context, scan))

    def _retry_loop(self, local: str, context: Optional[QueryContext],
                    operation):
        """The retry policy around one source operation (row or
        columnar scan): transient failures back off and retry, bounded
        by the attempt budget and the query's remaining deadline."""
        policy = self.retry_policy
        last: Optional[TransientSourceError] = None
        for attempt in range(policy.attempts):
            try:
                return operation()
            except TransientSourceError as exc:
                last = exc
                if attempt + 1 >= policy.attempts:
                    break
                self._source_retries.increment()
                policy.sleep_before_retry(attempt, context)
        self._source_failures.increment()
        raise SourceUnavailableError(
            f"source {local} unavailable: {last}",
            attempts=policy.attempts) from last

    def _run_binding(self, uri: str, local: str, function, binding,
                     args: list, context: Optional[QueryContext],
                     scan: Optional[ScanRequest] = None) -> list:
        """Execute one binding once (faults applied, no retry)."""
        if context is not None:
            context.check()
        if isinstance(binding, FaultyBinding):
            binding.apply(context)
            binding = binding.inner
        if isinstance(binding, TableBinding):
            if self._default_source is None:
                raise UnknownArtifactError(
                    f"data service function {local} is table-bound but "
                    f"the runtime has no default source")
            return self._scan_source(uri, local, function,
                                     self._default_source,
                                     binding.table_name, scan, context)
        if isinstance(binding, SourceBinding):
            return self._scan_source(uri, local, function,
                                     self.source(binding.source),
                                     binding.table, scan, context)
        if isinstance(binding, CsvBinding):
            return self._rows_to_elements(
                function.return_schema,
                self._read_csv(binding, function.return_schema))
        if isinstance(binding, CallableBinding):
            values = [arg[0] if arg else None for arg in args]
            rows = binding.provider(*values)
            return self._rows_to_elements(function.return_schema,
                                          list(rows))
        if isinstance(binding, XQueryBinding):
            variables = {
                param.name: arg
                for param, arg in zip(function.parameters, args)
            }
            result = self.execute(binding.body, variables=variables,
                                  context=context)
            return self._validate_against_schema(function, result)
        raise UnknownArtifactError(
            f"data service function {local} has no binding")

    def _scan_source(self, uri: str, local: str, function,
                     source: DataSource, table: str,
                     request: Optional[ScanRequest],
                     context: Optional[QueryContext]) -> list:
        """Materialize a source table scan as typed flat elements.

        The request (if any) is first reduced to what the source's
        capabilities actually cover; a surviving request bypasses the
        element-tree cache (its result is request-specific), while a
        plain scan goes through the cache guarded by the source's
        ``version`` staleness token."""
        schema = function.return_schema
        if len(schema.columns) != len(source.columns(table)):
            raise UnknownArtifactError(
                f"schema/table column count mismatch for {function.name}")
        reduced = None
        if self.pushdown and request is not None:
            reduced = filter_request(
                source, table, request,
                [decl.name for decl in schema.columns])
        if reduced is None:
            token = source.version(table)
            cached = self._table_elements.get((uri, local))
            if cached is not None and token is not None \
                    and cached[0] == token:
                return cached[1]
            rows = list(source.scan(table, None, context))
            self._rows_scanned.add(len(rows))
            elements = self._rows_to_elements(schema, rows)
            if token is not None:
                self._table_elements[(uri, local)] = (token, elements)
            return elements
        result = source.scan(table, reduced, context)
        rows = list(result)
        self._rows_scanned.add(len(rows))
        if result.pushed:
            self._rows_pushed.add(len(rows))
        if result.index_used:
            self._index_hits.increment()
        if result.index_built:
            self._index_builds.increment()
        return self._rows_to_elements(
            self._project_schema(schema, result.columns), rows)

    # -- columnar scans (vectorized executor) -------------------------------

    def _columnar_target(self, uri: str, local: str):
        """(function, faulty_binding_or_None, source, table) when the
        data service function ``{uri}local`` is a zero-arg scan over an
        SPI source — the only shape the vectorized executor reads in
        column form. None for every other binding kind."""
        function = self._functions.get((uri, local))
        if function is None or function.parameters:
            return None
        binding = function.binding
        faulty = None
        if isinstance(binding, FaultyBinding):
            faulty = binding
            binding = binding.inner
        if isinstance(binding, TableBinding):
            source, table = self._default_source, binding.table_name
        elif isinstance(binding, SourceBinding):
            source, table = self.sources.get(binding.source), binding.table
        else:
            return None
        if source is None:
            return None
        return function, faulty, source, table

    def column_scan_schema(self, uri: str, local: str):
        """Ordered (column name, xs type) pairs for a columnar-scannable
        function, or None when the function cannot be scanned in column
        form (non-source binding, parameters, unknown name)."""
        target = self._columnar_target(uri, local)
        if target is None:
            return None
        schema = target[0].return_schema
        return [(decl.name, decl.xs_type) for decl in schema.columns]

    def scan_columns(self, uri: str, local: str,
                     context: Optional[QueryContext] = None,
                     scan: Optional[ScanRequest] = None,
                     partition=None):
        """The columnar twin of a zero-arg :meth:`call_function`:
        returns ``(columns, values, row_count)`` where *columns* is the
        (possibly projected) ``(name, xs_type)`` schema and *values* is
        one Python-value list per column. Counters, fault injection,
        retries, and pushdown reduction all match the row path; the
        returned lists are shared (cached) and must not be mutated.
        *partition* (a :class:`repro.sources.PartitionSpec`) restricts
        the scan to one partition; partition scans bypass the column
        cache — their results are partition-specific."""
        target = self._columnar_target(uri, local)
        if target is None:
            raise UnknownArtifactError(
                f"data service function {{{uri}}}{local} is not a "
                f"columnar-scannable source")
        function, faulty, source, table = target
        self.function_call_count += 1
        if context is not None:
            context.source_calls += 1

        def run():
            if context is not None:
                context.check()
            if faulty is not None:
                faulty.apply(context)
            return self._scan_source_columns(uri, local, function, source,
                                             table, scan, context,
                                             partition)

        retryable = (faulty is not None
                     or isinstance(function.binding, SourceBinding)
                     or self._default_source_retryable)
        if retryable:
            return self._retry_loop(local, context, run)
        return run()

    def _scan_source_columns(self, uri: str, local: str, function,
                             source: DataSource, table: str,
                             request: Optional[ScanRequest],
                             context: Optional[QueryContext],
                             partition=None):
        """Materialize a source table scan as column lists, mirroring
        :meth:`_scan_source`'s cache/pushdown/metrics behavior."""
        schema = function.return_schema
        if len(schema.columns) != len(source.columns(table)):
            raise UnknownArtifactError(
                f"schema/table column count mismatch for {function.name}")
        reduced = None
        if self.pushdown and request is not None:
            reduced = filter_request(
                source, table, request,
                [decl.name for decl in schema.columns])
        batch = self.batch_size or 1024
        if partition is not None:
            result = source.scan_partition_batches(partition, reduced,
                                                   context, batch)
            values = [[] for _ in result.columns]
            for block in result:
                for acc, col in zip(values, block):
                    acc.extend(col)
            row_count = len(values[0]) if values else 0
            self._rows_scanned.add(row_count)
            if result.pushed:
                self._rows_pushed.add(row_count)
            if result.index_used:
                self._index_hits.increment()
            if result.index_built:
                self._index_builds.increment()
            projected = self._project_schema(schema, result.columns)
            return ([(decl.name, decl.xs_type)
                     for decl in projected.columns], values, row_count)
        if reduced is None:
            token = source.version(table)
            cached = self._table_columns.get((uri, local))
            if cached is not None and token is not None \
                    and cached[0] == token:
                return ([(decl.name, decl.xs_type)
                         for decl in schema.columns],
                        cached[1], cached[2])
            result = source.scan_batches(table, None, context, batch)
            values = [[] for _ in schema.columns]
            for block in result:
                for acc, col in zip(values, block):
                    acc.extend(col)
            row_count = len(values[0]) if values else 0
            self._rows_scanned.add(row_count)
            if token is not None:
                self._table_columns[(uri, local)] = (token, values,
                                                     row_count)
            return ([(decl.name, decl.xs_type)
                     for decl in schema.columns], values, row_count)
        result = source.scan_batches(table, reduced, context, batch)
        values = [[] for _ in result.columns]
        for block in result:
            for acc, col in zip(values, block):
                acc.extend(col)
        row_count = len(values[0]) if values else 0
        self._rows_scanned.add(row_count)
        if result.pushed:
            self._rows_pushed.add(row_count)
        if result.index_used:
            self._index_hits.increment()
        if result.index_built:
            self._index_builds.increment()
        projected = self._project_schema(schema, result.columns)
        return ([(decl.name, decl.xs_type)
                 for decl in projected.columns], values, row_count)

    @staticmethod
    def _project_schema(schema: RowSchema, scan_columns) -> RowSchema:
        """The row schema matching a (possibly projected) scan's
        columns, in the scan's column order."""
        names = [name for name, _t in scan_columns]
        if names == [decl.name for decl in schema.columns]:
            return schema
        by_name = {decl.name: decl for decl in schema.columns}
        return RowSchema(
            element_name=schema.element_name,
            target_namespace=schema.target_namespace,
            schema_location=schema.schema_location,
            children=tuple(by_name[name] for name in names
                           if name in by_name))

    def _rows_to_elements(self, schema, rows: list) -> list:
        """Materialize Python-value rows as typed flat XML elements
        (paper Example 1) — shared by every physical source kind."""
        columns = schema.columns
        name = QName(schema.element_name, schema.target_namespace,
                     prefix="ns0")
        result = []
        for row in rows:
            if len(row) != len(columns):
                raise UnknownArtifactError(
                    f"source row has {len(row)} values; schema "
                    f"{schema.element_name} declares {len(columns)} "
                    f"columns")
            element = Element(name)
            for decl, value in zip(columns, row):
                child = Element(QName(decl.name),
                                type_annotation=decl.xs_type)
                if value is not None:
                    child.append(Text(serialize_atomic(value)))
                element.append(child)
            result.append(element)
        return result

    def _read_csv(self, binding: CsvBinding, schema) -> list[tuple]:
        """Read a delimited file as typed rows; empty fields are NULL."""
        import csv

        columns = schema.columns
        rows: list[tuple] = []
        with open(binding.path, newline="", encoding="utf-8") as handle:
            reader = csv.reader(handle, delimiter=binding.delimiter)
            for index, record in enumerate(reader):
                if binding.header and index == 0:
                    continue
                if not record:
                    continue
                values = []
                for decl, cell in zip(columns, record):
                    if cell == "":
                        values.append(None)
                    else:
                        values.append(parse_lexical(decl.xs_type, cell))
                rows.append(tuple(values))
        return rows

    def _validate_against_schema(self, function: DataServiceFunction,
                                 result: list) -> list:
        """Schema-validate a logical function's result.

        Logical function bodies build elements with constructors, which
        are untyped in the XQuery data model; the function's declared
        return type (``as schema-element(t1:X)*``) makes the real engine
        validate and type them. We reproduce that by annotating each
        result row's children with the declared xs: simple types.
        """
        schema = function.return_schema
        if not schema.is_flat():
            return result
        types = {decl.name: decl.xs_type for decl in schema.columns}
        for item in result:
            if not isinstance(item, Element):
                raise XQueryDynamicError(
                    f"{function.name} returned a non-element item",
                    code="XPTY0004")
            for child in item.child_elements():
                annotation = types.get(child.name.local)
                if annotation is not None and \
                        child.type_annotation is None:
                    child.type_annotation = annotation
        return result

    # -- writing -------------------------------------------------------------

    def write_target(self, uri: str, local: str):
        """``(source, physical table name)`` for DML against the
        data-service function ``{uri}local`` — the write-path twin of
        the scan dispatch in :meth:`_run_binding`. Raises
        ``NotSupportedError`` when the function is not backed by a
        source that accepts writes (logical/CSV/callable bindings, the
        read-only XML source, ...)."""
        function = self._functions.get((uri, local))
        if function is None:
            raise UnknownArtifactError(
                f"no data service function {{{uri}}}{local}")
        binding = function.binding
        if isinstance(binding, FaultyBinding):
            binding = binding.inner
        if isinstance(binding, TableBinding):
            source, table = self._default_source, binding.table_name
        elif isinstance(binding, SourceBinding):
            source, table = self.sources.get(binding.source), binding.table
        else:
            raise NotSupportedError(
                f"table {local} is not backed by a physical source and "
                f"cannot be written")
        if source is None:
            raise UnknownArtifactError(
                f"table {local} is bound to an unregistered source")
        if not source.supports_write(table):
            raise NotSupportedError(
                f"source {source.name!r} is read-only for table "
                f"{table!r}")
        return source, table

    def note_write(self) -> None:
        """A write was committed (or an autocommit statement applied):
        cached statistics may describe superseded rows, so drop them
        and bump the stats epoch — the plan cache keys on the epoch, so
        plans costed under the old numbers recompile once instead of
        being reused forever. Row-level read correctness never depends
        on this hook: element-tree/column caches are guarded by the
        sources' own version tokens."""
        self._stats_cache.clear()
        self._stats_epoch += 1

    # -- statistics ----------------------------------------------------------

    def statistics_for(self, uri: str, local: str):
        """Table statistics for the data-service scan ``{uri}local()``,
        or None when the function is not a source-backed scan (or its
        source declines). This is the cost planner's statistics
        callback; results are cached under the source's ``version``
        token, and every (re)computation bumps the stats epoch so plans
        costed against superseded statistics age out of the plan cache.
        """
        function = self._functions.get((uri, local))
        if function is None:
            return None
        binding = function.binding
        if isinstance(binding, FaultyBinding):
            binding = binding.inner
        if isinstance(binding, TableBinding):
            source, table = self._default_source, binding.table_name
        elif isinstance(binding, SourceBinding):
            source, table = self.sources.get(binding.source), binding.table
        else:
            return None
        if source is None:
            return None
        try:
            token = source.version(table)
            cached = self._stats_cache.get((uri, local))
            if cached is not None and token is not None \
                    and cached[0] == token:
                return cached[1]
            stats = source.statistics(table)
        except Exception:
            # Statistics are advisory: an unreachable or failing source
            # must degrade to default selectivities, not break compiles.
            return None
        # Bump the epoch only when the data actually moved (the version
        # token changed under cached statistics): a first computation
        # is consumed by the very compile that triggered it, so the
        # plan about to be cached is already fresh.
        changed = cached is not None and cached[0] != token
        self._stats_cache[(uri, local)] = (token, stats)
        if changed:
            self._stats_epoch += 1
        return stats

    # -- query execution -----------------------------------------------------

    def prepare(self, xquery_text: str, tracer=None) -> CompiledQuery:
        """Parse, plan, and closure-compile an XQuery (with caching).

        The compiled plan is immutable and thread-safe, so one cache
        entry serves every subsequent execution of the same text. Pass a
        ``repro.obs.Tracer`` to record ``xquery.parse`` and
        ``xquery.compile`` spans (cold compiles only) under the caller's
        current span."""
        tracer = NULL_TRACER if tracer is None else tracer

        def load() -> CompiledQuery:
            with tracer.span("xquery.parse"):
                module = parse_xquery(xquery_text)
            with tracer.span("xquery.compile"):
                plan = compile_module(
                    module, resolver=self.call_function,
                    optimize=self.optimize, pushdown=self.pushdown,
                    statistics=self.statistics_for if self.cost else None,
                    batch_size=self.batch_size, columnar=self)
            if plan.vector_plan is not None:
                # The scatter executor re-prepares the plan by text in
                # each worker; stamp the text so it can be shipped.
                plan.vector_plan.xquery_text = xquery_text
            estimate = plan.estimated_rows
            if estimate is not None:
                self._estimated_rows.add(int(round(estimate)))
            return plan

        # The stats epoch keys the entry: when a source's data moves
        # (version token change) or a source is (re)registered, the
        # epoch bumps and every plan costed under the old statistics
        # misses, forcing one recompile against fresh numbers.
        return self.plan_cache.get_or_load(
            (xquery_text, self.optimize, self.pushdown, self.cost,
             self.batch_size, self._stats_epoch), load)

    def execute(self, xquery_text: str,
                variables: dict[str, object] | None = None,
                tracer=None,
                context: Optional[QueryContext] = None,
                actuals: Optional[dict] = None) -> list:
        """Compile (with plan caching) and evaluate an XQuery, returning
        the materialized result sequence. *context* bounds the run with
        a deadline/cancellation token checked at tuple-batch granularity
        inside the compiled pipeline. *actuals* (a dict) collects actual
        output rows per plan node, keyed to the plan's
        ``plan_reports``."""
        tracer = NULL_TRACER if tracer is None else tracer
        plan = self.prepare(xquery_text, tracer=tracer)
        with tracer.span("xquery.evaluate"):
            return plan.evaluate(variables, context=context,
                                 actuals=actuals)

    def execute_stream(self, xquery_text: str,
                       variables: dict[str, object] | None = None,
                       tracer=None,
                       context: Optional[QueryContext] = None,
                       actuals: Optional[dict] = None) -> Iterator:
        """Compile (with plan caching) and evaluate an XQuery as a lazy
        item stream: FLWOR bodies pull source rows through the live
        pipeline only as the caller consumes items."""
        tracer = NULL_TRACER if tracer is None else tracer
        plan = self.prepare(xquery_text, tracer=tracer)
        return plan.stream_items(variables, context=context,
                                 actuals=actuals)

    def metadata_api(self, latency: float = 0.0) -> MetadataAPI:
        """The remote metadata API endpoint for this application."""
        return MetadataAPI(self.application, latency=latency)


def physical_function(table: Table, project_name: str,
                      service_path: str) -> DataServiceFunction:
    """Build the physical data service function a metadata import would
    produce for *table* (paper Example 2)."""
    service_name = service_path.rsplit("/", 1)[-1]
    namespace = f"ld:{project_name}/{service_path}"
    location = f"ld:{project_name}/schemas/{service_name}.xsd"
    columns = [(name, sql_to_xs(sql_type))
               for name, sql_type in table.columns]
    return DataServiceFunction(
        name=table.name,
        return_schema=flat_schema(table.name, namespace, location, columns),
        binding=TableBinding(table.name),
    )


def csv_function(name: str, path: str, project_name: str,
                 service_path: str, columns: list[tuple[str, str]],
                 delimiter: str = ",", header: bool = True) \
        -> DataServiceFunction:
    """A physical data service over a delimited file (Figure 1's 'files'
    source kind). ``columns`` maps column names to xs: simple types, in
    file order."""
    service_name = service_path.rsplit("/", 1)[-1]
    namespace = f"ld:{project_name}/{service_path}"
    location = f"ld:{project_name}/schemas/{service_name}.xsd"
    return DataServiceFunction(
        name=name,
        return_schema=flat_schema(name, namespace, location, columns),
        binding=CsvBinding(path=path, delimiter=delimiter, header=header),
    )


def callable_function(name: str, provider, project_name: str,
                      service_path: str, columns: list[tuple[str, str]],
                      parameters: tuple[FunctionParameter, ...] = ()) \
        -> DataServiceFunction:
    """A physical data service over a host Python function (Figure 1's
    'custom functions' source kind). *provider* receives one positional
    argument per declared parameter and returns row tuples."""
    service_name = service_path.rsplit("/", 1)[-1]
    namespace = f"ld:{project_name}/{service_path}"
    location = f"ld:{project_name}/schemas/{service_name}.xsd"
    return DataServiceFunction(
        name=name,
        return_schema=flat_schema(name, namespace, location, columns),
        parameters=parameters,
        binding=CallableBinding(provider=provider),
    )


def logical_function(name: str, body: str, project_name: str,
                     service_path: str,
                     columns: list[tuple[str, str]],
                     element_name: str | None = None,
                     parameters: tuple[FunctionParameter, ...] = ()) \
        -> DataServiceFunction:
    """Build a logical data service function with an XQuery body.

    ``columns`` maps the flat result's child element names to xs: simple
    type names, defining the .xsd the data service developer would author.
    """
    service_name = service_path.rsplit("/", 1)[-1]
    namespace = f"ld:{project_name}/{service_path}"
    location = f"ld:{project_name}/schemas/{service_name}.xsd"
    return DataServiceFunction(
        name=name,
        return_schema=flat_schema(element_name or name, namespace,
                                  location, columns),
        parameters=parameters,
        binding=XQueryBinding(body),
    )


def source_function(table_name: str,
                    columns: list[tuple[str, "SQLType"]],
                    project_name: str, service_path: str,
                    source_name: str | None = None) -> DataServiceFunction:
    """The physical data service function for a table of an SPI source.

    With *source_name* the function is bound to that registered source
    (:class:`SourceBinding`); without it, to the runtime's default
    source (:class:`TableBinding`) — the metadata-import shape the
    paper's relational wizard produces."""
    service_name = service_path.rsplit("/", 1)[-1]
    namespace = f"ld:{project_name}/{service_path}"
    location = f"ld:{project_name}/schemas/{service_name}.xsd"
    schema_columns = [(name, sql_to_xs(sql_type))
                      for name, sql_type in columns]
    binding = (TableBinding(table_name) if source_name is None
               else SourceBinding(source_name, table_name))
    return DataServiceFunction(
        name=table_name,
        return_schema=flat_schema(table_name, namespace, location,
                                  schema_columns),
        binding=binding,
    )


def import_tables(application: Application, project_name: str,
                  storage: "Storage | DataSource",
                  tables: list[str] | None = None) -> None:
    """Simulate DSP's relational metadata import: create one physical data
    service per table under *project_name*. *storage* may be a classic
    :class:`Storage` or any :class:`DataSource` (the runtime's default
    source); either way the functions are table-bound, so the runtime
    routes them through its default source's scan path."""
    project = application.projects.get(project_name)
    if project is None:
        from ..catalog import Project
        project = Project(project_name)
        application.add_project(project)
    is_source = isinstance(storage, DataSource)
    names = tables if tables is not None else (
        storage.tables() if is_source else storage.table_names())
    for table_name in names:
        columns = (storage.columns(table_name) if is_source
                   else list(storage.table(table_name).columns))
        service = DataService(table_name)
        service.add_function(
            source_function(table_name, columns, project_name,
                            table_name))
        project.add_data_service(service)


def import_source(application: Application, project_name: str,
                  source: DataSource,
                  tables: list[str] | None = None) -> None:
    """Metadata-import a *registered* (non-default) SPI source: one
    physical data service per table, bound by source name. The source
    must also be attached to the runtime with ``register_source``."""
    project = application.projects.get(project_name)
    if project is None:
        from ..catalog import Project
        project = Project(project_name)
        application.add_project(project)
    for table_name in (tables if tables is not None else source.tables()):
        service = DataService(table_name)
        service.add_function(
            source_function(table_name, source.columns(table_name),
                            project_name, table_name,
                            source_name=source.name))
        project.add_data_service(service)
