"""Partitioned scatter/gather execution across a process pool.

ROADMAP item 3's "scale-out inside one box": the GIL makes threads a
dead end for CPU-bound XQuery evaluation, so eligible vectorized scans
are split into source partitions (``DataSource.partitions``) and
evaluated by forked worker processes, each running the existing batch
pipeline over its slice. This mirrors the PRiSM "Tout-XML" mediator
shape — one mediator fans subplans out to wrapper sites and recomposes
the result — with fork-pool workers standing in for the remote sites.

Worker protocol
---------------
The pool uses the ``fork`` start method, so the (unpicklable) runtime
rides into workers as initializer state via copy-on-write memory; each
worker calls ``DSPRuntime.reset_after_fork`` once to rebuild every
lock-bearing structure. Per task, only small picklable values cross
the pipe: a :class:`PartitionTask` in (query text, partition spec,
scalar parameters), and a status tuple out —

* ``("ok", payload)`` — the partition's result,
* ``("stale",)`` — the worker's data snapshot no longer matches the
  parent's version token (parent restarts the pool once, re-forking
  over current data, then retries),
* ``("incompatible",)`` — the worker compiled a structurally different
  plan for the same text (should not happen; serial fallback),
* ``("error", type_name, message)`` — any worker-side failure. Custom
  exception types may not unpickle, so errors travel as strings.

Fallback rule: the serial executor is the answer to every parallel
problem. Any error, staleness that survives one pool restart, a
missing fork platform, or a source that cannot partition simply runs
the query on the ordinary in-process path — byte-identical by
construction, since workers run the same compiled plan over the same
snapshot the serial path would scan.

Order restoration: partitions are gathered in partition-index order
only after *all* workers finish (a full barrier — no output escapes
before every partition succeeded, which is what makes the wholesale
fallback possible). In "encode" mode concatenating the per-partition
chunk texts in index order *is* the serial byte order, because every
worker-side stage (scan, where, hash join probe) preserves its input
row order. In "batches" mode the parent re-bases each partition's
hidden restore-order ordinals by the cumulative scanned-row counts of
earlier partitions, then runs the order/restore/window/encode suffix
itself — see ``_VectorPlan.gather_batches``. In "partial_agg" mode —
an aggregate-led plan whose every aggregate decomposes into an
associative partial state — workers run scan→filter→partial-aggregate
and ship O(groups) partial-state tables instead of O(rows) columns;
the parent merges them in partition-index order (which reproduces the
serial first-seen group order, since partitions are contiguous slices
of the scan), finalizes, and runs the having/order/window/encode
suffix — see ``_VectorPlan.gather_partial``.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.pool
import time
import weakref
from dataclasses import dataclass
from typing import Optional

from ..errors import QueryCancelledError, QueryTimeoutError
from .lifecycle import QueryContext

#: Poll interval while waiting on worker results: bounds the latency of
#: noticing a parent-side cancellation at ~this many seconds.
_POLL_SECONDS = 0.05

#: Sentinel: at least one worker saw a different data version.
_STALE = object()

#: The forked runtime, installed once per worker by :func:`_init_worker`.
_WORKER_RUNTIME = None


def _init_worker(runtime) -> None:
    global _WORKER_RUNTIME
    # Any Pool object that rode into this fork (another runtime's pool
    # in the same process, say a serial/parallel differential pair) is
    # a ghost here: its worker processes belong to the parent. Its
    # __del__ would try to signal them over dead pipe fds at exit, so
    # silence it process-wide before anything else runs.
    multiprocessing.pool.Pool.__del__ = lambda self: None
    runtime.reset_after_fork()
    _WORKER_RUNTIME = runtime


@dataclass(frozen=True)
class PartitionTask:
    """Everything a worker needs to run one partition; must pickle."""

    xquery_text: str
    uri: str
    local: str
    spec: object  # sources.PartitionSpec
    params: dict  # external variable name -> scalar or None
    mode: str  # "encode" | "batches" | "partial_agg"
    version: object  # parent's source version token at scatter time
    timeout: Optional[float]  # parent deadline remaining at scatter
    signature: tuple  # parent plan's structural signature


def _run_partition(task: PartitionTask) -> tuple:
    """Worker-side task body (module-level so the pool can address it)."""
    runtime = _WORKER_RUNTIME
    try:
        plan = runtime.prepare(task.xquery_text)
        vplan = plan.vector_plan
        if vplan is None or vplan.signature != task.signature:
            return ("incompatible",)
        target = runtime._columnar_target(task.uri, task.local)
        if target is None:
            return ("incompatible",)
        _function, _faulty, source, table = target
        if source.version(table) != task.version:
            return ("stale",)
        from ..xquery.evaluator import CONTEXT_KEY, _Frame

        bindings = {name: ([] if value is None else [value])
                    for name, value in task.params.items()}
        bindings[CONTEXT_KEY] = QueryContext(timeout=task.timeout)
        payload = vplan.run_partition(_Frame(bindings), task.spec,
                                      task.mode)
        return ("ok", payload)
    except Exception as exc:  # noqa: BLE001 - protocol boundary
        return ("error", type(exc).__name__, str(exc))


def _ensure_pool(runtime):
    if runtime._pool is None:
        context = multiprocessing.get_context("fork")
        pool = context.Pool(
            processes=runtime.parallelism,
            initializer=_init_worker, initargs=(runtime,))
        # Terminate when the runtime is collected or the interpreter
        # exits (finalize hooks atexit): a pool leaked in RUN state
        # would otherwise fire its __del__ during teardown, racing the
        # GC over its already-closed queue fds. terminate() is
        # idempotent, so this composes with shutdown_pool().
        weakref.finalize(runtime, pool.terminate)
        runtime._pool = pool
    return runtime._pool


def _collect(async_results, ctx) -> list:
    """Await every partition result (full-gather barrier), polling the
    parent's lifecycle context so cancellation/deadline aborts the wait
    within :data:`_POLL_SECONDS` (workers hit their own shipped
    deadline and exit on their side)."""
    results = []
    for pending in async_results:
        while True:
            try:
                results.append(pending.get(timeout=_POLL_SECONDS))
                break
            except multiprocessing.TimeoutError:
                if ctx is not None:
                    ctx.check()
    return results


def execute(runtime, vplan, state) -> Optional[object]:
    """Scatter *vplan* (an eligible ``_VectorPlan``) across the pool
    and gather the result; None means "run serially instead"."""
    info = vplan.stages[0][1]
    target = runtime._columnar_target(info.uri, info.local)
    if target is None:
        return None
    _function, _faulty, source, table = target
    if runtime.parallel_min_rows > 0:
        try:
            stats = runtime.statistics_for(info.uri, info.local)
        except Exception:
            stats = None
        if stats is None or stats.row_count < runtime.parallel_min_rows:
            # Below the scatter threshold (or size unknown): the pool
            # tax exceeds the win. Not counted as a fallback — this is
            # the planner declining, not parallel execution failing.
            return None
    try:
        request = vplan._live_request(info.request, state.frame)
        specs = source.partitions(table, request, runtime.parallelism)
        version = source.version(table)
    except Exception:
        specs = None
        version = None
    if not specs or len(specs) < 2:
        return None

    timeout = state.ctx.remaining() if state.ctx is not None else None
    tasks = [PartitionTask(
        xquery_text=vplan.xquery_text, uri=info.uri, local=info.local,
        spec=spec, params=dict(state.params), mode=vplan.parallel_mode,
        version=version, timeout=timeout, signature=vplan.signature)
        for spec in specs]

    started = time.perf_counter()
    # Two rounds: a stale snapshot (data changed since the workers
    # forked) restarts the pool once — re-forking captures the current
    # data — before giving up to the serial path.
    for round_index in range(2):
        try:
            pool = _ensure_pool(runtime)
            pending = [pool.apply_async(_run_partition, (task,))
                       for task in tasks]
            raw = _collect(pending, state.ctx)
        except (QueryCancelledError, QueryTimeoutError):
            raise
        except Exception:
            runtime._parallel_fallbacks.increment()
            return None
        payloads = []
        stale = False
        failed = False
        for result in raw:
            kind = result[0]
            if kind == "ok":
                payloads.append(result[1])
            elif kind == "stale":
                stale = True
            else:  # error / incompatible
                failed = True
        if failed:
            runtime._parallel_fallbacks.increment()
            return None
        if stale:
            runtime.shutdown_pool()
            continue
        runtime._gather_seconds.observe(time.perf_counter() - started)
        runtime._parallel_queries.increment()
        runtime._parallel_partitions.add(len(payloads))
        runtime._parallel_workers.add(
            min(runtime.parallelism, len(payloads)))
        return _merge(vplan, state, payloads)
    runtime._parallel_fallbacks.increment()
    return None


def _merge(vplan, state, payloads):
    """Stitch fully-gathered partition payloads back into the chunk
    stream the caller expects, charging the parent lifecycle context
    for the merged rows (admission accounts in-flight rows here — the
    workers charged only their own, now-dead contexts)."""
    if vplan.parallel_mode == "encode":
        from ..xquery.vector import VSTATS

        def emit():
            for text, out_rows, _scanned in payloads:
                if state.ctx is not None:
                    state.ctx.rows_buffered += out_rows
                    state.ctx.tick_rows(out_rows)
                if text:
                    VSTATS.batches += 1
                    VSTATS.rows += out_rows
                    yield text

        return emit()
    if vplan.parallel_mode == "partial_agg":
        scanned_total = sum(scanned for _table, _n, scanned in payloads)
        if state.ctx is not None:
            state.ctx.tick_rows(scanned_total)
            # Aggregation buffers whole-input state worker-side, so
            # admission charges the pre-aggregation scanned volume —
            # the same charge the serial aggregation stage makes.
            state.ctx.rows_buffered += scanned_total
        counter = getattr(vplan.columnar, "_partial_aggs", None)
        if counter is not None:
            counter.increment()
        return vplan.gather_partial(state, payloads)
    total = sum(n for _cols, n, _scanned in payloads)
    if state.ctx is not None:
        state.ctx.tick_rows(total)
    return vplan.gather_batches(state, payloads)
