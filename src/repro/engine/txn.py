"""The connection-level transaction manager (DESIGN.md §14).

One :class:`TransactionManager` lives inside each PEP 249
``Connection`` and mediates every mutation plan on its way to the
sources:

* **Autocommit** (the driver default): each statement plans and
  applies under the runtime's single-writer lock and is durable
  immediately; per-source statement atomicity (memory copy-on-write
  swap, SQLite ``SAVEPOINT``) makes it all-or-nothing.
* **Explicit transactions**: :meth:`begin` opens one; the write lock
  is acquired at the first write and held until :meth:`commit` or
  :meth:`rollback`, and each source is enlisted (``begin_txn``) the
  first time the transaction writes through it. Commit/rollback fan
  out to every enlisted source in enlistment order — best-effort
  sequential, not two-phase; with one writable source per statement
  corpus (the shipped backends) that is exact.

Reads are never blocked: they see consistent snapshots through source
version tokens (memory scans hold the copy-on-write row list they
started on; a transaction's own connection naturally reads its writes).
Statement planning happens *inside* the lock window, so the version
token a plan carries cannot go stale between victim selection and
apply — the token check in ``apply_mutations`` is the belt to this
lock's suspenders.

A transaction is a per-connection, single-threaded affair: interleaving
``begin``/``commit`` calls on one connection from multiple threads is
undefined (PEP 249 threadsafety level 2 shares connections, but
transaction demarcation remains the caller's job to serialize).
"""

from __future__ import annotations

from typing import Callable

from ..errors import ProgrammingError
from ..sources.spi import DataSource, MutationResult
from .dml import MutationPlan

__all__ = ["TransactionManager"]


class TransactionManager:
    """Transaction demarcation and write serialization for one
    connection over one :class:`DSPRuntime`."""

    def __init__(self, runtime):
        self._runtime = runtime
        self._active = False
        self._lock_held = False
        #: Sources the open transaction has written through, in first-
        #: write order (commit/rollback fan out in this order).
        self._enlisted: list[DataSource] = []
        # Lifetime counters for Connection.stats()'s transactions.*.
        self.begun = 0
        self.committed = 0
        self.rolled_back = 0
        self.autocommits = 0
        self.statements = 0
        self.rows_written = 0

    # -- state -------------------------------------------------------------

    @property
    def in_transaction(self) -> bool:
        """True between :meth:`begin` and the closing commit/rollback."""
        return self._active

    def _acquire_lock(self) -> None:
        if not self._lock_held:
            self._runtime.write_lock.acquire()
            self._lock_held = True

    def _release_lock(self) -> None:
        if self._lock_held:
            self._lock_held = False
            self._runtime.write_lock.release()

    # -- demarcation -------------------------------------------------------

    def begin(self) -> None:
        """Open an explicit transaction (autocommit suspends until the
        closing commit/rollback)."""
        if self._active:
            raise ProgrammingError("transaction already in progress")
        self._active = True
        self.begun += 1

    def commit(self) -> None:
        """Commit the open transaction; a no-op without one (PEP 249
        allows commit on a fresh connection)."""
        if not self._active:
            return
        enlisted, self._enlisted = self._enlisted, []
        try:
            for source in enlisted:
                source.commit_txn()
        finally:
            self._active = False
            self._release_lock()
        if enlisted:
            self._runtime.note_write()
        self.committed += 1

    def rollback(self) -> None:
        """Undo the open transaction on every enlisted source; a no-op
        without one."""
        if not self._active:
            return
        enlisted, self._enlisted = self._enlisted, []
        try:
            for source in enlisted:
                source.rollback_txn()
        finally:
            self._active = False
            self._release_lock()
        if enlisted:
            # Memory sources restore their version tokens exactly;
            # SQLite's token moves forward — either way cached plans
            # and statistics must be re-checked against the tokens.
            self._runtime.note_write()
        self.rolled_back += 1

    # -- statement execution -----------------------------------------------

    def run(self, plan_factory: Callable[[], MutationPlan]
            ) -> MutationResult:
        """Execute one DML statement.

        *plan_factory* performs victim selection/expression evaluation
        (``repro.engine.dml.plan_mutation``); it is invoked inside the
        write-lock window so the plan's version token stays current
        through apply. In autocommit mode the statement is its own
        lock scope and durable on return; inside a transaction the
        lock persists and the source is enlisted.
        """
        if self._active:
            self._acquire_lock()
            return self._apply_enlisted(plan_factory())
        with self._runtime.write_lock:
            plan = plan_factory()
            result = plan.source.apply_mutations(
                plan.mutations, expected_version=plan.version)
        self.autocommits += 1
        self.statements += 1
        self.rows_written += result.rowcount
        self._runtime.note_write()
        return result

    def run_batch(self, plan_factories) -> list[MutationResult]:
        """Execute a batch of DML statements (``executemany``).

        Inside a transaction the batch simply accumulates into it. In
        autocommit mode the whole batch is one implicit transaction —
        all parameter rows apply or none do — matching the common
        driver expectation that ``executemany`` is not torn by a
        mid-batch failure.
        """
        if self._active:
            self._acquire_lock()
            return [self._apply_enlisted(factory())
                    for factory in plan_factories]
        self.begin()
        try:
            # Same lock discipline as a lone statement: the whole batch
            # is one write window (commit/rollback releases it).
            self._acquire_lock()
            results = [self._apply_enlisted(factory())
                       for factory in plan_factories]
        except BaseException:
            self.rollback()
            raise
        self.commit()
        self.autocommits += 1
        return results

    def _apply_enlisted(self, plan: MutationPlan) -> MutationResult:
        source = plan.source
        if source not in self._enlisted:
            source.begin_txn()
            self._enlisted.append(source)
        result = source.apply_mutations(plan.mutations,
                                        expected_version=plan.version)
        self.statements += 1
        self.rows_written += result.rowcount
        return result

    # -- teardown / reporting ----------------------------------------------

    def close(self) -> None:
        """Connection teardown: roll back any open transaction (PEP 249:
        closing with a pending transaction discards it)."""
        if self._active:
            self.rollback()

    def stats(self) -> dict:
        """The ``transactions`` section of ``Connection.stats()``."""
        return {
            "active": self._active,
            "begun": self.begun,
            "committed": self.committed,
            "rolled_back": self.rolled_back,
            "autocommits": self.autocommits,
            "statements": self.statements,
            "rows_written": self.rows_written,
        }
