"""Execution engines (S6+S7 in DESIGN.md).

In-memory relational storage, the reference SQL-92 executor used as the
translator's correctness oracle and benchmark baseline, and the DSP
runtime that hosts data services and executes XQuery.
"""

from .dml import MutationPlan, mutation_parameter_count, plan_mutation
from .dsp import (
    DSPRuntime,
    callable_function,
    csv_function,
    import_source,
    import_tables,
    logical_function,
    physical_function,
    source_function,
)
from .faults import FaultProfile, FaultyBinding, install_fault, make_faulty
from .lifecycle import (
    AdmissionController,
    AdmissionSlot,
    CancellationToken,
    QueryContext,
    RetryPolicy,
    TenantQuota,
    TenantSlot,
)
from .sqlexec import (
    ResultTable,
    SQLExecutor,
    TableProvider,
    canonical_value,
    row_key,
    sql_cast,
)
from .table import Storage, Table, coerce_value
from .txn import TransactionManager

__all__ = [
    "AdmissionController",
    "AdmissionSlot",
    "CancellationToken",
    "DSPRuntime",
    "FaultProfile",
    "FaultyBinding",
    "MutationPlan",
    "QueryContext",
    "ResultTable",
    "RetryPolicy",
    "SQLExecutor",
    "Storage",
    "Table",
    "TableProvider",
    "TenantQuota",
    "TenantSlot",
    "TransactionManager",
    "callable_function",
    "canonical_value",
    "csv_function",
    "coerce_value",
    "import_source",
    "import_tables",
    "install_fault",
    "logical_function",
    "make_faulty",
    "mutation_parameter_count",
    "physical_function",
    "plan_mutation",
    "row_key",
    "source_function",
    "sql_cast",
]
