"""Execution engines (S6+S7 in DESIGN.md).

In-memory relational storage, the reference SQL-92 executor used as the
translator's correctness oracle and benchmark baseline, and the DSP
runtime that hosts data services and executes XQuery.
"""

from .dsp import (
    DSPRuntime,
    callable_function,
    csv_function,
    import_tables,
    logical_function,
    physical_function,
)
from .sqlexec import (
    ResultTable,
    SQLExecutor,
    TableProvider,
    canonical_value,
    row_key,
    sql_cast,
)
from .table import Storage, Table, coerce_value

__all__ = [
    "DSPRuntime",
    "ResultTable",
    "SQLExecutor",
    "Storage",
    "Table",
    "TableProvider",
    "callable_function",
    "canonical_value",
    "csv_function",
    "coerce_value",
    "import_tables",
    "logical_function",
    "physical_function",
    "row_key",
    "sql_cast",
]
