"""The demo application used throughout tests and examples.

Mirrors the paper's running examples: a ``TestDataServices`` project with
CUSTOMERS and PAYMENTS data services (Examples 1-10) plus PO_CUSTOMERS
(Example 11) and an ORDERS table for richer reporting queries. Data is
deterministic and includes NULLs so three-valued-logic paths are always
exercised.
"""

from __future__ import annotations

import datetime
from decimal import Decimal

from ..catalog import Application
from ..engine import DSPRuntime, Storage, import_tables
from ..sql.types import SQLType

PROJECT = "TestDataServices"
APPLICATION = "RTLApp"


def build_storage() -> Storage:
    """Create and populate the demo tables."""
    storage = Storage()

    customers = storage.create_table("CUSTOMERS", [
        ("CUSTOMERID", SQLType("INTEGER")),
        ("CUSTOMERNAME", SQLType("VARCHAR")),
        ("REGION", SQLType("VARCHAR")),
        ("CREDITLIMIT", SQLType("DECIMAL")),
    ])
    customers.insert_many([
        (55, "Joe", "WEST", Decimal("1000.00")),
        (23, "Sue", "EAST", Decimal("2500.50")),
        (7, "Ann", "WEST", None),
        (12, "Bob", "NORTH", Decimal("500.00")),
        (31, "Eve", "EAST", Decimal("1000.00")),
        (44, "Dan", None, Decimal("750.25")),
    ])

    payments = storage.create_table("PAYMENTS", [
        ("PAYMENTID", SQLType("INTEGER")),
        ("CUSTID", SQLType("INTEGER")),
        ("PAYMENT", SQLType("DECIMAL")),
        ("PAYDATE", SQLType("DATE")),
    ])
    payments.insert_many([
        (1, 55, Decimal("100.00"), datetime.date(2005, 1, 10)),
        (2, 23, Decimal("250.00"), datetime.date(2005, 1, 12)),
        (3, 55, Decimal("75.50"), datetime.date(2005, 2, 1)),
        (4, 31, Decimal("10.00"), datetime.date(2005, 2, 14)),
        (5, 99, Decimal("33.00"), datetime.date(2005, 3, 1)),  # orphan
        (6, 23, None, datetime.date(2005, 3, 2)),              # NULL amount
    ])

    po_customers = storage.create_table("PO_CUSTOMERS", [
        ("ORDERID", SQLType("INTEGER")),
        ("CUSTOMERID", SQLType("INTEGER")),
    ])
    po_customers.insert_many([
        (1001, 55), (1002, 55), (1003, 23), (1004, 7), (1005, 55),
        (1006, 31), (1007, 23),
    ])

    orders = storage.create_table("ORDERS", [
        ("ORDERID", SQLType("INTEGER")),
        ("CUSTID", SQLType("INTEGER")),
        ("AMOUNT", SQLType("DECIMAL")),
        ("STATUS", SQLType("VARCHAR")),
        ("ORDERDATE", SQLType("DATE")),
    ])
    orders.insert_many([
        (1001, 55, Decimal("120.00"), "SHIPPED", datetime.date(2005, 1, 5)),
        (1002, 55, Decimal("80.00"), "OPEN", datetime.date(2005, 1, 20)),
        (1003, 23, Decimal("300.00"), "SHIPPED", datetime.date(2005, 2, 2)),
        (1004, 7, Decimal("45.99"), "CANCELLED",
         datetime.date(2005, 2, 10)),
        (1005, 55, Decimal("9.99"), "OPEN", datetime.date(2005, 3, 1)),
        (1006, 31, None, "OPEN", datetime.date(2005, 3, 15)),
        (1007, 23, Decimal("300.00"), "SHIPPED",
         datetime.date(2005, 3, 20)),
    ])

    return storage


def build_runtime(config=None, backend: str | None = None,
                  **runtime_options) -> DSPRuntime:
    """Demo application with one project importing every demo table.

    *backend* picks the physical source the demo tables live in:
    ``"memory"`` (the default) keeps the in-memory :class:`Storage`,
    ``"sqlite"`` copies it into an in-memory SQLite database served
    through :class:`repro.SQLiteSource` (predicate/projection pushdown).
    When omitted, the ``REPRO_DEFAULT_BACKEND`` environment variable
    decides — that is how the CI matrix runs the whole suite against
    the SQLite source. Engine tuning passes via *config* (a
    :class:`repro.RuntimeConfig`); plain keyword options (e.g.
    ``max_concurrent_queries``, ``retry_policy``) are folded in on top.
    """
    import os

    from ..config import RuntimeConfig

    if backend is None:
        backend = os.environ.get("REPRO_DEFAULT_BACKEND", "memory")
    storage = build_storage()
    if backend == "sqlite":
        from ..sources.sqlite import SQLiteSource

        source = SQLiteSource.from_storage(storage, name="sqlite")
    elif backend == "memory":
        source = storage
    else:
        raise ValueError(
            f"unknown demo backend {backend!r}; expected 'memory' or "
            f"'sqlite'")
    if runtime_options:
        config = (config or RuntimeConfig()).replace(**runtime_options)
    application = Application(APPLICATION)
    import_tables(application, PROJECT, source)
    return DSPRuntime(application, source, config=config)
