"""Random SQL-92 query generation for equivalence testing and benchmarks.

Generates syntactically and semantically valid SELECT statements over a
set of table schemas, spanning the translator's feature surface:
projections with expressions, joins of every flavor, derived tables,
predicate subqueries, grouping/aggregation, set operations, DISTINCT, and
ORDER BY. Queries are guaranteed runtime-safe (no division by zero, no
invalid casts), so any disagreement between the translated XQuery and the
reference executor is a genuine translation bug.

Also defines the five query complexity classes (C1..C5) used by the
translation-throughput benchmark (experiment E8 in DESIGN.md).
"""

from __future__ import annotations

import random
from dataclasses import dataclass



@dataclass(frozen=True)
class TableShape:
    """What the generator needs to know about one table."""

    name: str
    int_columns: tuple[str, ...]
    string_columns: tuple[str, ...]
    decimal_columns: tuple[str, ...] = ()
    date_columns: tuple[str, ...] = ()

    def all_columns(self) -> tuple[str, ...]:
        return (self.int_columns + self.string_columns
                + self.decimal_columns + self.date_columns)


#: The demo application's tables (see repro.workloads.demo).
DEMO_SHAPES = (
    TableShape("CUSTOMERS", ("CUSTOMERID",),
               ("CUSTOMERNAME", "REGION"), ("CREDITLIMIT",)),
    TableShape("PAYMENTS", ("PAYMENTID", "CUSTID"), (),
               ("PAYMENT",), ("PAYDATE",)),
    TableShape("PO_CUSTOMERS", ("ORDERID", "CUSTOMERID"), ()),
    TableShape("ORDERS", ("ORDERID", "CUSTID"), ("STATUS",),
               ("AMOUNT",), ("ORDERDATE",)),
)

_REGIONS = ("WEST", "EAST", "NORTH", "SOUTH")
_NAMES = ("Joe", "Sue", "Ann", "Bob", "Eve", "Dan", "Zed")


class QueryGenerator:
    """Seeded random SELECT generator over a set of table shapes."""

    def __init__(self, seed: int, shapes: tuple[TableShape, ...] = DEMO_SHAPES):
        self._rng = random.Random(seed)
        self._shapes = shapes
        self._alias_counter = 0

    # -- public API ---------------------------------------------------------

    def query(self) -> str:
        """One random top-level query (possibly a set operation), with a
        deterministic ORDER BY so results are comparable as lists."""
        roll = self._rng.random()
        if roll < 0.12:
            # Both sides project the same number of integer columns so
            # the corresponding-column types are always compatible.
            arity = self._rng.randint(1, 2)
            left = self.select(allow_order=False, arity_like=(None, arity))
            right = self.select(allow_order=False, arity_like=(None, arity))
            op = self._rng.choice(["UNION", "UNION ALL", "INTERSECT",
                                   "EXCEPT"])
            return f"{left[0]} {op} {right[0]}"
        return self.select(allow_order=False)[0]

    def select(self, allow_order: bool = True, arity_like=None,
               depth: int = 0):
        """Build one SELECT; returns (sql, arity)."""
        rng = self._rng
        table, alias = self._pick_table(depth)
        items, arity = self._projection(table, alias, arity_like, depth)
        sql = [f"SELECT {'DISTINCT ' if rng.random() < 0.15 else ''}"
               f"{items}"]
        from_clause, join_alias, join_table = self._from(table, alias,
                                                         depth)
        sql.append(f"FROM {from_clause}")
        if rng.random() < 0.75:
            sql.append("WHERE " + self._predicate(
                table, alias, depth, join_table, join_alias))
        return " ".join(sql), arity

    # -- helpers -----------------------------------------------------------------

    def _next_alias(self) -> str:
        self._alias_counter += 1
        return f"T{self._alias_counter}"

    def _pick_table(self, depth: int) -> tuple[TableShape, str]:
        table = self._rng.choice(self._shapes)
        return table, self._next_alias()

    def _column(self, table: TableShape, alias: str,
                kind: str | None = None) -> str:
        rng = self._rng
        if kind == "int" or (kind is None and (table.string_columns == ()
                                               or rng.random() < 0.5)):
            name = rng.choice(table.int_columns)
        elif kind == "string" and table.string_columns:
            name = rng.choice(table.string_columns)
        elif kind == "decimal" and table.decimal_columns:
            name = rng.choice(table.decimal_columns)
        else:
            name = rng.choice(table.all_columns())
        return f"{alias}.{name}"

    def _int_value(self) -> str:
        return str(self._rng.randint(0, 60))

    def _string_value(self) -> str:
        pool = _REGIONS + _NAMES + ("OPEN", "SHIPPED", "CANCELLED")
        return f"'{self._rng.choice(pool)}'"

    def _projection(self, table: TableShape, alias: str, arity_like,
                    depth: int) -> tuple[str, int]:
        rng = self._rng
        if arity_like is not None:
            # Match a set-operation sibling: project N int columns.
            _sql, arity = arity_like
            columns = [self._column(table, alias, "int")
                       for _ in range(arity)]
            return ", ".join(columns), arity
        if rng.random() < 0.18 and depth == 0:
            key = self._column(table, alias, "int")
            aggregates = [
                "COUNT(*)",
                f"COUNT({self._column(table, alias)})",
                f"MIN({self._column(table, alias, 'int')})",
                f"MAX({self._column(table, alias, 'int')})",
                f"SUM({self._column(table, alias, 'int')})",
            ]
            agg = rng.choice(aggregates)
            self._pending_group_by = key
            return f"{key}, {agg}", 2
        self._pending_group_by = None
        count = rng.randint(1, 3)
        items = []
        for index in range(count):
            roll = rng.random()
            if roll < 0.6:
                items.append(self._column(table, alias))
            elif roll < 0.8:
                items.append(f"{self._column(table, alias, 'int')} + "
                             f"{self._int_value()} AS X{index}")
            elif roll < 0.9 and table.string_columns:
                items.append(f"UPPER({self._column(table, alias, 'string')})"
                             f" AS U{index}")
            else:
                items.append(
                    f"CASE WHEN {self._column(table, alias, 'int')} > "
                    f"{self._int_value()} THEN 'hi' ELSE 'lo' END "
                    f"AS C{index}")
        return ", ".join(items), count

    def _from(self, table: TableShape, alias: str, depth: int):
        rng = self._rng
        base = f"{table.name} AS {alias}"
        if depth < 1 and rng.random() < 0.35:
            other = rng.choice(self._shapes)
            other_alias = self._next_alias()
            kind = rng.choice(["INNER JOIN", "LEFT OUTER JOIN",
                               "RIGHT OUTER JOIN", "FULL OUTER JOIN",
                               "INNER JOIN"])
            condition = (f"{self._column(table, alias, 'int')} = "
                         f"{self._column(other, other_alias, 'int')}")
            return (f"{base} {kind} {other.name} AS {other_alias} "
                    f"ON {condition}", other_alias, other)
        if depth < 1 and rng.random() < 0.18:
            # Wrap the base table in a derived query exposing the same
            # columns under the same alias, so the projection's
            # references stay valid.
            inner_alias = self._next_alias()
            inner = f"SELECT {inner_alias}.* FROM {table.name} AS " \
                    f"{inner_alias}"
            if rng.random() < 0.5:
                inner += (f" WHERE {self._column(table, inner_alias, 'int')}"
                          f" < {self._int_value()}")
            return f"({inner}) AS {alias}", None, None
        return base, None, None

    def _predicate(self, table: TableShape, alias: str, depth: int,
                   join_table, join_alias) -> str:
        parts = [self._simple_predicate(table, alias, depth)]
        if self._rng.random() < 0.4:
            connective = self._rng.choice(["AND", "OR", "AND NOT"])
            parts.append(connective)
            parts.append(self._simple_predicate(table, alias, depth))
        return " ".join(parts)

    def _simple_predicate(self, table: TableShape, alias: str,
                          depth: int) -> str:
        rng = self._rng
        roll = rng.random()
        int_col = self._column(table, alias, "int")
        if roll < 0.3:
            op = rng.choice(["=", "<>", "<", "<=", ">", ">="])
            return f"{int_col} {op} {self._int_value()}"
        if roll < 0.4:
            return (f"{int_col} BETWEEN {self._int_value()} "
                    f"AND {self._int_value()}")
        if roll < 0.5:
            values = ", ".join(self._int_value() for _ in range(3))
            negated = "NOT " if rng.random() < 0.3 else ""
            return f"{int_col} {negated}IN ({values})"
        if roll < 0.6 and table.string_columns:
            column = self._column(table, alias, "string")
            negated = "NOT " if rng.random() < 0.3 else ""
            pattern = rng.choice(["'%o%'", "'S%'", "'_o_'", "'%T'"])
            return f"{column} {negated}LIKE {pattern}"
        if roll < 0.7:
            column = self._column(table, alias)
            negated = "NOT " if rng.random() < 0.5 else ""
            return f"{column} IS {negated}NULL"
        if roll < 0.8 and depth < 1:
            other = rng.choice(self._shapes)
            other_alias = self._next_alias()
            negated = "NOT " if rng.random() < 0.3 else ""
            return (f"{int_col} {negated}IN (SELECT "
                    f"{self._column(other, other_alias, 'int')} FROM "
                    f"{other.name} AS {other_alias})")
        if roll < 0.9 and depth < 1:
            other = rng.choice(self._shapes)
            other_alias = self._next_alias()
            negated = "NOT " if rng.random() < 0.3 else ""
            return (f"{negated}EXISTS (SELECT * FROM {other.name} AS "
                    f"{other_alias} WHERE "
                    f"{self._column(other, other_alias, 'int')} = "
                    f"{int_col})")
        if table.string_columns:
            column = self._column(table, alias, "string")
            return f"{column} = {self._string_value()}"
        return f"{int_col} > {self._int_value()}"


def generate_query(seed: int) -> str:
    """One random query for *seed* (with GROUP BY attached if the
    projection chose an aggregate form, and sometimes an ORDER BY so
    order-sensitive comparison paths are exercised too)."""
    generator = QueryGenerator(seed)
    sql = generator.query()
    pending = getattr(generator, "_pending_group_by", None)
    is_setop = any(op in sql for op in ("UNION", "INTERSECT", "EXCEPT"))
    if pending and " GROUP BY " not in sql and not is_setop:
        sql += f" GROUP BY {pending}"
    if generator._rng.random() < 0.3:
        sql += " ORDER BY 1"
    return sql


# -- complexity classes for the translation benchmark (experiment E8) ----

COMPLEXITY_CLASSES: dict[str, str] = {
    "C1-simple": "SELECT * FROM CUSTOMERS",
    "C2-filter": (
        "SELECT CUSTOMERID, CUSTOMERNAME FROM CUSTOMERS "
        "WHERE REGION = 'WEST' AND CREDITLIMIT > 500"),
    "C3-join": (
        "SELECT C.CUSTOMERNAME, P.PAYMENT FROM CUSTOMERS C "
        "INNER JOIN PAYMENTS P ON C.CUSTOMERID = P.CUSTID "
        "WHERE P.PAYMENT > 50 ORDER BY P.PAYMENT DESC"),
    "C4-group": (
        "SELECT C.REGION, COUNT(*), SUM(P.PAYMENT) FROM CUSTOMERS C "
        "INNER JOIN PAYMENTS P ON C.CUSTOMERID = P.CUSTID "
        "GROUP BY C.REGION HAVING COUNT(*) > 1 ORDER BY 2 DESC"),
    "C5-nested": (
        "SELECT INFO.NAME, INFO.TOTAL FROM "
        "(SELECT C.CUSTOMERNAME NAME, SUM(P.PAYMENT) TOTAL "
        "FROM CUSTOMERS C LEFT OUTER JOIN PAYMENTS P "
        "ON C.CUSTOMERID = P.CUSTID GROUP BY C.CUSTOMERNAME) AS INFO "
        "WHERE INFO.TOTAL > (SELECT AVG(PAYMENT) FROM PAYMENTS) "
        "OR INFO.NAME IN (SELECT CUSTOMERNAME FROM CUSTOMERS "
        "WHERE REGION = 'WEST') ORDER BY INFO.NAME"),
}
