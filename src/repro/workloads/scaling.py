"""Parameterized synthetic workloads for the performance experiments.

``build_scaled_runtime(rows, extra_columns)`` creates a DSP runtime whose
FACTS table has a configurable row count and width, with deterministic
values and a fixed NULL rate — the knobs the result-path and end-to-end
benchmarks sweep (experiments E6/E12/E14 in DESIGN.md).
"""

from __future__ import annotations

import datetime
from decimal import Decimal

from ..catalog import Application
from ..engine import DSPRuntime, Storage, import_tables
from ..sql.types import SQLType

PROJECT = "Bench"
APPLICATION = "BenchApp"

_NAMES = ("Acme Widget Stores", "Supermart", "Ajax Distributors",
          "Zenith Parts and Service", "Omega Retail", "Delta Trading")
_REGIONS = ("WEST", "EAST", "NORTH", "SOUTH")


def build_scaled_storage(rows: int, extra_columns: int = 0,
                         null_rate: int = 10) -> Storage:
    """A FACTS table with *rows* rows and ``4 + extra_columns`` columns.

    Every ``null_rate``-th value of the nullable AMOUNT column is NULL,
    so NULL handling is always on the measured path.
    """
    storage = Storage()
    columns: list[tuple[str, SQLType]] = [
        ("ID", SQLType("INTEGER")),
        ("NAME", SQLType("VARCHAR")),
        ("REGION", SQLType("VARCHAR")),
        ("AMOUNT", SQLType("DECIMAL")),
    ]
    for index in range(extra_columns):
        columns.append((f"EXTRA{index}", SQLType("INTEGER")))
    facts = storage.create_table("FACTS", columns)
    for row_id in range(rows):
        amount = None if null_rate and row_id % null_rate == 0 \
            else Decimal(row_id * 7 % 10_000) / 100
        row: list = [
            row_id,
            _NAMES[row_id % len(_NAMES)],
            _REGIONS[row_id % len(_REGIONS)],
            amount,
        ]
        row.extend((row_id * (index + 3)) % 1000
                   for index in range(extra_columns))
        facts.insert(*row)

    details = storage.create_table("DETAILS", [
        ("DETAILID", SQLType("INTEGER")),
        ("FACTID", SQLType("INTEGER")),
        ("QTY", SQLType("INTEGER")),
        ("SHIPDATE", SQLType("DATE")),
    ])
    base = datetime.date(2005, 1, 1)
    for detail_id in range(rows * 2):
        details.insert(
            detail_id,
            detail_id % max(rows, 1),
            detail_id % 17,
            base + datetime.timedelta(days=detail_id % 365),
        )
    return storage


def build_scaled_runtime(rows: int, extra_columns: int = 0,
                         null_rate: int = 10) -> DSPRuntime:
    storage = build_scaled_storage(rows, extra_columns, null_rate)
    application = Application(APPLICATION)
    import_tables(application, PROJECT, storage)
    return DSPRuntime(application, storage)
