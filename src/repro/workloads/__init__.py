"""Workload generators (S9 in DESIGN.md): the demo application used by
tests/examples, synthetic data scaling, and the random SQL query
generator for property-based equivalence testing."""

from .demo import APPLICATION, PROJECT, build_runtime, build_storage
from .scaling import build_scaled_runtime, build_scaled_storage
from .generator import (
    COMPLEXITY_CLASSES,
    DEMO_SHAPES,
    QueryGenerator,
    TableShape,
    generate_query,
)

__all__ = [
    "APPLICATION",
    "COMPLEXITY_CLASSES",
    "DEMO_SHAPES",
    "PROJECT",
    "QueryGenerator",
    "TableShape",
    "build_runtime",
    "build_scaled_runtime",
    "build_scaled_storage",
    "build_storage",
    "generate_query",
]
