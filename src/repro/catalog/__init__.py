"""DSP catalog & metadata substrate (S3 in DESIGN.md).

Applications, projects, data services and their functions, XSD row
schemas, the Figure-2 SQL artifact mapping, and the remote metadata API
with its driver-side cache.
"""

from .dsfile import parse_xsd, render_ds_file, render_xsd
from .dataservice import (
    Application,
    CallableBinding,
    CsvBinding,
    DataService,
    DataServiceFunction,
    FunctionParameter,
    Project,
    SourceBinding,
    TableBinding,
    XQueryBinding,
)
from .metadata import (
    CacheStats,
    ColumnMetadata,
    MetadataAPI,
    MetadataCache,
    ProcedureMetadata,
    TableMetadata,
)
from .naming import (
    catalog_name,
    function_namespace,
    schema_location,
    schema_name,
    split_schema_name,
)
from .schema import (
    XS_SIMPLE_TYPES,
    ColumnDecl,
    ComplexChildDecl,
    RowSchema,
    flat_schema,
    sql_to_xs,
    xs_to_sql,
)

__all__ = [
    "Application",
    "CacheStats",
    "CallableBinding",
    "CsvBinding",
    "ColumnDecl",
    "ColumnMetadata",
    "ComplexChildDecl",
    "DataService",
    "DataServiceFunction",
    "FunctionParameter",
    "MetadataAPI",
    "MetadataCache",
    "ProcedureMetadata",
    "Project",
    "RowSchema",
    "SourceBinding",
    "TableBinding",
    "TableMetadata",
    "XQueryBinding",
    "XS_SIMPLE_TYPES",
    "catalog_name",
    "flat_schema",
    "function_namespace",
    "parse_xsd",
    "render_ds_file",
    "render_xsd",
    "schema_location",
    "schema_name",
    "split_schema_name",
    "sql_to_xs",
    "xs_to_sql",
]
