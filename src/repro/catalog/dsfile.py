"""Rendering and parsing of ``.ds`` and ``.xsd`` artifacts.

A data service "is captured as a .ds file, an XQuery file that contains
definitions for each of a given data service's functions" (paper section
3.1, Example 2), and every function's return type lives in an ``.xsd``
authored (or metadata-imported) at development time.

``render_ds_file`` produces the Example-2 shape::

    declare function f1:CUSTOMERS()
        as schema-element(t1:CUSTOMERS)*
        external;

with XQuery bodies inline for logical functions. ``render_xsd`` /
``parse_xsd`` round-trip flat row schemas through real XML Schema
documents, which is how a physical metadata import would persist them.
"""

from __future__ import annotations

from ..errors import CatalogError
from ..xmlmodel import parse_document
from .dataservice import DataService, DataServiceFunction, XQueryBinding
from .schema import ColumnDecl, ComplexChildDecl, RowSchema

XSD_NS = "http://www.w3.org/2001/XMLSchema"


def render_ds_file(service: DataService) -> str:
    """The .ds document for *service* (paper Example 2)."""
    functions = list(service.functions.values())
    if not functions:
        raise CatalogError(f"data service {service.path} has no functions")
    schemas: dict[tuple[str, str], str] = {}
    for function in functions:
        row = function.return_schema
        key = (row.target_namespace, row.schema_location)
        if key not in schemas:
            schemas[key] = f"t{len(schemas) + 1}"
    lines = ['xquery version "1.0";', ""]
    for (uri, location), prefix in schemas.items():
        lines.append(f'import schema namespace {prefix} = "{uri}"')
        lines.append(f'    at "{location}";')
    primary_ns = functions[0].return_schema.target_namespace
    lines.append("")
    lines.append(f'declare namespace f1 = "{primary_ns}";')
    lines.append("")
    for function in functions:
        lines.extend(_render_function(function, schemas))
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def _render_function(function: DataServiceFunction,
                     schemas: dict[tuple[str, str], str]) -> list[str]:
    row = function.return_schema
    prefix = schemas[(row.target_namespace, row.schema_location)]
    params = ", ".join(f"${p.name} as xs:{p.xs_type}"
                       for p in function.parameters)
    head = f"declare function f1:{function.name}({params})"
    result = f"    as schema-element({prefix}:{row.element_name})*"
    if isinstance(function.binding, XQueryBinding):
        body = function.binding.body.strip()
        return [head, result, "{", body, "};"]
    return [head, result, "    external;"]


def render_xsd(schema: RowSchema) -> str:
    """The .xsd document declaring *schema*'s row element."""
    lines = [
        '<?xml version="1.0" encoding="UTF-8"?>',
        f'<xs:schema targetNamespace="{schema.target_namespace}"',
        f'    xmlns:xs="{XSD_NS}"',
        '    elementFormDefault="unqualified">',
        f'  <xs:element name="{schema.element_name}">',
        "    <xs:complexType>",
        "      <xs:sequence>",
    ]
    for child in schema.children:
        if isinstance(child, ColumnDecl):
            nillable = ' nillable="true"' if child.nillable else ""
            lines.append(f'        <xs:element name="{child.name}" '
                         f'type="xs:{child.xs_type}"{nillable}/>')
        else:
            assert isinstance(child, ComplexChildDecl)
            lines.append(f'        <xs:element name="{child.name}">')
            lines.append("          <xs:complexType><xs:sequence>")
            for name in child.child_names:
                lines.append(f'            <xs:element name="{name}" '
                             f'type="xs:string"/>')
            lines.append("          </xs:sequence></xs:complexType>")
            lines.append("        </xs:element>")
    lines.extend([
        "      </xs:sequence>",
        "    </xs:complexType>",
        "  </xs:element>",
        "</xs:schema>",
    ])
    return "\n".join(lines) + "\n"


def parse_xsd(text: str, schema_location: str = "") -> RowSchema:
    """Parse an .xsd produced by :func:`render_xsd` back into a
    RowSchema (the client side of a metadata import)."""
    document = parse_document(text)
    root = document.root()
    if root.name.local != "schema" or root.name.uri != XSD_NS:
        raise CatalogError("not an XML Schema document")
    target = root.attribute("targetNamespace")
    if target is None:
        raise CatalogError("schema has no targetNamespace")
    elements = list(root.child_elements("element"))
    if len(elements) != 1:
        raise CatalogError(
            f"expected one top-level element declaration, got "
            f"{len(elements)}")
    row_element = elements[0]
    name_attr = row_element.attribute("name")
    if name_attr is None:
        raise CatalogError("row element declaration has no name")
    children: list[ColumnDecl | ComplexChildDecl] = []
    for complex_type in row_element.child_elements("complexType"):
        for sequence in complex_type.child_elements("sequence"):
            for child in sequence.child_elements("element"):
                children.append(_parse_child(child))
    return RowSchema(element_name=name_attr.value,
                     target_namespace=target.value,
                     schema_location=schema_location,
                     children=tuple(children))


def _parse_child(element) -> ColumnDecl | ComplexChildDecl:
    name = element.attribute("name")
    if name is None:
        raise CatalogError("element declaration has no name")
    type_attr = element.attribute("type")
    if type_attr is None:
        names = []
        for complex_type in element.child_elements("complexType"):
            for sequence in complex_type.child_elements("sequence"):
                for inner in sequence.child_elements("element"):
                    inner_name = inner.attribute("name")
                    if inner_name is not None:
                        names.append(inner_name.value)
        return ComplexChildDecl(name=name.value, child_names=tuple(names))
    xs_type = type_attr.value.split(":", 1)[-1]
    nillable = element.attribute("nillable")
    return ColumnDecl(name=name.value, xs_type=xs_type,
                      nillable=nillable is not None
                      and nillable.value == "true")
