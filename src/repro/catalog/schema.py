"""XML Schema (XSD) fragments describing data service function results.

Every data service function has a return type "defined in an XML Schema
definition (.xsd) file by the AquaLogic data service developer" (paper
section 3.1). For the JDBC driver, the interesting schemas are the *flat*
ones: a row element whose children are all simple-typed. Those children
become the SQL table's columns.

This module models just enough of XSD for that purpose: simple type names,
element declarations with nillability/optionality, and the flat row shape,
along with the bidirectional mapping between ``xs:`` simple types and SQL
types that the translator's type computation needs.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import FlatnessError
from ..sql.types import SQLType, type_from_name

#: xs: simple type local names we support as column types.
XS_SIMPLE_TYPES = frozenset({
    "string", "int", "integer", "long", "short", "decimal", "float",
    "double", "boolean", "date", "time", "dateTime",
})

_XS_TO_SQL = {
    "string": "VARCHAR",
    "short": "SMALLINT",
    "int": "INTEGER",
    "integer": "DECIMAL",   # xs:integer is unbounded; DECIMAL is the match
    "long": "BIGINT",
    "decimal": "DECIMAL",
    "float": "REAL",
    "double": "DOUBLE",
    "date": "DATE",
    "time": "TIME",
    "dateTime": "TIMESTAMP",
    "boolean": "VARCHAR",   # SQL-92 has no BOOLEAN; surfaced as a string
}

_SQL_TO_XS = {
    "VARCHAR": "string",
    "CHAR": "string",
    "SMALLINT": "short",
    "INTEGER": "int",
    "BIGINT": "long",
    "DECIMAL": "decimal",
    "REAL": "float",
    "DOUBLE": "double",
    "DATE": "date",
    "TIME": "time",
    "TIMESTAMP": "dateTime",
}


def xs_to_sql(xs_type: str) -> SQLType:
    """SQL type surfaced through the JDBC driver for an xs: simple type."""
    try:
        return type_from_name(_XS_TO_SQL[xs_type])
    except KeyError:
        raise FlatnessError(
            f"xs:{xs_type} has no SQL column mapping") from None


def sql_to_xs(sql_type: SQLType) -> str:
    """The xs: simple type the translator casts SQL values to."""
    try:
        return _SQL_TO_XS[sql_type.kind]
    except KeyError:
        raise FlatnessError(
            f"SQL type {sql_type} has no xs: mapping") from None


@dataclass(frozen=True)
class ColumnDecl:
    """A simple-typed child element of the row element — a SQL column.

    ``nillable`` elements may carry SQL NULL (encoded as an empty
    element, see repro.xmlmodel.model).
    """

    name: str
    xs_type: str
    nillable: bool = True

    def __post_init__(self) -> None:
        if self.xs_type not in XS_SIMPLE_TYPES:
            raise FlatnessError(
                f"column {self.name}: xs:{self.xs_type} is not a supported "
                f"simple type")

    @property
    def sql_type(self) -> SQLType:
        return xs_to_sql(self.xs_type)


@dataclass(frozen=True)
class ComplexChildDecl:
    """A complex-typed child element (nested structure).

    Its presence in a row schema makes the function non-flat and therefore
    not exposable as a SQL table (paper section 2.2, simplification 1).
    """

    name: str
    child_names: tuple[str, ...] = ()


@dataclass(frozen=True)
class RowSchema:
    """Schema of the element sequence a data service function returns.

    ``element_name`` is the row element's local name (e.g. CUSTOMERS);
    ``target_namespace`` and ``schema_location`` feed the generated
    ``import schema namespace`` prolog entries.
    """

    element_name: str
    target_namespace: str
    schema_location: str
    children: tuple[ColumnDecl | ComplexChildDecl, ...] = ()

    def is_flat(self) -> bool:
        """True when every child is a simple-typed column."""
        return all(isinstance(c, ColumnDecl) for c in self.children)

    @property
    def columns(self) -> tuple[ColumnDecl, ...]:
        """The columns of the table view; raises FlatnessError if the
        schema has complex children (the paper's flatness restriction)."""
        if not self.is_flat():
            bad = [c.name for c in self.children
                   if isinstance(c, ComplexChildDecl)]
            raise FlatnessError(
                f"element {self.element_name} is not flat: complex "
                f"children {', '.join(bad)}")
        return tuple(c for c in self.children
                     if isinstance(c, ColumnDecl))

    def column(self, name: str) -> ColumnDecl | None:
        for col in self.columns:
            if col.name == name:
                return col
        return None

    def column_names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.columns)


def flat_schema(element_name: str, target_namespace: str,
                schema_location: str,
                columns: list[tuple[str, str]] | dict[str, str]) -> RowSchema:
    """Convenience builder: ``columns`` maps column name to xs: type."""
    pairs = columns.items() if isinstance(columns, dict) else columns
    decls = tuple(ColumnDecl(name, xs_type) for name, xs_type in pairs)
    return RowSchema(element_name=element_name,
                     target_namespace=target_namespace,
                     schema_location=schema_location,
                     children=decls)
