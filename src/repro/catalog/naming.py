"""The Figure-2 artifact mapping between DSP and SQL worlds.

(i)   application name            → SQL catalog name
(ii)  path to .ds file + name     → SQL schema name
(iii) parameterless function name → SQL table name
      (functions with parameters  → SQL stored procedures)
(iv)  simple-type children of the row element → SQL column names
"""

from __future__ import annotations

from .dataservice import Application, DataService, Project


def catalog_name(application: Application) -> str:
    """(i) The application name is the SQL catalog name."""
    return application.name


def schema_name(project: Project, service: DataService) -> str:
    """(ii) Project name plus the .ds path is the SQL schema name.

    E.g. project ``TestDataServices`` with data service ``CUSTOMERS`` maps
    to the SQL schema ``"TestDataServices/CUSTOMERS"`` (a delimited
    identifier in SQL text, since it contains ``/``).
    """
    return f"{project.name}/{service.path}"


def split_schema_name(name: str) -> tuple[str, str]:
    """Split a SQL schema name back into (project, data service path)."""
    project, _, path = name.partition("/")
    if not path:
        raise ValueError(f"schema name {name!r} has no data service path")
    return project, path


def function_namespace(project: Project, service: DataService) -> str:
    """Target namespace of the data service, e.g.
    ``ld:TestDataServices/CUSTOMERS`` (paper Example 2/3)."""
    return f"ld:{schema_name(project, service)}"


def schema_location(project: Project, service: DataService) -> str:
    """Location hint of the .xsd for the import-schema prolog entry,
    e.g. ``ld:TestDataServices/schemas/CUSTOMERS.xsd``."""
    return f"ld:{project.name}/schemas/{service.name}.xsd"
