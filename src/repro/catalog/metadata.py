"""The remote metadata API and its client-side cache.

Paper, section 3.5: the translator needs "(i) XQuery Function names and
their locations" and "(ii) Function return types and element metadata",
both "obtained by querying the AquaLogic DSP application (using the remote
metadata API)". And section 3.5 again: "Fetched table metadata is cached
locally for further use".

``MetadataAPI`` plays the server side: it resolves (catalog, schema, table)
names against an Application and returns ``TableMetadata``. A configurable
simulated round-trip latency lets the benchmarks reproduce the cache's
effect (experiment E9 in DESIGN.md).

``MetadataCache`` is the driver-side cache with hit/miss statistics.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from .. import clock
from ..errors import FlatnessError, UnknownArtifactError
from ..obs import NULL_TRACER, LRUCache
from ..sql.types import SQLType
from .dataservice import Application, DataServiceFunction
from .naming import schema_name as make_schema_name
from .schema import ColumnDecl


@dataclass(frozen=True)
class ColumnMetadata:
    """Metadata of one SQL column (a simple-typed row child element)."""

    name: str
    sql_type: SQLType
    xs_type: str
    nullable: bool
    position: int  # 1-based ordinal


@dataclass(frozen=True)
class TableMetadata:
    """Everything stage two/three needs to know about one SQL table."""

    catalog: str
    schema: str
    table: str
    columns: tuple[ColumnMetadata, ...]
    element_name: str
    namespace: str
    schema_location: str
    function_name: str

    def column(self, name: str) -> ColumnMetadata | None:
        for col in self.columns:
            if col.name == name:
                return col
        return None

    def column_names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.columns)


@dataclass(frozen=True)
class ProcedureMetadata:
    """Metadata of a parameterized function surfaced as a procedure."""

    catalog: str
    schema: str
    name: str
    parameters: tuple[tuple[str, str], ...]  # (name, xs_type)
    columns: tuple[ColumnMetadata, ...]
    namespace: str
    schema_location: str
    function_name: str


def _columns_from(function: DataServiceFunction) -> tuple[ColumnMetadata, ...]:
    cols = []
    for position, decl in enumerate(function.return_schema.columns, start=1):
        assert isinstance(decl, ColumnDecl)
        cols.append(ColumnMetadata(name=decl.name, sql_type=decl.sql_type,
                                   xs_type=decl.xs_type,
                                   nullable=decl.nillable,
                                   position=position))
    return tuple(cols)


class MetadataAPI:
    """Server-side metadata resolution over an Application.

    ``latency`` (seconds) is added to every remote call to simulate the
    network round trip the client cache exists to avoid; it defaults to
    zero so unit tests are fast.
    """

    def __init__(self, application: Application, latency: float = 0.0):
        self._application = application
        self.latency = latency
        self.call_count = 0

    # -- internals -----------------------------------------------------

    def _charge(self) -> None:
        self.call_count += 1
        if self.latency > 0:
            time.sleep(self.latency)

    def _check_catalog(self, catalog: str | None) -> None:
        if catalog is not None and catalog != self._application.name:
            raise UnknownArtifactError(
                f"unknown catalog {catalog!r} (application is "
                f"{self._application.name!r})")

    def _services(self):
        yield from self._application.all_data_services()

    def _find_function(self, schema: str | None, table: str):
        matches = []
        for project, service in self._services():
            name = make_schema_name(project, service)
            if schema is not None and name != schema:
                continue
            function = service.functions.get(table)
            if function is not None:
                matches.append((project, service, name, function))
        if not matches:
            where = f" in schema {schema!r}" if schema else ""
            raise UnknownArtifactError(f"unknown table {table!r}{where}")
        if len(matches) > 1:
            schemas = ", ".join(m[2] for m in matches)
            raise UnknownArtifactError(
                f"table name {table!r} is ambiguous across schemas: "
                f"{schemas}")
        return matches[0]

    # -- public API ------------------------------------------------------

    def fetch_table(self, table: str, schema: str | None = None,
                    catalog: str | None = None) -> TableMetadata:
        """Resolve a table reference to its metadata (a remote call)."""
        self._charge()
        self._check_catalog(catalog)
        project, service, resolved_schema, function = \
            self._find_function(schema, table)
        if function.parameters:
            raise UnknownArtifactError(
                f"{table} takes parameters; it is a stored procedure, "
                f"not a table")
        if not function.return_schema.is_flat():
            raise FlatnessError(
                f"function {table} does not return flat XML and cannot "
                f"be presented as a SQL table")
        row = function.return_schema
        return TableMetadata(
            catalog=self._application.name,
            schema=resolved_schema,
            table=table,
            columns=_columns_from(function),
            element_name=row.element_name,
            namespace=row.target_namespace,
            schema_location=row.schema_location,
            function_name=function.name,
        )

    def fetch_procedure(self, name: str, schema: str | None = None,
                        catalog: str | None = None) -> ProcedureMetadata:
        """Resolve a parameterized function as a stored procedure."""
        self._charge()
        self._check_catalog(catalog)
        project, service, resolved_schema, function = \
            self._find_function(schema, name)
        if not function.parameters:
            raise UnknownArtifactError(
                f"{name} has no parameters; query it as a table")
        row = function.return_schema
        return ProcedureMetadata(
            catalog=self._application.name,
            schema=resolved_schema,
            name=name,
            parameters=tuple((p.name, p.xs_type)
                             for p in function.parameters),
            columns=_columns_from(function),
            namespace=row.target_namespace,
            schema_location=row.schema_location,
            function_name=function.name,
        )

    def list_schemas(self) -> list[str]:
        self._charge()
        return sorted(make_schema_name(project, service)
                      for project, service in self._services())

    def list_tables(self, schema: str | None = None) -> list[tuple[str, str]]:
        """All (schema, table) pairs of table-eligible functions."""
        self._charge()
        result = []
        for project, service in self._services():
            name = make_schema_name(project, service)
            if schema is not None and name != schema:
                continue
            for function in service.functions.values():
                if function.is_table_candidate():
                    result.append((name, function.name))
        return sorted(result)

    def list_procedures(self, schema: str | None = None) \
            -> list[tuple[str, str]]:
        self._charge()
        result = []
        for project, service in self._services():
            name = make_schema_name(project, service)
            if schema is not None and name != schema:
                continue
            for function in service.functions.values():
                if function.is_procedure_candidate():
                    result.append((name, function.name))
        return sorted(result)


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0


#: Default bound on cached (table + procedure) metadata entries.
DEFAULT_METADATA_CACHE_CAPACITY = 1024


class MetadataCache:
    """Driver-side cache over MetadataAPI.

    The paper: "Fetched table metadata is cached locally for further use."
    Keys are (catalog, schema, table) with None wildcards resolved at fetch
    time, so the same unqualified name is only resolved remotely once.

    Both sides of the cache are bounded, thread-safe, single-flight
    LRUs (``repro.obs.lru.LRUCache``): concurrent misses on the same
    table perform exactly one remote fetch, and a shared ``Connection``
    can be used from many threads. Each actual remote fetch is recorded
    as a ``metadata.fetch`` span on *tracer* and, when a *registry* is
    given, in the ``metadata.fetch.seconds`` histogram and
    ``metadata.cache.*`` counters.
    """

    def __init__(self, api: MetadataAPI,
                 capacity: int = DEFAULT_METADATA_CACHE_CAPACITY,
                 tracer=None, registry=None):
        self._api = api
        self._tracer = NULL_TRACER if tracer is None else tracer
        self._tables = LRUCache(capacity, registry=registry,
                                prefix="metadata.cache")
        self._procedures = LRUCache(capacity, registry=registry,
                                    prefix="metadata.cache")
        if registry is not None:
            self._fetch_seconds = registry.histogram(
                "metadata.fetch.seconds")
            self._fetch_counter = registry.counter("metadata.fetches")
        else:
            self._fetch_seconds = None
            self._fetch_counter = None

    @property
    def stats(self) -> CacheStats:
        """Aggregate hit/miss/eviction counts across both cache sides."""
        tables = self._tables.stats()
        procedures = self._procedures.stats()
        return CacheStats(
            hits=tables["hits"] + procedures["hits"],
            misses=tables["misses"] + procedures["misses"],
            evictions=tables["evictions"] + procedures["evictions"])

    def stats_dict(self) -> dict:
        """The ``Connection.stats()`` snapshot for this cache."""
        stats = self.stats
        return {"hits": stats.hits, "misses": stats.misses,
                "evictions": stats.evictions,
                "size": len(self._tables) + len(self._procedures),
                "capacity": self._tables.capacity}

    def _remote(self, kind: str, name: str, call):
        """Run one remote fetch inside a ``metadata.fetch`` span."""
        with self._tracer.span("metadata.fetch", kind=kind, name=name):
            started = clock.monotonic()
            meta = call()
            elapsed = clock.monotonic() - started
        if self._fetch_seconds is not None:
            self._fetch_seconds.observe(elapsed)
            self._fetch_counter.increment()
        return meta

    def fetch_table(self, table: str, schema: str | None = None,
                    catalog: str | None = None) -> TableMetadata:
        key = (catalog, schema, table)

        def load() -> TableMetadata:
            return self._remote(
                "table", table,
                lambda: self._api.fetch_table(table, schema=schema,
                                              catalog=catalog))

        meta = self._tables.get_or_load(key, load)
        # Also prime the fully-qualified key so later qualified lookups hit.
        qualified = (meta.catalog, meta.schema, meta.table)
        if qualified != key:
            self._tables.put(qualified, meta)
        return meta

    def fetch_procedure(self, name: str, schema: str | None = None,
                        catalog: str | None = None) -> ProcedureMetadata:
        key = (catalog, schema, name)

        def load() -> ProcedureMetadata:
            return self._remote(
                "procedure", name,
                lambda: self._api.fetch_procedure(name, schema=schema,
                                                  catalog=catalog))

        meta = self._procedures.get_or_load(key, load)
        qualified = (meta.catalog, meta.schema, meta.name)
        if qualified != key:
            self._procedures.put(qualified, meta)
        return meta

    def invalidate(self) -> None:
        self._tables.clear()
        self._procedures.clear()
