"""Data services, projects, and applications — the DSP artifact model.

The paper (section 3.1): "The key artifacts in the AquaLogic DSP data world
are applications, projects, data services, and data service functions."

* An **application** is the accessible universe of artifacts (→ SQL
  catalog).
* A **project** contains folder hierarchies and ``.ds``/``.xsd`` files.
* A **data service** (a ``.ds`` file) is a collection of functions about a
  business object.
* A **data service function** is the actual query target. Physical
  functions are externally defined (opaque; here, bound to a storage
  table). Logical functions have XQuery bodies written over other
  functions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import UnknownArtifactError
from .schema import RowSchema


@dataclass(frozen=True)
class FunctionParameter:
    """A typed input parameter of a data service function."""

    name: str
    xs_type: str


@dataclass(frozen=True)
class TableBinding:
    """Physical binding: the function materializes rows of a storage table.

    This models the opaque, metadata-imported physical data service
    functions of the paper; the storage table lives in the DSP runtime
    (repro.engine).
    """

    table_name: str


@dataclass(frozen=True)
class SourceBinding:
    """Physical binding to a table of a *registered* data source: the
    function materializes rows scanned through the ``repro.sources``
    SPI from the runtime source registered under ``source``. This is
    the federation-era sibling of :class:`TableBinding` (which always
    addresses the runtime's default source)."""

    source: str
    table: str


@dataclass(frozen=True)
class XQueryBinding:
    """Logical binding: the function body is an XQuery over other
    data service functions (authored in the .ds file)."""

    body: str


@dataclass(frozen=True)
class CsvBinding:
    """Physical binding to a delimited file — the 'files' source kind of
    the paper's Figure 1. Rows are read on every call; an empty field is
    SQL NULL; ``delimiter`` defaults to a comma; a header row is skipped
    when ``header`` is true."""

    path: str
    delimiter: str = ","
    header: bool = True


@dataclass(frozen=True)
class CallableBinding:
    """Physical binding to a host function — Figure 1's 'custom Java
    functions' (here: Python). ``provider`` receives the call's argument
    values (one per declared parameter) and returns an iterable of row
    tuples matching the return schema's columns."""

    provider: object  # Callable[..., Iterable[tuple]]


@dataclass(frozen=True)
class DataServiceFunction:
    """A declared function in a ``.ds`` file.

    Parameterless functions returning flat XML become SQL tables; functions
    with parameters are surfaced as stored procedures (paper Figure 2).
    """

    name: str
    return_schema: RowSchema
    parameters: tuple[FunctionParameter, ...] = ()
    binding: "TableBinding | SourceBinding | XQueryBinding | " \
             "CsvBinding | CallableBinding | None" = None

    @property
    def kind(self) -> str:
        return "logical" if isinstance(self.binding, XQueryBinding) \
            else "physical"

    def is_table_candidate(self) -> bool:
        """Eligible for presentation as a SQL table: no parameters and a
        flat return schema."""
        return not self.parameters and self.return_schema.is_flat()

    def is_procedure_candidate(self) -> bool:
        """Functions with parameters surface as callable procedures."""
        return bool(self.parameters) and self.return_schema.is_flat()


@dataclass
class DataService:
    """A ``.ds`` file: path within its project plus declared functions.

    ``path`` is the project-relative path *without* the .ds suffix, e.g.
    ``"TestDataServices/CUSTOMERS"``; folders are separated by ``/``.
    """

    path: str
    functions: dict[str, DataServiceFunction] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.path.rsplit("/", 1)[-1]

    def add_function(self, function: DataServiceFunction) -> None:
        if function.name in self.functions:
            raise ValueError(
                f"duplicate function {function.name} in {self.path}.ds")
        self.functions[function.name] = function

    def function(self, name: str) -> DataServiceFunction:
        try:
            return self.functions[name]
        except KeyError:
            raise UnknownArtifactError(
                f"no function {name} in data service {self.path}") from None


@dataclass
class Project:
    """A project: a named container of data services (with folders encoded
    in the data service paths)."""

    name: str
    data_services: dict[str, DataService] = field(default_factory=dict)

    def add_data_service(self, service: DataService) -> None:
        if service.path in self.data_services:
            raise ValueError(f"duplicate data service {service.path}")
        self.data_services[service.path] = service

    def data_service(self, path: str) -> DataService:
        try:
            return self.data_services[path]
        except KeyError:
            raise UnknownArtifactError(
                f"no data service {path} in project {self.name}") from None


@dataclass
class Application:
    """An AquaLogic DSP application: the SQL catalog."""

    name: str
    projects: dict[str, Project] = field(default_factory=dict)

    def add_project(self, project: Project) -> None:
        if project.name in self.projects:
            raise ValueError(f"duplicate project {project.name}")
        self.projects[project.name] = project

    def project(self, name: str) -> Project:
        try:
            return self.projects[name]
        except KeyError:
            raise UnknownArtifactError(
                f"no project {name} in application {self.name}") from None

    def all_data_services(self):
        """Iterate (project, data service) pairs across the application."""
        for project in self.projects.values():
            for service in project.data_services.values():
                yield project, service
