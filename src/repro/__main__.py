"""Entry point: ``python -m repro [SQL]`` launches the SQL shell."""

from .shell import main

raise SystemExit(main())
