"""EXPLAIN: human-readable views of the translation pipeline.

Renders the artifacts the paper draws as figures — the query-context tree
(Figure 4) and the mapping of resultset nodes to SQL views (Figure 3) —
plus the computed result schema, so translations can be inspected without
reading generated XQuery.
"""

from __future__ import annotations

from io import StringIO

from .rsn import DerivedRSN, JoinRSN, RSN, TableRSN
from .stage1 import QueryContext
from .stage2 import BoundQuery, BoundSelect, BoundSetOp, TranslationUnit


def explain(unit: TranslationUnit,
            stage_timings: dict[str, float] | None = None,
            plan_reports: list | None = None,
            actuals: dict | None = None) -> str:
    """A full report: contexts, RSN tree, result schema, parameters,
    and — when *stage_timings* (``TranslationResult.stage_timings``) is
    given — the per-stage wall time of the translation.

    *plan_reports* (``CompiledQuery.plan_reports``) adds the cost-based
    execution plan: one line per pipeline node with its estimated
    output rows; *actuals* (the dict filled by an execution) adds the
    observed counts next to the estimates."""
    out = StringIO()
    out.write("QUERY CONTEXTS (stage 1)\n")
    _write_context(unit.stage1.root_context, out, indent=0)
    out.write("\nRESULTSET NODES (stage 2)\n")
    _write_query(unit.bound, out, indent=0)
    out.write("\nRESULT SCHEMA\n")
    for position, column in enumerate(unit.bound.result_columns, start=1):
        nullable = "NULL" if column.nullable else "NOT NULL"
        out.write(f"  {position}. {column.label} {column.sql_type} "
                  f"{nullable}  (element <{column.element}>)\n")
    if unit.param_types:
        out.write("\nPARAMETERS\n")
        for index in sorted(unit.param_types):
            out.write(f"  ?{index} -> $p{index} "
                      f"({unit.param_types[index]})\n")
    if plan_reports:
        out.write("\nEXECUTION PLAN (cost-based)\n")
        for report in plan_reports:
            for node in report["nodes"]:
                estimate = node["estimate"]
                est = "?" if estimate is None else f"{estimate:.1f}"
                fid, index = node["id"]
                line = (f"  [{fid}.{index}] {node['label']}"
                        f"  est={est} rows")
                if actuals is not None:
                    line += f"  actual={actuals.get(node['id'], 0)}"
                out.write(line + "\n")
    if stage_timings:
        out.write("\nSTAGE TIMINGS\n")
        # "compile" (the XQuery closure-compilation time) is present
        # once the statement has been executed; translate-only results
        # carry the three translation stages plus the total.
        for stage in ("stage1", "stage2", "stage3", "compile", "total"):
            if stage in stage_timings:
                out.write(f"  {stage}: "
                          f"{stage_timings[stage] * 1000:.3f} ms\n")
    return out.getvalue()


def _write_context(context: QueryContext, out: StringIO,
                   indent: int) -> None:
    pad = "  " * indent
    flags = []
    if context.has_aggregates:
        flags.append("aggregates")
    if context.is_grouped:
        flags.append("grouped")
    if not context.correlatable:
        flags.append("no-correlation")
    suffix = f" [{', '.join(flags)}]" if flags else ""
    out.write(f"{pad}{context.describe()}{suffix}\n")
    for child in context.children:
        _write_context(child, out, indent + 1)


def _write_query(bound: BoundQuery, out: StringIO, indent: int) -> None:
    _write_body(bound.body, out, indent)
    if bound.order_by:
        pad = "  " * indent
        keys = []
        for sort in bound.order_by:
            direction = "" if sort.ascending else " DESC"
            if sort.item_index is not None:
                keys.append(f"#{sort.item_index + 1}{direction}")
            else:
                keys.append(f"<expr>{direction}")
        out.write(f"{pad}order by: {', '.join(keys)}\n")


def _write_body(body, out: StringIO, indent: int) -> None:
    pad = "  " * indent
    if isinstance(body, BoundSetOp):
        all_flag = " ALL" if body.all else ""
        out.write(f"{pad}set-op RSN: {body.op}{all_flag}\n")
        _write_body(body.left, out, indent + 1)
        _write_body(body.right, out, indent + 1)
        return
    assert isinstance(body, BoundSelect)
    flags = []
    if body.distinct:
        flags.append("DISTINCT")
    if body.is_grouped:
        flags.append(f"grouped({len(body.group_by)} key(s))")
    suffix = f" [{', '.join(flags)}]" if flags else ""
    out.write(f"{pad}query RSN (CTX{body.context.id}){suffix}: "
              f"{len(body.items)} column(s)\n")
    for rsn in body.scope.rsns:
        _write_rsn(rsn, out, indent + 1)


def _write_rsn(rsn: RSN, out: StringIO, indent: int) -> None:
    pad = "  " * indent
    if isinstance(rsn, TableRSN):
        meta = rsn.metadata
        alias = f" AS {rsn.alias}" if rsn.alias else ""
        out.write(f"{pad}table RSN: {meta.schema}.{meta.table}{alias} "
                  f"-> {meta.function_name}() "
                  f"[{len(meta.columns)} column(s)]\n")
        return
    if isinstance(rsn, DerivedRSN):
        out.write(f"{pad}subquery RSN: AS {rsn.alias}\n")
        _write_query(rsn.bound_query, out, indent + 1)
        return
    assert isinstance(rsn, JoinRSN)
    out.write(f"{pad}join RSN: {rsn.kind}\n")
    _write_rsn(rsn.left, out, indent + 1)
    _write_rsn(rsn.right, out, indent + 1)
