"""The preconfigured SQL-function → XQuery-function map.

Paper section 3.5(iii): "Many SQL functions can be directly mapped to
functions in the XQuery Functions and Operators library. The translator
uses a preconfigured map of SQL and XQuery functions."

Functions whose XQuery counterparts do not propagate NULL (the F&O string
functions treat () as "") map onto the null-tolerant ``fn-bea:sql-*``
variants instead (see repro.xquery.functions); this mirrors the extension
function library the BEA engine shipped.
"""

from __future__ import annotations

from ..errors import UnsupportedSQLError

#: SQL function name -> (XQuery function QName, fixed leading arguments).
SQL_TO_XQUERY_FUNCTIONS: dict[str, str] = {
    "UPPER": "fn-bea:sql-upper",
    "LOWER": "fn-bea:sql-lower",
    "CONCAT": "fn-bea:sql-concat",
    "SUBSTRING": "fn-bea:sql-substring",
    "CHAR_LENGTH": "fn-bea:sql-char-length",
    "CHARACTER_LENGTH": "fn-bea:sql-char-length",
    "LENGTH": "fn-bea:sql-char-length",
    "POSITION": "fn-bea:sql-position",
    "ABS": "fn:abs",
    "FLOOR": "fn:floor",
    "CEILING": "fn:ceiling",
    "SQRT": "fn-bea:sqrt",
    "CURRENT_DATE": "fn:current-date",
    "CURRENT_TIME": "fn:current-time",
    "CURRENT_TIMESTAMP": "fn:current-dateTime",
}

#: EXTRACT field -> XQuery accessor by source kind.
EXTRACT_FUNCTIONS = {
    ("YEAR", "DATE"): "fn:year-from-date",
    ("MONTH", "DATE"): "fn:month-from-date",
    ("DAY", "DATE"): "fn:day-from-date",
    ("YEAR", "TIMESTAMP"): "fn:year-from-dateTime",
    ("MONTH", "TIMESTAMP"): "fn:month-from-dateTime",
    ("DAY", "TIMESTAMP"): "fn:day-from-dateTime",
    ("HOUR", "TIMESTAMP"): "fn:hours-from-dateTime",
    ("MINUTE", "TIMESTAMP"): "fn:minutes-from-dateTime",
    ("SECOND", "TIMESTAMP"): "fn:seconds-from-dateTime",
    ("HOUR", "TIME"): "fn:hours-from-time",
    ("MINUTE", "TIME"): "fn:minutes-from-time",
    ("SECOND", "TIME"): "fn:seconds-from-time",
}


def xquery_function_for(sql_name: str) -> str:
    """Look up the XQuery function for a plain SQL scalar function."""
    try:
        return SQL_TO_XQUERY_FUNCTIONS[sql_name.upper()]
    except KeyError:
        raise UnsupportedSQLError(
            f"no XQuery mapping for SQL function {sql_name}") from None


def extract_function_for(field: str, source_kind: str) -> str:
    """Look up the accessor for EXTRACT(field FROM <source_kind>)."""
    try:
        return EXTRACT_FUNCTIONS[(field, source_kind)]
    except KeyError:
        raise UnsupportedSQLError(
            f"cannot EXTRACT {field} from a {source_kind} value") from None
