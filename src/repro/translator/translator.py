"""The SQL-to-XQuery translator facade.

Runs the three stages of section 3.4.1 — (i) validate the SQL and capture
semantic information, (ii) move it to XQuery-relevant locations, (iii)
generate the XQuery — and packages the result with the computed result
schema the driver needs to build result sets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import clock
from ..catalog import MetadataAPI, MetadataCache
from ..obs import NULL_TRACER, MetricsRegistry, Tracer
from ..sql.types import SQLType
from .rsn import ResultColumn
from .stage1 import Stage1Result, run_stage1
from .stage2 import Binder, TranslationUnit
from .stage3 import Generator
from .wrapper import wrap_delimited

#: Result formats (section 4): "recordset" materializes XML, "delimited"
#: uses the text wrapper query.
FORMATS = ("recordset", "delimited")


@dataclass
class TranslationResult:
    """The product of a translation."""

    sql: str
    xquery: str
    format: str
    columns: list[ResultColumn]
    parameter_types: dict[int, SQLType] = field(default_factory=dict)
    unit: TranslationUnit | None = None
    #: Per-stage wall time in seconds ("stage1", "stage2", "stage3",
    #: "total"), populated by the full ``translate`` pipeline.
    stage_timings: dict[str, float] = field(default_factory=dict)

    @property
    def column_labels(self) -> list[str]:
        return [c.label for c in self.columns]

    def parameter_variables(self, values) -> dict[str, object]:
        """Bind positional parameter values to the generated external
        variables ($p1, $p2, ...)."""
        expected = len(self.parameter_types)
        values = list(values)
        if len(values) != expected:
            from ..errors import ProgrammingError
            raise ProgrammingError(
                f"statement takes {expected} parameters, "
                f"{len(values)} given")
        return {f"p{index}": value
                for index, value in enumerate(values, start=1)}


class SQLToXQueryTranslator:
    """Translates SQL-92 SELECT statements into XQuery (sections 3.4-3.5).

    The translator owns a driver-side metadata cache over the remote
    metadata API ("Fetched table metadata is cached locally for further
    use").
    """

    def __init__(self, metadata: MetadataAPI | MetadataCache,
                 tracer: Tracer | None = None,
                 registry: MetricsRegistry | None = None):
        self.tracer = NULL_TRACER if tracer is None else tracer
        self.metrics = MetricsRegistry() if registry is None else registry
        if isinstance(metadata, MetadataAPI):
            metadata = MetadataCache(metadata, tracer=self.tracer,
                                     registry=self.metrics)
        self.metadata = metadata
        self._translated = self.metrics.counter("queries.translated")
        self._stage_seconds = {
            stage: self.metrics.histogram(f"translate.{stage}.seconds")
            for stage in ("stage1", "stage2", "stage3", "total")
        }

    # Individual stages are exposed for tests, tools, and the stage
    # breakdown benchmark (experiment E13).

    def stage1(self, sql: str) -> Stage1Result:
        return run_stage1(sql)

    def stage2(self, stage1: Stage1Result) -> TranslationUnit:
        return Binder(stage1, self.metadata).bind()

    def stage3(self, unit: TranslationUnit,
               format: str = "recordset") -> TranslationResult:
        generator = Generator(unit)
        columns = unit.bound.result_columns
        if format == "recordset":
            xquery = generator.generate()
        elif format == "delimited":
            body = generator.generate_body()
            xquery = wrap_delimited(generator.prolog(), body, columns)
        else:
            raise ValueError(
                f"unknown format {format!r}; expected one of {FORMATS}")
        return TranslationResult(
            sql="", xquery=xquery, format=format, columns=columns,
            parameter_types=dict(unit.param_types), unit=unit)

    def translate(self, sql: str,
                  format: str = "recordset") -> TranslationResult:
        """Full pipeline: SQL text in, XQuery text + result schema out.

        Opens a ``translate`` span with ``stage1``/``stage2``/``stage3``
        children (stage two nests one ``metadata.fetch`` span per
        remote table resolution) and records per-stage wall time both
        on ``result.stage_timings`` and in the
        ``translate.<stage>.seconds`` histograms.
        """
        ticks = clock.monotonic
        with self.tracer.span("translate", sql=sql, format=format):
            started = ticks()
            with self.tracer.span("stage1"):
                stage1 = self.stage1(sql)
            after_stage1 = ticks()
            with self.tracer.span("stage2"):
                unit = self.stage2(stage1)
            after_stage2 = ticks()
            with self.tracer.span("stage3"):
                result = self.stage3(unit, format=format)
            finished = ticks()
        result.sql = sql
        result.stage_timings = {
            "stage1": after_stage1 - started,
            "stage2": after_stage2 - after_stage1,
            "stage3": finished - after_stage2,
            "total": finished - started,
        }
        self._translated.increment()
        for stage, seconds in result.stage_timings.items():
            self._stage_seconds[stage].observe(seconds)
        return result
