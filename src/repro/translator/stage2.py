"""Stage two: semantic validation and AST restructuring.

Paper section 3.4.1: "The second stage modifies the AST produced in
stage-one, moving AST nodes to appropriate locations in the tree where the
tree-walker of stage-three can use them in generating XQuery."

Because our stage-one AST is immutable, the "moved" form is a parallel
*bound tree*: wildcards are expanded into concrete select items using
fetched (and cached) table metadata, every column reference is resolved to
its RSN, every expression's SQL datatype is computed bottom-up with the
SQL promotion rules (section 3.5.v), and the SQL-92 semantic rules the
paper cites (column existence, group-by legality, alias scoping, set
operation compatibility) are enforced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from ..catalog import MetadataCache
from ..errors import SQLSemanticError, UnsupportedSQLError
from ..sql import ast, lookup_function
from ..sql.types import (
    BOOLEAN,
    DECIMAL,
    DOUBLE,
    INTEGER,
    VARCHAR,
    SQLType,
    comparable,
    is_character,
    is_datetime,
    is_numeric,
    promote,
)
from ..xmlmodel import is_ncname
from .rsn import (
    ColumnResolution,
    DerivedRSN,
    JoinRSN,
    QueryScope,
    ResultColumn,
    RSN,
    TableRSN,
)
from .stage1 import QueryContext, Stage1Result


@dataclass
class BoundItem:
    """One (wildcard-expanded) select item with its computed type."""

    expr: ast.Expr
    label: str
    element: str
    sql_type: SQLType
    nullable: bool = True


@dataclass
class BoundSortItem:
    """An ORDER BY key: either a result-column index or an expression."""

    ascending: bool
    item_index: Optional[int] = None   # 0-based index into result columns
    expr: Optional[ast.Expr] = None


@dataclass
class BoundSelect:
    """A bound SELECT block (its RSNs, expanded items, and clauses)."""

    select: ast.Select
    context: QueryContext
    scope: QueryScope
    items: list[BoundItem]
    where: Optional[ast.Expr]
    group_by: tuple[ast.Expr, ...]
    having: Optional[ast.Expr]
    distinct: bool

    @property
    def is_grouped(self) -> bool:
        return bool(self.group_by) or self.context.has_aggregates


@dataclass
class BoundSetOp:
    op: str
    all: bool
    left: "BoundBody"
    right: "BoundBody"
    result_columns: list[ResultColumn] = field(default_factory=list)


BoundBody = Union[BoundSelect, BoundSetOp]


@dataclass
class BoundQuery:
    """A bound query expression: body, order keys, result schema."""

    query: ast.Query
    body: BoundBody
    order_by: list[BoundSortItem]
    result_columns: list[ResultColumn]


@dataclass
class TranslationUnit:
    """Everything stage three needs: the bound tree plus side tables."""

    stage1: Stage1Result
    bound: BoundQuery
    types: dict[int, Optional[SQLType]]
    resolutions: dict[int, ColumnResolution]
    param_types: dict[int, SQLType]
    subqueries: dict[int, BoundQuery]  # id(ast.Query) -> BoundQuery
    table_rsns: list[TableRSN]

    def type_of(self, expr: ast.Expr) -> Optional[SQLType]:
        return self.types[id(expr)]

    def resolution_of(self, ref: ast.ColumnRef) -> ColumnResolution:
        return self.resolutions[id(ref)]

    def parameter_count(self) -> int:
        return len(self.param_types)


class Binder:
    """Performs the stage-two analysis for one statement."""

    def __init__(self, stage1: Stage1Result, metadata: MetadataCache):
        self._stage1 = stage1
        self._metadata = metadata
        self._types: dict[int, Optional[SQLType]] = {}
        self._resolutions: dict[int, ColumnResolution] = {}
        self._param_types: dict[int, SQLType] = {}
        self._param_indexes: set[int] = set()
        self._subqueries: dict[int, BoundQuery] = {}
        self._table_rsns: list[TableRSN] = []

    def bind(self) -> TranslationUnit:
        bound = self._bind_query(self._stage1.query, parent_scope=None)
        for index in self._param_indexes:
            self._param_types.setdefault(index, VARCHAR)
        return TranslationUnit(
            stage1=self._stage1,
            bound=bound,
            types=self._types,
            resolutions=self._resolutions,
            param_types=self._param_types,
            subqueries=self._subqueries,
            table_rsns=self._table_rsns,
        )

    # -- queries ----------------------------------------------------------

    def _bind_query(self, query: ast.Query,
                    parent_scope: Optional[QueryScope]) -> BoundQuery:
        body = self._bind_body(query.body, parent_scope)
        result_columns = _result_columns_of(body)
        order_by = self._bind_order_by(query, body, result_columns)
        bound = BoundQuery(query=query, body=body, order_by=order_by,
                           result_columns=result_columns)
        self._subqueries[id(query)] = bound
        return bound

    def _bind_body(self, body: ast.QueryBody,
                   parent_scope: Optional[QueryScope]) -> BoundBody:
        if isinstance(body, ast.SetOp):
            left = self._bind_body(body.left, parent_scope)
            right = self._bind_body(body.right, parent_scope)
            columns = self._setop_columns(body, left, right)
            return BoundSetOp(op=body.op, all=body.all, left=left,
                              right=right, result_columns=columns)
        assert isinstance(body, ast.Select)
        return self._bind_select(body, parent_scope)

    def _setop_columns(self, op: ast.SetOp, left: BoundBody,
                       right: BoundBody) -> list[ResultColumn]:
        left_cols = _result_columns_of(left)
        right_cols = _result_columns_of(right)
        if len(left_cols) != len(right_cols):
            raise SQLSemanticError(
                f"{op.op} operands have {len(left_cols)} and "
                f"{len(right_cols)} columns")
        merged = []
        for lcol, rcol in zip(left_cols, right_cols):
            merged.append(ResultColumn(
                label=lcol.label, element=lcol.element,
                sql_type=_setop_column_type(op.op, lcol.sql_type,
                                            rcol.sql_type),
                nullable=lcol.nullable or rcol.nullable))
        return merged

    # -- SELECT ------------------------------------------------------------

    def _bind_select(self, select: ast.Select,
                     parent_scope: Optional[QueryScope]) -> BoundSelect:
        context = self._stage1.context_of(select)
        scope = QueryScope(parent=parent_scope if context.correlatable
                           else None)
        for table in select.from_clause:
            scope.rsns.append(self._bind_table(table, scope, parent_scope))
        scope.check_duplicate_bindings()

        # Join conditions are typed once the whole scope is assembled.
        for rsn in scope.rsns:
            self._type_join_conditions(rsn, scope)

        if select.where is not None:
            if ast.contains_aggregate(select.where):
                raise SQLSemanticError(
                    "aggregate functions are not allowed in WHERE")
            self._require_boolean(select.where, scope, "WHERE")
        for key in select.group_by:
            if ast.contains_aggregate(key):
                raise SQLSemanticError(
                    "aggregate functions are not allowed in GROUP BY")
            self._type_expr(key, scope)

        items = self._expand_items(select, scope)
        grouped = bool(select.group_by) or context.has_aggregates
        if grouped:
            for item in items:
                self._check_group_validity(item.expr, select.group_by,
                                           scope, "select list")
        if select.having is not None:
            self._require_boolean(select.having, scope, "HAVING")
            self._check_group_validity(select.having, select.group_by,
                                       scope, "HAVING")

        return BoundSelect(select=select, context=context, scope=scope,
                           items=items, where=select.where,
                           group_by=select.group_by, having=select.having,
                           distinct=select.distinct)

    def _type_join_conditions(self, rsn: RSN, scope: QueryScope) -> None:
        if isinstance(rsn, JoinRSN):
            if rsn.condition is not None:
                if ast.contains_aggregate(rsn.condition):
                    raise SQLSemanticError(
                        "aggregate functions are not allowed in ON")
                self._require_boolean(rsn.condition, scope, "ON")
            self._type_join_conditions(rsn.left, scope)
            self._type_join_conditions(rsn.right, scope)

    def _require_boolean(self, expr: ast.Expr, scope: QueryScope,
                         where: str) -> None:
        sql_type = self._type_expr(expr, scope)
        if sql_type is not None and sql_type.kind != "BOOLEAN":
            raise SQLSemanticError(
                f"{where} condition must be a predicate, got {sql_type}")

    # -- FROM --------------------------------------------------------------

    def _bind_table(self, table: ast.TableExpr, scope: QueryScope,
                    parent_scope: Optional[QueryScope]) -> RSN:
        if isinstance(table, ast.TableRef):
            if table.column_aliases:
                raise UnsupportedSQLError(
                    "column aliases on base tables are not supported")
            metadata = self._metadata.fetch_table(
                table.name, schema=table.schema, catalog=table.catalog)
            rsn = TableRSN(metadata=metadata, alias=table.alias)
            self._table_rsns.append(rsn)
            return rsn
        if isinstance(table, ast.DerivedTable):
            inner = self._bind_query(table.query, parent_scope=None)
            return DerivedRSN(bound_query=inner, alias=table.alias,
                              column_aliases=table.column_aliases)
        assert isinstance(table, ast.Join)
        left = self._bind_table(table.left, scope, parent_scope)
        right = self._bind_table(table.right, scope, parent_scope)
        condition = table.condition
        if table.natural or table.using:
            condition = self._desugar_using(table, left, right)
        if table.kind != "CROSS" and condition is None:
            raise SQLSemanticError(f"{table.kind} JOIN requires a condition")
        return JoinRSN(kind=table.kind, left=left, right=right,
                       condition=condition)

    def _desugar_using(self, join: ast.Join, left: RSN,
                       right: RSN) -> ast.Expr:
        if join.natural:
            left_columns = {c.name for c in left.columns()}
            names = [c.name for c in right.columns()
                     if c.name in left_columns]
            if not names:
                raise SQLSemanticError("NATURAL JOIN with no common columns")
        else:
            names = list(join.using)
        condition: ast.Expr | None = None
        for name in names:
            left_leaf = _leaf_with_column(left, name, "left")
            right_leaf = _leaf_with_column(right, name, "right")
            clause = ast.Comparison(
                op="=",
                left=ast.ColumnRef((left_leaf.binding_name,), name),
                right=ast.ColumnRef((right_leaf.binding_name,), name))
            condition = clause if condition is None else \
                ast.And(left=condition, right=clause)
        assert condition is not None
        return condition

    # -- select items ---------------------------------------------------------

    def _expand_items(self, select: ast.Select,
                      scope: QueryScope) -> list[BoundItem]:
        items: list[BoundItem] = []
        used_elements: set[str] = set()
        for item in select.items:
            if isinstance(item, ast.StarItem):
                items.extend(self._expand_star(item, scope, used_elements))
                continue
            sql_type = self._type_expr(item.expr, scope)
            if sql_type is not None and sql_type.kind == "BOOLEAN":
                raise UnsupportedSQLError(
                    "predicates cannot be projected as columns in SQL-92")
            label = self._item_label(item, len(items))
            element = _element_name(self._item_element(item, len(items)),
                                    used_elements)
            items.append(BoundItem(
                expr=item.expr, label=label, element=element,
                sql_type=sql_type or VARCHAR,
                nullable=self._item_nullable(item.expr)))
        return items

    def _expand_star(self, star: ast.StarItem, scope: QueryScope,
                     used_elements: set[str]) -> list[BoundItem]:
        """The paper's stage-two wildcard expansion: substitute concrete
        column nodes for the column-wildcard using fetched metadata."""
        leaves = [leaf for leaf in scope.leaf_bindings()
                  if not star.qualifier
                  or leaf.matches_qualifier(star.qualifier)]
        if star.qualifier and not leaves:
            raise SQLSemanticError(
                f"unknown qualifier {'.'.join(star.qualifier)} "
                f"in select list")
        items = []
        for leaf in leaves:
            for column in leaf.columns():
                ref = ast.ColumnRef((leaf.binding_name,), column.name)
                self._type_expr(ref, scope)
                element = _element_name(
                    f"{leaf.binding_name}.{column.name}", used_elements)
                items.append(BoundItem(
                    expr=ref, label=column.name, element=element,
                    sql_type=column.sql_type, nullable=column.nullable))
        return items

    def _item_label(self, item: ast.SelectItem, index: int) -> str:
        if item.alias:
            return item.alias
        if isinstance(item.expr, ast.ColumnRef):
            return item.expr.column
        return f"EXPR${index + 1}"

    def _item_element(self, item: ast.SelectItem, index: int) -> str:
        """Element names follow the SQL display form, as in the paper's
        examples (INFO.ID, CUSTOMERS.CUSTOMERID)."""
        if item.alias:
            return item.alias
        if isinstance(item.expr, ast.ColumnRef):
            return ".".join(item.expr.qualifier + (item.expr.column,))
        return f"EXPR_{index + 1}"

    def _item_nullable(self, expr: ast.Expr) -> bool:
        if isinstance(expr, ast.ColumnRef):
            resolution = self._resolutions.get(id(expr))
            if resolution is not None:
                return resolution.column.nullable
        if isinstance(expr, ast.Literal):
            return False
        if isinstance(expr, ast.AggregateCall):
            return expr.func != "COUNT"
        return True

    # -- ORDER BY ---------------------------------------------------------------

    def _bind_order_by(self, query: ast.Query, body: BoundBody,
                       result_columns: list[ResultColumn]) \
            -> list[BoundSortItem]:
        bound: list[BoundSortItem] = []
        for sort in query.order_by:
            if isinstance(sort.key, int):
                if not (1 <= sort.key <= len(result_columns)):
                    raise SQLSemanticError(
                        f"ORDER BY position {sort.key} out of range")
                bound.append(BoundSortItem(ascending=sort.ascending,
                                           item_index=sort.key - 1))
                continue
            index = self._order_alias_index(sort.key, body)
            if index is not None:
                bound.append(BoundSortItem(ascending=sort.ascending,
                                           item_index=index))
                continue
            if isinstance(body, ast.SetOp) or isinstance(body, BoundSetOp):
                raise SQLSemanticError(
                    "ORDER BY over a set operation must use result "
                    "columns or positions")
            assert isinstance(body, BoundSelect)
            if body.distinct:
                raise SQLSemanticError(
                    "ORDER BY over SELECT DISTINCT must use result "
                    "columns or positions")
            if ast.contains_aggregate(sort.key) or body.is_grouped:
                self._check_group_validity(sort.key, body.group_by,
                                           body.scope, "ORDER BY")
            self._type_expr(sort.key, body.scope)
            bound.append(BoundSortItem(ascending=sort.ascending,
                                       expr=sort.key))
        return bound

    def _order_alias_index(self, key: ast.Expr,
                           body: BoundBody) -> Optional[int]:
        if not isinstance(key, ast.ColumnRef) or key.qualifier:
            return None
        labels = [c.label for c in _result_columns_of(body)]
        if labels.count(key.column) > 1:
            raise SQLSemanticError(
                f"ORDER BY column {key.column} is ambiguous")
        if key.column in labels:
            return labels.index(key.column)
        return None

    # -- group-by legality ----------------------------------------------------------

    def _check_group_validity(self, expr: ast.Expr,
                              group_by: tuple[ast.Expr, ...],
                              scope: QueryScope, where: str) -> None:
        """SQL-92: outside aggregates, only grouping columns (or outer
        references, or constants) may appear (paper section 3.4.3's
        EMPNO/EMPNAME example)."""
        if any(expr == key for key in group_by):
            return
        if isinstance(expr, ast.AggregateCall):
            if expr.arg is not None and ast.contains_aggregate(expr.arg):
                raise SQLSemanticError("aggregates cannot be nested")
            return
        if isinstance(expr, ast.ColumnRef):
            resolution = self._resolutions.get(id(expr))
            if resolution is not None and resolution.depth > 0:
                return  # outer (correlated) reference: constant per group
            raise SQLSemanticError(
                f"column {expr.display()} must appear in GROUP BY or an "
                f"aggregate function ({where})")
        if isinstance(expr, (ast.Literal, ast.NullLiteral, ast.Parameter)):
            return
        children = ast.children_of(expr)
        if not children and ast.subqueries_of(expr):
            return  # uncorrelated subquery: constant per group
        for child in children:
            self._check_group_validity(child, group_by, scope, where)

    # -- expression typing --------------------------------------------------------------

    def _type_expr(self, expr: ast.Expr,
                   scope: QueryScope) -> Optional[SQLType]:
        sql_type = self._compute_type(expr, scope)
        self._types[id(expr)] = sql_type
        return sql_type

    def _compute_type(self, expr, scope):  # noqa: C901 - dispatch table
        if isinstance(expr, ast.Literal):
            return expr.type
        if isinstance(expr, ast.NullLiteral):
            return None
        if isinstance(expr, ast.Parameter):
            # None until inference assigns a type from a comparison
            # counterpart; unresolved parameters default to VARCHAR at
            # the end of binding.
            self._param_indexes.add(expr.index)
            return self._param_types.get(expr.index)
        if isinstance(expr, ast.ColumnRef):
            resolution = scope.resolve(expr)
            self._resolutions[id(expr)] = resolution
            return resolution.column.sql_type
        if isinstance(expr, ast.UnaryOp):
            operand = self._type_expr(expr.operand, scope)
            if operand is not None and not is_numeric(operand):
                raise SQLSemanticError(
                    f"unary {expr.op} requires a numeric operand, "
                    f"got {operand}")
            return operand
        if isinstance(expr, ast.BinaryOp):
            return self._type_binary(expr, scope)
        if isinstance(expr, ast.FunctionCall):
            return self._type_function(expr, scope)
        if isinstance(expr, ast.AggregateCall):
            return self._type_aggregate(expr, scope)
        if isinstance(expr, ast.CaseExpr):
            return self._type_case(expr, scope)
        if isinstance(expr, ast.Cast):
            self._type_expr(expr.operand, scope)
            return expr.target
        if isinstance(expr, ast.ExtractExpr):
            source = self._type_expr(expr.source, scope)
            if source is not None and not is_datetime(source):
                raise SQLSemanticError(
                    f"EXTRACT requires a datetime operand, got {source}")
            if expr.field == "SECOND":
                return DECIMAL
            return INTEGER
        if isinstance(expr, ast.TrimExpr):
            return self._type_trim(expr, scope)
        if isinstance(expr, ast.ScalarSubquery):
            inner = self._bind_query(expr.query, parent_scope=scope)
            if len(inner.result_columns) != 1:
                raise SQLSemanticError(
                    f"scalar subquery returns "
                    f"{len(inner.result_columns)} columns")
            return inner.result_columns[0].sql_type
        if isinstance(expr, ast.Comparison):
            self._type_comparison(expr.op, expr.left, expr.right, scope)
            return BOOLEAN
        if isinstance(expr, ast.QuantifiedComparison):
            inner = self._bind_query(expr.query, parent_scope=scope)
            column_type = _single_column_type(inner)
            left = self._type_expr(expr.left, scope)
            self._infer_parameter(expr.left, column_type)
            _check_comparable(left, column_type, expr.op)
            return BOOLEAN
        if isinstance(expr, ast.IsNull):
            self._type_expr(expr.operand, scope)
            return BOOLEAN
        if isinstance(expr, ast.Between):
            self._type_comparison(">=", expr.operand, expr.low, scope)
            self._type_comparison("<=", expr.operand, expr.high, scope)
            return BOOLEAN
        if isinstance(expr, ast.InList):
            for item in expr.items:
                self._type_comparison("=", expr.operand, item, scope)
            return BOOLEAN
        if isinstance(expr, ast.InSubquery):
            inner = self._bind_query(expr.query, parent_scope=scope)
            column_type = _single_column_type(inner)
            left = self._type_expr(expr.operand, scope)
            self._infer_parameter(expr.operand, column_type)
            _check_comparable(left, column_type, "IN")
            return BOOLEAN
        if isinstance(expr, ast.Like):
            operand = self._type_expr(expr.operand, scope)
            pattern = self._type_expr(expr.pattern, scope)
            self._infer_parameter(expr.operand, VARCHAR)
            self._infer_parameter(expr.pattern, VARCHAR)
            for name, sql_type in (("operand", operand),
                                   ("pattern", pattern)):
                if sql_type is not None and not is_character(sql_type):
                    raise SQLSemanticError(
                        f"LIKE {name} must be a character string, "
                        f"got {sql_type}")
            if expr.escape is not None:
                self._type_expr(expr.escape, scope)
                self._infer_parameter(expr.escape, VARCHAR)
            return BOOLEAN
        if isinstance(expr, ast.Exists):
            self._bind_query(expr.query, parent_scope=scope)
            return BOOLEAN
        if isinstance(expr, ast.Not):
            self._require_boolean_operand(expr.operand, scope, "NOT")
            return BOOLEAN
        if isinstance(expr, (ast.And, ast.Or)):
            name = "AND" if isinstance(expr, ast.And) else "OR"
            self._require_boolean_operand(expr.left, scope, name)
            self._require_boolean_operand(expr.right, scope, name)
            return BOOLEAN
        raise UnsupportedSQLError(
            f"unsupported expression {type(expr).__name__}")

    def _require_boolean_operand(self, expr: ast.Expr, scope: QueryScope,
                                 op: str) -> None:
        sql_type = self._type_expr(expr, scope)
        if sql_type is not None and sql_type.kind != "BOOLEAN":
            raise SQLSemanticError(
                f"{op} requires a predicate operand, got {sql_type}")

    def _type_binary(self, expr: ast.BinaryOp, scope: QueryScope):
        left = self._type_expr(expr.left, scope)
        right = self._type_expr(expr.right, scope)
        if expr.op == "||":
            self._infer_parameter(expr.left, VARCHAR)
            self._infer_parameter(expr.right, VARCHAR)
            for sql_type in (left, right):
                if sql_type is not None and not is_character(sql_type):
                    raise SQLSemanticError(
                        f"|| requires character operands, got {sql_type}")
            return VARCHAR
        if left is None and right is None:
            return None
        if left is None:
            self._infer_parameter(expr.left, right)
            return right if is_numeric(right) else _numeric_error(
                expr.op, right)
        if right is None:
            self._infer_parameter(expr.right, left)
            return left if is_numeric(left) else _numeric_error(
                expr.op, left)
        return promote(left, right)

    def _type_function(self, expr: ast.FunctionCall, scope: QueryScope):
        spec = lookup_function(expr.name)
        spec.check_arity(len(expr.args))
        arg_types = []
        for arg in expr.args:
            arg_type = self._type_expr(arg, scope)
            arg_types.append(VARCHAR if arg_type is None else arg_type)
        return spec.result_type(arg_types)

    def _type_aggregate(self, expr: ast.AggregateCall, scope: QueryScope):
        if expr.star:
            return INTEGER
        if ast.contains_aggregate(expr.arg):
            raise SQLSemanticError("aggregates cannot be nested")
        arg_type = self._type_expr(expr.arg, scope)
        if expr.func == "COUNT":
            return INTEGER
        if arg_type is None:
            return None
        if expr.func in ("SUM", "AVG") and not is_numeric(arg_type):
            raise SQLSemanticError(
                f"{expr.func} requires a numeric argument, got {arg_type}")
        if expr.func == "SUM":
            return SQLType(arg_type.kind)
        if expr.func == "AVG":
            return DOUBLE if arg_type.kind in ("REAL", "DOUBLE") \
                else DECIMAL
        return SQLType(arg_type.kind, precision=arg_type.precision,
                       scale=arg_type.scale, length=arg_type.length)

    def _type_case(self, expr: ast.CaseExpr, scope: QueryScope):
        if expr.operand is not None:
            for when, _then in expr.whens:
                self._type_comparison("=", expr.operand, when, scope)
        else:
            for when, _then in expr.whens:
                self._require_boolean_operand(when, scope, "CASE WHEN")
        result: Optional[SQLType] = None
        branches = [then for _when, then in expr.whens]
        if expr.else_ is not None:
            branches.append(expr.else_)
        for branch in branches:
            branch_type = self._type_expr(branch, scope)
            if branch_type is None:
                continue
            if result is None:
                result = branch_type
            elif is_numeric(result) and is_numeric(branch_type):
                result = promote(result, branch_type)
            elif is_character(result) and is_character(branch_type):
                result = VARCHAR
            elif result.kind != branch_type.kind:
                raise SQLSemanticError(
                    f"CASE branches have incompatible types {result} "
                    f"and {branch_type}")
        return result

    def _type_trim(self, expr: ast.TrimExpr, scope: QueryScope):
        source = self._type_expr(expr.source, scope)
        self._infer_parameter(expr.source, VARCHAR)
        if source is not None and not is_character(source):
            raise SQLSemanticError(
                f"TRIM source must be a character string, got {source}")
        if expr.chars is not None:
            chars = self._type_expr(expr.chars, scope)
            if chars is not None and not is_character(chars):
                raise SQLSemanticError(
                    f"TRIM character must be a character string, "
                    f"got {chars}")
        return VARCHAR

    def _type_comparison(self, op: str, left: ast.Expr, right: ast.Expr,
                         scope: QueryScope) -> None:
        left_type = self._type_expr(left, scope)
        right_type = self._type_expr(right, scope)
        if left_type is None and right_type is not None:
            self._infer_parameter(left, right_type)
        if right_type is None and left_type is not None:
            self._infer_parameter(right, left_type)
        _check_comparable(left_type, right_type, op)

    def _infer_parameter(self, expr: ast.Expr,
                         sql_type: Optional[SQLType]) -> None:
        """Adopt the comparison counterpart's type for a ? parameter
        (paper: 'unbound variable names ... in the WHERE clause')."""
        if isinstance(expr, ast.Parameter) and sql_type is not None:
            current = self._param_types.get(expr.index)
            if current is None:
                self._param_types[expr.index] = sql_type
                self._types[id(expr)] = sql_type


def _numeric_error(op: str, sql_type: SQLType):
    raise SQLSemanticError(
        f"arithmetic {op} requires numeric operands, got {sql_type}")


def _check_comparable(left: Optional[SQLType], right: Optional[SQLType],
                      op: str) -> None:
    if left is None or right is None:
        return
    if not comparable(left, right):
        raise SQLSemanticError(
            f"cannot compare {left} with {right} using {op}")


def _single_column_type(query: BoundQuery) -> SQLType:
    if len(query.result_columns) != 1:
        raise SQLSemanticError(
            f"subquery in a predicate must return one column, got "
            f"{len(query.result_columns)}")
    return query.result_columns[0].sql_type


def _setop_column_type(op: str, left: SQLType, right: SQLType) -> SQLType:
    if left.kind == right.kind:
        return left
    if is_numeric(left) and is_numeric(right):
        return promote(left, right)
    if is_character(left) and is_character(right):
        return VARCHAR
    raise SQLSemanticError(
        f"{op} columns have incompatible types {left} and {right}")


def _leaf_with_column(rsn: RSN, column: str, side: str) -> RSN:
    matches = [leaf for leaf in rsn.leaf_bindings()
               if leaf.column(column) is not None]
    if not matches:
        raise SQLSemanticError(
            f"USING column {column} not found on the {side} side")
    if len(matches) > 1:
        raise SQLSemanticError(
            f"USING column {column} is ambiguous on the {side} side")
    return matches[0]


def _result_columns_of(body: BoundBody) -> list[ResultColumn]:
    if isinstance(body, BoundSetOp):
        return body.result_columns
    return [ResultColumn(label=item.label, element=item.element,
                         sql_type=item.sql_type, nullable=item.nullable)
            for item in body.items]


def _element_name(display: str, used: set[str]) -> str:
    """Sanitize a display name into a unique NCName element name."""
    candidate = "".join(ch if ch.isalnum() or ch in "._-" else "_"
                        for ch in display)
    if not candidate or not is_ncname(candidate):
        candidate = "C_" + candidate if candidate and \
            candidate[0].isdigit() else "C" + candidate
    if not is_ncname(candidate):
        candidate = "COL"
    base = candidate
    suffix = 2
    while candidate in used:
        candidate = f"{base}_{suffix}"
        suffix += 1
    used.add(candidate)
    return candidate
