"""The section-4 result-handling wrapper query.

Rather than shipping XML to the client and parsing it there, the paper
wraps the translated query in a second query that emits delimiter-
separated text: "the original query is wrapped with another query that
returns string data interspersed with column and row delimiters ...
Creating a wrapper query around the original query allows us to maintain
a clean separation between JDBC result handling logic and the more
complex SQL to XQuery translation logic."

Encoding (documented in DESIGN.md; the paper's published fragment leaves
the exact delimiters ambiguous, so we pin them down): every cell is
emitted as

* ``>`` + xml-escaped serialized value   — for a non-NULL value, or
* ``<``                                  — for SQL NULL.

Because cell content is XML-escaped, the characters ``<`` and ``>`` can
never appear inside it, which makes the stream self-delimiting; no row
separator is needed since the decoder knows the column count from the
computed result schema. The decoder lives in ``repro.driver.codec``.
"""

from __future__ import annotations

from .rsn import ResultColumn

#: Cell prefix for a present value.
VALUE_MARK = ">"
#: Cell marker for SQL NULL.
NULL_MARK = "<"


def wrap_delimited(prolog: str, body: str,
                   columns: list[ResultColumn]) -> str:
    """Build the wrapper query around a translated RECORD-stream body.

    The RECORD stream is let-bound directly (not re-wrapped in a
    ``<RECORDSET>`` constructor, which would deep-copy every row), and
    each cell's value is bound once before the NULL test — both
    generation-side efficiencies with no semantic effect.
    """
    cells = []
    for index, column in enumerate(columns):
        cell_var = f"$cell{index}"
        data = f"fn:data($tokenQuery/{column.element})"
        cells.append(
            "(let {var} := {data} return\n"
            "    if (fn:empty({var})) then \"{null}\" else\n"
            "    fn:concat(\"{value}\", fn-bea:xml-escape("
            "fn-bea:serialize-atomic({var}))))".format(
                var=cell_var, data=data, null=NULL_MARK,
                value=VALUE_MARK))
    cell_text = ",\n    ".join(cells)
    return (
        f"{prolog}"
        f"fn:string-join(\n"
        f"(let $actualQuery := (\n{body}\n)\n"
        f"for $tokenQuery in $actualQuery\n"
        f"return\n"
        f"   ({cell_text})\n"
        f'), "")'
    )
