"""Generated-variable naming, per the paper's nomenclature.

Section 3.5: "the nomenclature of variable naming is based on the
following: var — a common prefix, followed by the query context id
(computed during stage-one), followed by the query zone and a unique
number within that zone." ``tempvar`` names let-bound intermediates the
same way (Examples 8 and 10: ``$var1FR2``, ``$tempvar1FR4``).

Query zones: FR (FROM), WH (WHERE), GB (GROUP BY), OB (ORDER BY),
SL (SELECT).
"""

from __future__ import annotations

ZONES = ("FR", "WH", "GB", "OB", "SL")


class VariableAllocator:
    """Allocates globally unique, paper-style variable names.

    One allocator is shared across a whole translation; uniqueness comes
    from the (context id, zone, counter) triple.
    """

    def __init__(self):
        self._counters: dict[tuple[int, str, str], int] = {}

    def _next(self, prefix: str, context_id: int, zone: str) -> str:
        if zone not in ZONES:
            raise ValueError(f"unknown query zone {zone!r}")
        key = (context_id, zone, prefix)
        number = self._counters.get(key, -1) + 1
        self._counters[key] = number
        return f"{prefix}{context_id}{zone}{number}"

    def var(self, context_id: int, zone: str) -> str:
        """A ``for``-bound row variable, e.g. ``var1FR0``."""
        return self._next("var", context_id, zone)

    def tempvar(self, context_id: int, zone: str) -> str:
        """A ``let``-bound intermediate, e.g. ``tempvar1FR2``."""
        return self._next("tempvar", context_id, zone)

    def partition(self, context_id: int) -> str:
        """The group-by partition variable (Example 12's
        ``$var1Partition1``)."""
        key = (context_id, "GB", "partition")
        number = self._counters.get(key, 0) + 1
        self._counters[key] = number
        return f"var{context_id}Partition{number}"
