"""The SQL-to-XQuery translator (S5 in DESIGN.md) — the paper's core
contribution: progressive three-stage translation with typed resultset
nodes (RSNs), query contexts, paper-style variable naming, SQL→XQuery
function mapping, type-directed cast generation, and the section-4
delimited-text result wrapper."""

from .explain import explain
from .rsn import (
    ColumnResolution,
    DerivedRSN,
    JoinRSN,
    QueryScope,
    ResultColumn,
    RSN,
    RSNColumn,
    TableRSN,
)
from .stage1 import QueryContext, Stage1Result, run_stage1
from .stage2 import Binder, BoundQuery, BoundSelect, BoundSetOp, TranslationUnit
from .stage3 import Generator
from .translator import FORMATS, SQLToXQueryTranslator, TranslationResult
from .varnames import VariableAllocator
from .wrapper import NULL_MARK, VALUE_MARK, wrap_delimited

__all__ = [
    "Binder",
    "BoundQuery",
    "BoundSelect",
    "BoundSetOp",
    "ColumnResolution",
    "DerivedRSN",
    "FORMATS",
    "Generator",
    "JoinRSN",
    "NULL_MARK",
    "QueryContext",
    "QueryScope",
    "RSN",
    "RSNColumn",
    "ResultColumn",
    "SQLToXQueryTranslator",
    "Stage1Result",
    "TableRSN",
    "TranslationResult",
    "TranslationUnit",
    "VALUE_MARK",
    "VariableAllocator",
    "explain",
    "run_stage1",
    "wrap_delimited",
]
