"""Stage one: SQL recognition, AST construction, and context capture.

Paper section 3.4.1: "The first stage performs the SQL recognition and
builds an abstract syntax tree of nodes representing the SQL query ... At
this stage, all of the context information useful for further processing
is captured."

The AST itself comes from ``repro.sql.parser``; this module adds the
*query contexts* of section 3.4.3: one context per query block (the
outermost scope is the CTX0 marker), each holding identification, parent
links, and the per-query information later stages consult (aggregate
presence, select items, and so on).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..sql import ast, parse_statement


@dataclass
class QueryContext:
    """Per-query-block context (paper Figure 4).

    ``id`` 0 is the marker context for the outermost scope; real query
    blocks are numbered from 1 in discovery (depth-first) order.
    """

    id: int
    parent: Optional["QueryContext"] = None
    select: Optional[ast.Select] = None
    query: Optional[ast.Query] = None
    has_aggregates: bool = False
    is_grouped: bool = False
    correlatable: bool = True  # False for derived tables (SQL-92 7.11)
    children: list["QueryContext"] = field(default_factory=list)

    def describe(self) -> str:
        kind = "marker" if self.select is None and self.id == 0 else "query"
        return f"CTX{self.id} ({kind})"


@dataclass
class Stage1Result:
    """Output of stage one: the AST plus its captured contexts."""

    query: ast.Query
    root_context: QueryContext           # the CTX0 marker
    contexts: list[QueryContext]         # all contexts, by id
    select_context: dict[int, QueryContext]  # id(Select node) -> context

    def context_of(self, select: ast.Select) -> QueryContext:
        return self.select_context[id(select)]


class _ContextBuilder:
    def __init__(self):
        self.contexts: list[QueryContext] = []
        self.select_context: dict[int, QueryContext] = {}

    def build(self, query: ast.Query) -> Stage1Result:
        marker = QueryContext(id=0)
        self.contexts.append(marker)
        self._visit_query(query, marker, correlatable=True)
        return Stage1Result(query=query, root_context=marker,
                            contexts=self.contexts,
                            select_context=self.select_context)

    def _new_context(self, parent: QueryContext,
                     correlatable: bool) -> QueryContext:
        context = QueryContext(id=len(self.contexts), parent=parent,
                               correlatable=correlatable)
        parent.children.append(context)
        self.contexts.append(context)
        return context

    def _visit_query(self, query: ast.Query, parent: QueryContext,
                     correlatable: bool) -> None:
        self._visit_body(query.body, parent, correlatable, query)

    def _visit_body(self, body: ast.QueryBody, parent: QueryContext,
                    correlatable: bool,
                    query: ast.Query | None) -> None:
        if isinstance(body, ast.SetOp):
            self._visit_body(body.left, parent, correlatable, None)
            self._visit_body(body.right, parent, correlatable, None)
            return
        assert isinstance(body, ast.Select)
        context = self._new_context(parent, correlatable)
        context.select = body
        context.query = query
        context.has_aggregates = self._detect_aggregates(body)
        context.is_grouped = bool(body.group_by) or context.has_aggregates
        self.select_context[id(body)] = context
        for table in body.from_clause:
            self._visit_table(table, context)
        for expr in self._expressions_of(body):
            self._visit_expr(expr, context)

    def _expressions_of(self, select: ast.Select):
        for item in select.items:
            if isinstance(item, ast.SelectItem):
                yield item.expr
        if select.where is not None:
            yield select.where
        yield from select.group_by
        if select.having is not None:
            yield select.having

    def _visit_table(self, table: ast.TableExpr,
                     context: QueryContext) -> None:
        if isinstance(table, ast.DerivedTable):
            # Derived tables open a fresh, non-correlatable scope.
            self._visit_query(table.query, context, correlatable=False)
        elif isinstance(table, ast.Join):
            self._visit_table(table.left, context)
            self._visit_table(table.right, context)
            if table.condition is not None:
                self._visit_expr(table.condition, context)

    def _visit_expr(self, expr: ast.Expr, context: QueryContext) -> None:
        for node in ast.walk(expr):
            for subquery in ast.subqueries_of(node):
                self._visit_query(subquery, context, correlatable=True)

    def _detect_aggregates(self, select: ast.Select) -> bool:
        for item in select.items:
            if isinstance(item, ast.SelectItem) and \
                    ast.contains_aggregate(item.expr):
                return True
        if select.having is not None:
            return True
        return False


def run_stage1(sql: str) -> Stage1Result:
    """Parse *sql* (rejecting syntactically invalid input immediately)
    and capture query contexts."""
    query = parse_statement(sql)
    return _ContextBuilder().build(query)
