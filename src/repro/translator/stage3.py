"""Stage three: XQuery generation.

Paper section 3.4.1: "In stage-three, this transformed AST is traversed
and, based on the context information in the nodes, the XQuery is
generated piece by piece. Translated query snippets are stored in
intermediate buffers and assembled as the translation proceeds."

Generation follows the paper's patterns:

* FROM items → ``for`` clauses over data service functions (Fig. 7);
* derived tables → ``let``-bound ``<RECORDSET>`` trees, iterated with
  ``$temp/RECORD`` (Example 8);
* outer joins → ``let`` + ``if (fn:empty(...)) then ... else ...``
  (Example 10);
* GROUP BY → the BEA ``group`` extension over a (possibly materialized)
  row stream, aggregates over the partition variable (Example 12);
* generated variables follow the ``var<ctx><ZONE><n>`` naming (§3.5.iv);
* expression datatypes computed in stage two become ``xs:`` casts
  (§3.5.v).

SQL three-valued logic is preserved by emitting value comparisons (which
yield the empty sequence on NULL) and the ``fn-bea:`` 3VL combinators; see
DESIGN.md section 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from decimal import Decimal
from typing import Callable, Optional

from ..errors import SQLSemanticError, UnsupportedSQLError
from ..sql import ast
from ..sql.types import SQLType
from ..catalog import sql_to_xs
from .funcmap import extract_function_for, xquery_function_for
from .rsn import DerivedRSN, JoinRSN, RSN, TableRSN
from .stage2 import (
    BoundItem,
    BoundQuery,
    BoundSelect,
    BoundSetOp,
    BoundSortItem,
    TranslationUnit,
)
from .varnames import VariableAllocator

_EXACT_INT_KINDS = frozenset({"SMALLINT", "INTEGER", "BIGINT"})

_VALUE_COMP_OPS = {"=": "eq", "<>": "ne", "<": "lt", "<=": "le",
                   ">": "gt", ">=": "ge"}


@dataclass
class Accessor:
    """How a leaf RSN's rows are reached at a given point in generation.

    Modes: ``direct`` — the leaf's own typed row elements;
    ``record`` — a derived table's RECORDSET rows (children named by the
    inner query's result elements); ``join-record`` — rows of a
    materialized join (children qualified ``binding.column``, whatever
    kind of leaf the column came from).
    """

    var: str
    mode: str            # "direct" | "record" | "join-record"
    rsn: RSN

    def column_path(self, column_name: str) -> str:
        if self.mode == "direct":
            return f"${self.var}/{column_name}"
        if self.mode == "record" and isinstance(self.rsn, DerivedRSN):
            return f"${self.var}/{self.rsn.element_for(column_name)}"
        element = record_element(self.rsn.binding_name, column_name)
        return f"${self.var}/{element}"

    def is_typed(self) -> bool:
        return self.mode == "direct"


def record_element(binding: str, column: str) -> str:
    """Element name for a column inside an internal join RECORD."""
    raw = f"{binding}.{column}"
    return "".join(ch if ch.isalnum() or ch in "._-" else "_"
                   for ch in raw)


@dataclass
class GenContext:
    """Accessors in scope during generation, chained outward for
    correlated references. ``group`` is set while generating post-group
    expressions."""

    accessors: dict[int, Accessor] = field(default_factory=dict)
    parent: Optional["GenContext"] = None
    group: Optional["GroupContext"] = None

    def child(self) -> "GenContext":
        return GenContext(parent=self)

    def register(self, rsn: RSN, accessor: Accessor) -> None:
        self.accessors[id(rsn)] = accessor

    def lookup(self, rsn: RSN) -> Accessor:
        ctx: GenContext | None = self
        while ctx is not None:
            accessor = ctx.accessors.get(id(rsn))
            if accessor is not None:
                return accessor
            ctx = ctx.parent
        # Group contexts deliberately bypass their own query's row
        # variables (invalid after grouping), so a reference landing here
        # crossed a grouped boundary.
        raise UnsupportedSQLError(
            "correlated reference crosses a grouped query boundary or "
            "is otherwise out of scope")


@dataclass
class GroupContext:
    """Post-group evaluation state (paper Example 12)."""

    partition_var: str
    keys: list[tuple[ast.Expr, str]]          # (group-by expr, key var)
    make_row_context: Callable[[str], GenContext]

    def key_var_for(self, expr: ast.Expr) -> Optional[str]:
        for key_expr, var in self.keys:
            if expr == key_expr:
                return var
        return None


@dataclass
class _GroupRows:
    """The row stream feeding a group stage."""

    source: str
    factory: Callable[[str], GenContext]
    lets: list[tuple[str, str]]
    where_pending: bool


@dataclass
class _SourcePlan:
    """The FLWOR clauses a FROM clause compiles to."""

    lets: list[tuple[str, str]] = field(default_factory=list)
    fors: list[tuple[str, str]] = field(default_factory=list)
    conditions: list[ast.Expr] = field(default_factory=list)


class Generator:
    """Serializes a TranslationUnit into XQuery text."""

    def __init__(self, unit: TranslationUnit):
        self._unit = unit
        self._alloc = VariableAllocator()
        self._imports: dict[tuple[str, str | None], str] = {}

    # -- entry points ----------------------------------------------------

    def generate(self) -> str:
        """The complete query: prolog + <RECORDSET> body."""
        body = self.generate_body()
        return self._prolog() + f"<RECORDSET>{{\n{body}\n}}</RECORDSET>"

    def generate_body(self) -> str:
        """The RECORD-stream expression without prolog or RECORDSET."""
        self._collect_imports()
        root = GenContext()
        stream = self._gen_query(self._unit.bound, root)
        query = self._unit.bound.query
        if query.limit is not None or query.offset is not None:
            # SQL LIMIT/OFFSET maps onto fn:subsequence over the RECORD
            # stream: OFFSET skips (1-based start), LIMIT bounds the
            # length. Applied outside ORDER BY, matching SQL semantics.
            start = (query.offset or 0) + 1
            if query.limit is not None:
                stream = (f"fn:subsequence((\n{stream}\n), {start}, "
                          f"{query.limit})")
            else:
                stream = f"fn:subsequence((\n{stream}\n), {start})"
        return stream

    def prolog(self) -> str:
        self._collect_imports()
        return self._prolog()

    def _collect_imports(self) -> None:
        for rsn in self._unit.table_rsns:
            key = (rsn.metadata.namespace, rsn.metadata.schema_location)
            if key not in self._imports:
                self._imports[key] = f"ns{len(self._imports)}"

    def _prolog(self) -> str:
        lines = []
        for (uri, location), prefix in self._imports.items():
            line = f'import schema namespace {prefix} = "{uri}"'
            if location:
                line += f' at "{location}"'
            lines.append(line + ";")
        for index in sorted(self._unit.param_types):
            lines.append(f"declare variable $p{index} external;")
        if lines:
            return "\n".join(lines) + "\n"
        return ""

    def _prefix_for(self, rsn: TableRSN) -> str:
        return self._imports[(rsn.metadata.namespace,
                              rsn.metadata.schema_location)]

    # -- query / set operations -----------------------------------------------

    def _gen_query(self, bound: BoundQuery, outer: GenContext,
                   element_names: list[str] | None = None) -> str:
        if isinstance(bound.body, BoundSetOp):
            stream = self._gen_setop(bound.body, outer, element_names)
            if bound.order_by:
                stream = self._order_record_stream(
                    stream, bound, bound.order_by)
            return stream
        return self._gen_select(bound.body, bound.order_by, outer,
                                element_names)

    def _gen_setop(self, setop: BoundSetOp, outer: GenContext,
                   element_names: list[str] | None) -> str:
        names = element_names or [c.element for c in setop.result_columns]
        left = self._gen_body(setop.left, outer, names)
        right = self._gen_body(setop.right, outer, names)
        if setop.op == "UNION":
            if setop.all:
                return f"({left},\n{right})"
            return f"fn-bea:distinct-records(({left},\n{right}))"
        flag = "fn:true()" if setop.all else "fn:false()"
        function = "fn-bea:intersect-records" if setop.op == "INTERSECT" \
            else "fn-bea:except-records"
        return f"{function}(({left}),\n({right}), {flag})"

    def _gen_body(self, body, outer: GenContext,
                  element_names: list[str]) -> str:
        if isinstance(body, BoundSetOp):
            return self._gen_setop(body, outer, element_names)
        return self._gen_select(body, [], outer, element_names)

    def _order_record_stream(self, stream: str, bound: BoundQuery,
                             order_by: list[BoundSortItem]) -> str:
        """ORDER BY over an opaque RECORD stream (set operations)."""
        var = self._alloc.var(0, "OB")
        keys = []
        for sort in order_by:
            if sort.item_index is None:
                raise SQLSemanticError(
                    "ORDER BY over a set operation must use result "
                    "columns or positions")
            column = bound.result_columns[sort.item_index]
            key = self._cast(f"fn:data(${var}/{column.element})",
                             column.sql_type)
            keys.append(key + ("" if sort.ascending else " descending"))
        return (f"for ${var} in ({stream})\n"
                f"order by {', '.join(keys)}\n"
                f"return ${var}")

    # -- SELECT generation ---------------------------------------------------------

    def _gen_select(self, bound: BoundSelect,
                    order_by: list[BoundSortItem], outer: GenContext,
                    element_names: list[str] | None = None) -> str:
        ctx_id = bound.context.id
        ctx = outer.child()
        plan = _SourcePlan()
        for rsn in bound.scope.rsns:
            self._plan_source(rsn, ctx, ctx_id, plan)

        names = element_names or [item.element for item in bound.items]
        if bound.is_grouped:
            text = self._gen_grouped(bound, order_by, ctx, outer, ctx_id,
                                     plan, names)
        else:
            text = self._gen_plain(bound, order_by, ctx, ctx_id, plan,
                                   names)
        if bound.distinct:
            text = f"fn-bea:distinct-records(({text}))"
        return text

    def _gen_plain(self, bound: BoundSelect,
                   order_by: list[BoundSortItem], ctx: GenContext,
                   ctx_id: int, plan: _SourcePlan,
                   names: list[str]) -> str:
        lines = []
        for var, expr in plan.lets:
            lines.append(f"let ${var} :=\n{expr}")
        for var, expr in plan.fors:
            lines.append(f"for ${var} in {expr}")
        for condition in plan.conditions:
            lines.append(f"where {self._gen_pred(condition, ctx)}")
        if bound.where is not None:
            lines.append(f"where {self._gen_pred(bound.where, ctx)}")
        if order_by:
            lines.append(self._order_clause(order_by, bound, ctx))
        lines.append("return")
        lines.append(self._gen_record(bound.items, names, ctx))
        return "\n".join(lines)

    def _order_clause(self, order_by: list[BoundSortItem],
                      bound: BoundSelect, ctx: GenContext) -> str:
        keys = []
        for sort in order_by:
            if sort.item_index is not None:
                expr = bound.items[sort.item_index].expr
            else:
                expr = sort.expr
            key = self._gen_value(expr, ctx)
            keys.append(key + ("" if sort.ascending else " descending"))
        return f"order by {', '.join(keys)}"

    def _gen_record(self, items: list[BoundItem], names: list[str],
                    ctx: GenContext) -> str:
        parts = ["<RECORD>"]
        for item, element in zip(items, names):
            value = self._gen_value(item.expr, ctx)
            parts.append(f"  <{element}>{{{value}}}</{element}>")
        parts.append("</RECORD>")
        return "\n".join(parts)

    # -- grouped SELECT ---------------------------------------------------------------

    def _gen_grouped(self, bound: BoundSelect,
                     order_by: list[BoundSortItem], ctx: GenContext,
                     outer: GenContext, ctx_id: int, plan: _SourcePlan,
                     names: list[str]) -> str:
        rows = self._rows_for_grouping(bound, ctx, ctx_id, plan)
        if bound.group_by:
            return self._gen_group_by(bound, order_by, outer, ctx_id,
                                      rows, names)
        return self._gen_implicit_group(bound, outer, ctx_id, rows, names)

    def _rows_for_grouping(self, bound: BoundSelect, ctx: GenContext,
                           ctx_id: int, plan: _SourcePlan) \
            -> "_GroupRows":
        """A single row stream for the group stage, plus a factory that
        binds a row variable to accessors (the paper's $inter pattern for
        multi-table grouped queries). ``where_pending`` reports whether
        the WHERE clause still has to be applied before grouping."""
        lets = list(plan.lets)
        leaves = bound.scope.leaf_bindings()
        if len(plan.fors) == 1 and not plan.conditions and \
                len(leaves) == 1:
            _var, expr = plan.fors[0]
            source_rsn = leaves[0]
            mode = "direct" if isinstance(source_rsn, TableRSN) \
                else "record"

            def factory(row_var: str,
                        rsn=source_rsn, m=mode) -> GenContext:
                inner = ctx.child()
                inner.register(rsn, Accessor(var=row_var, mode=m, rsn=rsn))
                return inner

            return _GroupRows(source=expr, factory=factory, lets=lets,
                              where_pending=bound.where is not None)
        # General case: materialize the (filtered, joined) rows into an
        # intermediate RECORDSET, as the paper does with $inter.
        inner_lines = []
        for var, expr in plan.fors:
            inner_lines.append(f"for ${var} in {expr}")
        for condition in plan.conditions:
            inner_lines.append(f"where {self._gen_pred(condition, ctx)}")
        if bound.where is not None:
            inner_lines.append(f"where {self._gen_pred(bound.where, ctx)}")
        record = self._all_columns_record(leaves, ctx)
        inner_lines.append(f"return\n{record}")
        inter = self._alloc.tempvar(ctx_id, "GB")
        lets.append((inter,
                     "<RECORDSET>{\n" + "\n".join(inner_lines)
                     + "\n}</RECORDSET>"))

        def factory(row_var: str) -> GenContext:
            inner = ctx.child()
            for leaf in leaves:
                inner.register(leaf, Accessor(var=row_var,
                                              mode="join-record",
                                              rsn=leaf))
            return inner

        return _GroupRows(source=f"${inter}/RECORD", factory=factory,
                          lets=lets, where_pending=False)

    def _all_columns_record(self, leaves: list[RSN],
                            ctx: GenContext) -> str:
        parts = ["<RECORD>"]
        for leaf in leaves:
            accessor = ctx.lookup(leaf)
            for column in leaf.columns():
                element = record_element(leaf.binding_name, column.name)
                value = f"fn:data({accessor.column_path(column.name)})"
                parts.append(f"  <{element}>{{{value}}}</{element}>")
        parts.append("</RECORD>")
        return "\n".join(parts)

    def _gen_group_by(self, bound, order_by, outer, ctx_id, rows,
                      names) -> str:
        row_var = self._alloc.var(ctx_id, "GB")
        row_ctx = rows.factory(row_var)
        partition_var = self._alloc.partition(ctx_id)
        keys: list[tuple[ast.Expr, str]] = []
        key_clauses = []
        for key_expr in bound.group_by:
            key_var = self._alloc.var(ctx_id, "GB")
            keys.append((key_expr, key_var))
            key_clauses.append(
                f"{self._gen_value(key_expr, row_ctx)} as ${key_var}")
        # Post-group expressions must not see this query's row variables;
        # the group context chains straight to the *outer* scope so
        # correlated references still resolve.
        group_ctx = GenContext(parent=outer)
        group_ctx.group = GroupContext(
            partition_var=partition_var, keys=keys,
            make_row_context=rows.factory)

        lines = []
        for var, expr in rows.lets:
            lines.append(f"let ${var} :=\n{expr}")
        lines.append(f"for ${row_var} in {rows.source}")
        if rows.where_pending and bound.where is not None:
            lines.append(f"where {self._gen_pred(bound.where, row_ctx)}")
        lines.append(f"group ${row_var} as ${partition_var} by "
                     + ", ".join(key_clauses))
        if bound.having is not None:
            lines.append(
                f"where {self._gen_pred(bound.having, group_ctx)}")
        if order_by:
            lines.append(self._order_clause_grouped(order_by, bound,
                                                    group_ctx))
        lines.append("return")
        lines.append(self._gen_record(bound.items, names, group_ctx))
        return "\n".join(lines)

    def _order_clause_grouped(self, order_by, bound, group_ctx) -> str:
        keys = []
        for sort in order_by:
            if sort.item_index is not None:
                expr = bound.items[sort.item_index].expr
            else:
                expr = sort.expr
            key = self._gen_value(expr, group_ctx)
            keys.append(key + ("" if sort.ascending else " descending"))
        return f"order by {', '.join(keys)}"

    def _gen_implicit_group(self, bound, outer, ctx_id, rows,
                            names) -> str:
        """Aggregates without GROUP BY: one group over all rows."""
        partition_var = self._alloc.partition(ctx_id)
        group_ctx = GenContext(parent=outer)
        group_ctx.group = GroupContext(
            partition_var=partition_var, keys=[],
            make_row_context=rows.factory)
        lines = []
        for var, expr in rows.lets:
            lines.append(f"let ${var} :=\n{expr}")
        source = rows.source
        if rows.where_pending and bound.where is not None:
            row_var = self._alloc.var(ctx_id, "GB")
            row_ctx = rows.factory(row_var)
            source = (f"(for ${row_var} in {rows.source}\n"
                      f"where {self._gen_pred(bound.where, row_ctx)}\n"
                      f"return ${row_var})")
        lines.append(f"let ${partition_var} := {source}")
        record = self._gen_record(bound.items, names, group_ctx)
        if bound.having is not None:
            having = self._gen_pred(bound.having, group_ctx)
            lines.append("return")
            lines.append(f"if ({having}) then\n{record}\nelse ()")
        else:
            lines.append("return")
            lines.append(record)
        return "\n".join(lines)

    # -- FROM planning -----------------------------------------------------------------

    def _plan_source(self, rsn: RSN, ctx: GenContext, ctx_id: int,
                     plan: _SourcePlan) -> None:
        if isinstance(rsn, TableRSN):
            var = self._alloc.var(ctx_id, "FR")
            ctx.register(rsn, Accessor(var=var, mode="direct", rsn=rsn))
            plan.fors.append((var, self._table_call(rsn)))
            return
        if isinstance(rsn, DerivedRSN):
            temp = self._alloc.tempvar(ctx_id, "FR")
            inner = self._gen_query(rsn.bound_query, ctx)
            plan.lets.append(
                (temp, "<RECORDSET>{\n" + inner + "\n}</RECORDSET>"))
            var = self._alloc.var(ctx_id, "FR")
            ctx.register(rsn, Accessor(var=var, mode="record", rsn=rsn))
            plan.fors.append((var, f"${temp}/RECORD"))
            return
        assert isinstance(rsn, JoinRSN)
        if rsn.contains_outer():
            temp = self._alloc.tempvar(ctx_id, "FR")
            join_expr, join_lets = self._gen_join(rsn, ctx, ctx_id)
            plan.lets.extend(join_lets)
            plan.lets.append(
                (temp, "<RECORDSET>{\n" + join_expr + "\n}</RECORDSET>"))
            var = self._alloc.var(ctx_id, "FR")
            for leaf in rsn.leaf_bindings():
                ctx.register(leaf, Accessor(var=var, mode="join-record",
                                            rsn=leaf))
            plan.fors.append((var, f"${temp}/RECORD"))
            return
        # Inner/cross joins flatten into for clauses plus conditions.
        self._plan_source(rsn.left, ctx, ctx_id, plan)
        self._plan_source(rsn.right, ctx, ctx_id, plan)
        if rsn.condition is not None:
            plan.conditions.append(rsn.condition)

    def _table_call(self, rsn: TableRSN) -> str:
        prefix = self._prefix_for(rsn)
        return f"{prefix}:{rsn.metadata.function_name}()"

    # -- join materialization -------------------------------------------------------------

    def _gen_join(self, join: JoinRSN, outer_ctx: GenContext,
                  ctx_id: int) -> tuple[str, list[tuple[str, str]]]:
        """An outer-join RECORD stream per the paper's Example 10."""
        lets: list[tuple[str, str]] = []
        ctx = outer_ctx.child()
        kind = join.kind
        left, right = join.left, join.right
        if kind == "RIGHT":
            left, right = right, left
            kind = "LEFT"
        left_var, left_source = self._join_side_source(
            left, ctx, ctx_id, lets)
        right_rows = self._join_side_rows(right, ctx, ctx_id, lets)
        right_var = self._alloc.var(ctx_id, "FR")
        self._register_join_side(right, ctx, right_var)

        left_cols = self._join_record_columns(left, ctx)
        right_cols = self._join_record_columns(right, ctx)
        all_record = self._record_of(left_cols + right_cols)
        left_record = self._record_of(left_cols)
        right_record = self._record_of(right_cols)

        if kind == "CROSS" or kind == "INNER":
            condition = ""
            if join.condition is not None:
                condition = f"where {self._gen_pred(join.condition, ctx)}\n"
            expr = (f"for ${left_var} in {left_source}\n"
                    f"for ${right_var} in {right_rows}\n"
                    f"{condition}return\n{all_record}")
            return expr, lets

        assert kind in ("LEFT", "FULL")
        temp = self._alloc.tempvar(ctx_id, "FR")
        condition = self._gen_pred(join.condition, ctx) \
            if join.condition is not None else "fn:true()"
        matched = (f"(for ${right_var} in {right_rows}\n"
                   f"where {condition}\n"
                   f"return ${right_var})")
        left_outer = (
            f"for ${left_var} in {left_source}\n"
            f"let ${temp} := {matched}\n"
            f"return\n"
            f"if (fn:empty(${temp})) then\n"
            f"{left_record}\n"
            f"else\n"
            f"for ${right_var} in ${temp}\n"
            f"return\n{all_record}")
        if kind == "LEFT":
            return left_outer, lets
        # FULL OUTER: append right-side rows with no left match.
        anti_left_var = self._alloc.var(ctx_id, "FR")
        anti_temp = self._alloc.tempvar(ctx_id, "FR")
        anti_condition = self._rebind_condition(join, left, anti_left_var,
                                                ctx)
        anti = (f"for ${right_var} in {right_rows}\n"
                f"let ${anti_temp} := (for ${anti_left_var} in "
                f"{left_source}\n"
                f"where {anti_condition}\n"
                f"return ${anti_left_var})\n"
                f"where fn:empty(${anti_temp})\n"
                f"return\n{right_record}")
        return f"({left_outer},\n{anti})", lets

    def _rebind_condition(self, join: JoinRSN, left: RSN,
                          new_left_var: str, ctx: GenContext) -> str:
        """Regenerate the join condition with the left side bound to a
        fresh variable (for the FULL OUTER anti-join pass)."""
        anti_ctx = ctx.child()
        for leaf in left.leaf_bindings():
            old = ctx.lookup(leaf)
            anti_ctx.register(leaf, Accessor(var=new_left_var,
                                             mode=old.mode, rsn=leaf))
        if join.condition is None:
            return "fn:true()"
        return self._gen_pred(join.condition, anti_ctx)

    def _join_side_source(self, side: RSN, ctx: GenContext, ctx_id: int,
                          lets: list) -> tuple[str, str]:
        """(iteration variable, row-source expression) for a join side,
        registering accessors for its leaves."""
        rows = self._join_side_rows(side, ctx, ctx_id, lets)
        var = self._alloc.var(ctx_id, "FR")
        self._register_join_side(side, ctx, var)
        return var, rows

    def _join_side_rows(self, side: RSN, ctx: GenContext, ctx_id: int,
                        lets: list) -> str:
        if isinstance(side, TableRSN):
            return self._table_call(side)
        if isinstance(side, DerivedRSN):
            temp = self._alloc.tempvar(ctx_id, "FR")
            inner = self._gen_query(side.bound_query, ctx)
            lets.append((temp,
                         "<RECORDSET>{\n" + inner + "\n}</RECORDSET>"))
            return f"${temp}/RECORD"
        assert isinstance(side, JoinRSN)
        inner_expr, inner_lets = self._gen_join(side, ctx, ctx_id)
        lets.extend(inner_lets)
        temp = self._alloc.tempvar(ctx_id, "FR")
        lets.append((temp,
                     "<RECORDSET>{\n" + inner_expr + "\n}</RECORDSET>"))
        return f"${temp}/RECORD"

    def _register_join_side(self, side: RSN, ctx: GenContext,
                            var: str) -> None:
        if isinstance(side, TableRSN):
            ctx.register(side, Accessor(var=var, mode="direct", rsn=side))
            return
        if isinstance(side, DerivedRSN):
            # The side's rows are the derived table's own RECORDs.
            ctx.register(side, Accessor(var=var, mode="record", rsn=side))
            return
        # A nested, materialized join: rows carry binding.column names.
        for leaf in side.leaf_bindings():
            ctx.register(leaf, Accessor(var=var, mode="join-record",
                                        rsn=leaf))

    def _join_record_columns(self, side: RSN,
                             ctx: GenContext) -> list[tuple[str, str]]:
        columns = []
        for leaf in side.leaf_bindings():
            accessor = ctx.lookup(leaf)
            for column in leaf.columns():
                element = record_element(leaf.binding_name, column.name)
                value = f"fn:data({accessor.column_path(column.name)})"
                columns.append((element, value))
        return columns

    def _record_of(self, columns: list[tuple[str, str]]) -> str:
        parts = ["<RECORD>"]
        for element, value in columns:
            parts.append(f"  <{element}>{{{value}}}</{element}>")
        parts.append("</RECORD>")
        return "\n".join(parts)

    # -- predicates (three-valued logic) ---------------------------------------------------

    def _gen_pred(self, expr: ast.Expr, ctx: GenContext) -> str:
        if isinstance(expr, ast.Comparison):
            op = _VALUE_COMP_OPS[expr.op]
            left = self._gen_value(expr.left, ctx)
            right = self._gen_value(expr.right, ctx)
            return f"({left} {op} {right})"
        if isinstance(expr, ast.And):
            return (f"fn-bea:and3({self._gen_pred(expr.left, ctx)}, "
                    f"{self._gen_pred(expr.right, ctx)})")
        if isinstance(expr, ast.Or):
            return (f"fn-bea:or3({self._gen_pred(expr.left, ctx)}, "
                    f"{self._gen_pred(expr.right, ctx)})")
        if isinstance(expr, ast.Not):
            return f"fn-bea:not3({self._gen_pred(expr.operand, ctx)})"
        if isinstance(expr, ast.IsNull):
            test = "fn:exists" if expr.negated else "fn:empty"
            return f"{test}({self._gen_value(expr.operand, ctx)})"
        if isinstance(expr, ast.Between):
            operand = self._gen_value(expr.operand, ctx)
            low = self._gen_value(expr.low, ctx)
            high = self._gen_value(expr.high, ctx)
            body = (f"fn-bea:and3(({operand} ge {low}), "
                    f"({operand} le {high}))")
            return f"fn-bea:not3({body})" if expr.negated else body
        if isinstance(expr, ast.InList):
            operand = self._gen_value(expr.operand, ctx)
            if all(isinstance(item, ast.Literal) for item in expr.items):
                # Literal lists (the common reporting shape, sometimes
                # hundreds of values) translate to one flat membership
                # test: no item can be NULL, so fn-bea:in3 is exactly the
                # OR-chain's semantics without its nesting depth.
                values = ", ".join(self._gen_value(item, ctx)
                                   for item in expr.items)
                body = f"fn-bea:in3({operand}, ({values}))"
                return f"fn-bea:not3({body})" if expr.negated else body
            clauses = [f"({operand} eq {self._gen_value(item, ctx)})"
                       for item in expr.items]
            body = clauses[0]
            for clause in clauses[1:]:
                body = f"fn-bea:or3({body}, {clause})"
            return f"fn-bea:not3({body})" if expr.negated else body
        if isinstance(expr, ast.InSubquery):
            operand = self._gen_value(expr.operand, ctx)
            stream = self._subquery_column_stream(expr.query, ctx)
            body = f"fn-bea:in3({operand}, {stream})"
            return f"fn-bea:not3({body})" if expr.negated else body
        if isinstance(expr, ast.QuantifiedComparison):
            operand = self._gen_value(expr.left, ctx)
            stream = self._subquery_column_stream(expr.query, ctx)
            op = _VALUE_COMP_OPS[expr.op]
            function = "fn-bea:any3" if expr.quantifier == "ANY" \
                else "fn-bea:all3"
            return f'{function}({operand}, {stream}, "{op}")'
        if isinstance(expr, ast.Like):
            operand = self._gen_value(expr.operand, ctx)
            pattern = self._gen_value(expr.pattern, ctx)
            args = f"{operand}, {pattern}"
            if expr.escape is not None:
                args += f", {self._gen_value(expr.escape, ctx)}"
            body = f"fn-bea:sql-like({args})"
            return f"fn-bea:not3({body})" if expr.negated else body
        if isinstance(expr, ast.Exists):
            stream = self._gen_subquery(expr.query, ctx)
            return f"fn:exists(({stream}))"
        raise UnsupportedSQLError(
            f"unsupported predicate {type(expr).__name__}")

    def _gen_subquery(self, query: ast.Query, ctx: GenContext) -> str:
        bound = self._unit.subqueries[id(query)]
        return self._gen_query(bound, ctx)

    def _subquery_column_stream(self, query: ast.Query,
                                ctx: GenContext) -> str:
        bound = self._unit.subqueries[id(query)]
        stream = self._gen_query(bound, ctx)
        element = bound.result_columns[0].element
        return f"(({stream})/{element})"

    # -- value expressions ----------------------------------------------------------------

    def _cast(self, text: str, sql_type: Optional[SQLType]) -> str:
        if sql_type is None:
            return text
        return f"xs:{sql_to_xs(sql_type)}({text})"

    def _gen_value(self, expr: ast.Expr, ctx: GenContext) -> str:
        if ctx.group is not None:
            key_var = ctx.group.key_var_for(expr)
            if key_var is not None:
                return f"${key_var}"
            if isinstance(expr, ast.AggregateCall):
                return self._gen_aggregate(expr, ctx)
        if isinstance(expr, ast.Literal):
            return self._gen_literal(expr)
        if isinstance(expr, ast.NullLiteral):
            return "()"
        if isinstance(expr, ast.Parameter):
            return f"$p{expr.index}"
        if isinstance(expr, ast.ColumnRef):
            return self._gen_column(expr, ctx)
        if isinstance(expr, ast.UnaryOp):
            value = self._gen_value(expr.operand, ctx)
            return f"(-{value})" if expr.op == "-" else value
        if isinstance(expr, ast.BinaryOp):
            return self._gen_binary(expr, ctx)
        if isinstance(expr, ast.FunctionCall):
            return self._gen_function(expr, ctx)
        if isinstance(expr, ast.AggregateCall):
            raise SQLSemanticError(
                f"aggregate {expr.func} used outside a grouped query")
        if isinstance(expr, ast.CaseExpr):
            return self._gen_case(expr, ctx)
        if isinstance(expr, ast.Cast):
            return self._gen_cast(expr, ctx)
        if isinstance(expr, ast.ExtractExpr):
            return self._gen_extract(expr, ctx)
        if isinstance(expr, ast.TrimExpr):
            return self._gen_trim(expr, ctx)
        if isinstance(expr, ast.ScalarSubquery):
            stream = self._gen_subquery(expr.query, ctx)
            sql_type = self._unit.type_of(expr)
            return self._cast(f"fn-bea:scalar(({stream}))", sql_type)
        raise UnsupportedSQLError(
            f"unsupported value expression {type(expr).__name__}")

    def _gen_literal(self, literal: ast.Literal) -> str:
        value = literal.value
        if isinstance(value, str):
            escaped = value.replace("&", "&amp;").replace('"', "&quot;")
            return f'"{escaped}"'
        if isinstance(value, bool):
            return "fn:true()" if value else "fn:false()"
        if isinstance(value, int):
            return f"xs:int({value})" if -2147483648 <= value < 2147483648 \
                else f"xs:long({value})"
        if isinstance(value, Decimal):
            return f"xs:decimal({value})"
        if isinstance(value, float):
            return f'xs:double("{value!r}")'
        kind = literal.type.kind
        if kind == "DATE":
            return f'xs:date("{value.isoformat()}")'
        if kind == "TIME":
            return f'xs:time("{value.isoformat()}")'
        if kind == "TIMESTAMP":
            return f'xs:dateTime("{value.isoformat(sep="T")}")'
        raise UnsupportedSQLError(f"cannot render literal {value!r}")

    def _gen_column(self, ref: ast.ColumnRef, ctx: GenContext) -> str:
        resolution = self._unit.resolution_of(ref)
        accessor = ctx.lookup(resolution.rsn)
        path = accessor.column_path(resolution.column.name)
        data = f"fn:data({path})"
        if accessor.is_typed():
            return data
        return self._cast(data, resolution.column.sql_type)

    def _gen_binary(self, expr: ast.BinaryOp, ctx: GenContext) -> str:
        left = self._gen_value(expr.left, ctx)
        right = self._gen_value(expr.right, ctx)
        if expr.op == "||":
            return f"fn-bea:sql-concat({left}, {right})"
        op = expr.op
        if op == "/":
            left_type = self._unit.type_of(expr.left)
            right_type = self._unit.type_of(expr.right)
            if left_type is not None and right_type is not None and \
                    left_type.kind in _EXACT_INT_KINDS and \
                    right_type.kind in _EXACT_INT_KINDS:
                op = "idiv"
            else:
                op = "div"
        return f"({left} {op} {right})"

    def _gen_function(self, expr: ast.FunctionCall,
                      ctx: GenContext) -> str:
        name = expr.name.upper()
        args = [self._gen_value(arg, ctx) for arg in expr.args]
        if name == "COALESCE":
            body = args[-1]
            for arg in reversed(args[:-1]):
                body = f"fn-bea:if-empty({arg}, {body})"
            return body
        if name == "NULLIF":
            return (f"(if ({args[0]} eq {args[1]}) then () "
                    f"else {args[0]})")
        if name == "MOD":
            return f"({args[0]} mod {args[1]})"
        if name == "ROUND":
            if len(args) == 1:
                return f"fn:round({args[0]})"
            return f"fn-bea:sql-round({args[0]}, {args[1]})"
        function = xquery_function_for(name)
        return f"{function}({', '.join(args)})"

    def _gen_case(self, expr: ast.CaseExpr, ctx: GenContext) -> str:
        branches = []
        for when, then in expr.whens:
            if expr.operand is not None:
                condition = (f"({self._gen_value(expr.operand, ctx)} eq "
                             f"{self._gen_value(when, ctx)})")
            else:
                condition = self._gen_pred(when, ctx)
            branches.append((condition, self._gen_value(then, ctx)))
        else_value = self._gen_value(expr.else_, ctx) \
            if expr.else_ is not None else "()"
        text = else_value
        for condition, value in reversed(branches):
            text = f"(if ({condition}) then {value} else {text})"
        return text

    def _gen_cast(self, expr: ast.Cast, ctx: GenContext) -> str:
        value = self._gen_value(expr.operand, ctx)
        target = expr.target
        if target.kind in ("CHAR", "VARCHAR") and target.length is not None:
            return (f"fn-bea:sql-substring(xs:string({value}), 1, "
                    f"{target.length})")
        if target.kind == "DECIMAL" and target.scale is not None:
            return (f"fn-bea:sql-round(xs:decimal({value}), "
                    f"{target.scale})")
        return self._cast(value, target)

    def _gen_extract(self, expr: ast.ExtractExpr, ctx: GenContext) -> str:
        source_type = self._unit.type_of(expr.source)
        kind = source_type.kind if source_type is not None else "TIMESTAMP"
        function = extract_function_for(expr.field, kind)
        return f"{function}({self._gen_value(expr.source, ctx)})"

    def _gen_trim(self, expr: ast.TrimExpr, ctx: GenContext) -> str:
        chars = self._gen_value(expr.chars, ctx) \
            if expr.chars is not None else '" "'
        source = self._gen_value(expr.source, ctx)
        return f'fn-bea:sql-trim("{expr.mode}", {chars}, {source})'

    # -- aggregates ----------------------------------------------------------------------

    def _gen_aggregate(self, expr: ast.AggregateCall,
                       ctx: GenContext) -> str:
        group = ctx.group
        assert group is not None
        partition = f"${group.partition_var}"
        if expr.star:
            return f"fn:count({partition})"
        row_var = self._alloc.var(0, "SL")
        row_ctx = group.make_row_context(row_var)
        value = self._gen_value(expr.arg, row_ctx)
        values = f"for ${row_var} in {partition} return {value}"
        if expr.distinct:
            values = f"fn:distinct-values(({values}))"
        else:
            values = f"({values})"
        if expr.func == "COUNT":
            return f"fn:count({values})"
        if expr.func == "SUM":
            return f"fn:sum({values}, ())"
        if expr.func == "AVG":
            return f"fn:avg({values})"
        if expr.func == "MIN":
            return f"fn:min({values})"
        if expr.func == "MAX":
            return f"fn:max({values})"
        raise UnsupportedSQLError(f"unknown aggregate {expr.func}")
