"""Resultset nodes (RSNs) — the translator's typed view components.

Paper section 3.4.2: "Queries on tables, join operations between two
queries or tables, set operations involving two queries, and even the
tables themselves are all treated as views ... A typed view node is
created for each query (or subquery), each join operation on two views,
each set operation on two queries, and each table. We will refer to this
typed view node as a resultset-node (RSN)."

Each RSN knows its columns, answers qualifier-based column resolution
requests delegated by its query context (section 3.4.3), and — in stage
three — emits its own XQuery fragment ("distribution of intelligence among
components").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from ..catalog import TableMetadata, sql_to_xs
from ..errors import SQLSemanticError
from ..sql import ast
from ..sql.types import SQLType


@dataclass(frozen=True)
class RSNColumn:
    """One column of an RSN's tabular view.

    ``typed`` records whether accessing the column yields schema-typed
    atomic values (physical table elements) or untyped constructor output
    (derived/join/set-op RECORD trees) that stage three must wrap in an
    ``xs:`` cast.
    """

    name: str
    sql_type: SQLType
    nullable: bool = True
    typed: bool = False

    @property
    def xs_type(self) -> str:
        return sql_to_xs(self.sql_type)


@dataclass(frozen=True)
class ResultColumn:
    """One column of a translated query's result.

    ``label`` is the JDBC-visible column label; ``element`` is the (unique,
    NCName-safe) XML element name used inside ``<RECORD>`` construction.
    """

    label: str
    element: str
    sql_type: SQLType
    nullable: bool = True


class RSN:
    """Base resultset node."""

    binding_name: str

    def columns(self) -> list[RSNColumn]:
        raise NotImplementedError

    def column(self, name: str) -> RSNColumn | None:
        for col in self.columns():
            if col.name == name:
                return col
        return None

    def leaf_bindings(self) -> Iterator["RSN"]:
        """The addressable range variables under this RSN (joins expose
        their children; tables/deriveds expose themselves)."""
        yield self

    def matches_qualifier(self, qualifier: tuple[str, ...]) -> bool:
        raise NotImplementedError


@dataclass(eq=False)
class TableRSN(RSN):
    """A base table: a parameterless data service function (Figure 2)."""

    metadata: TableMetadata
    alias: Optional[str] = None

    @property
    def binding_name(self) -> str:
        return self.alias or self.metadata.table

    def columns(self) -> list[RSNColumn]:
        return [RSNColumn(name=c.name, sql_type=c.sql_type,
                          nullable=c.nullable, typed=True)
                for c in self.metadata.columns]

    def matches_qualifier(self, qualifier: tuple[str, ...]) -> bool:
        if len(qualifier) == 1:
            return qualifier[0] == self.binding_name
        if self.alias is not None:
            return False  # aliased tables hide their qualified names
        if len(qualifier) == 2:
            return (qualifier[0] == self.metadata.schema
                    and qualifier[1] == self.metadata.table)
        if len(qualifier) == 3:
            return (qualifier[0] == self.metadata.catalog
                    and qualifier[1] == self.metadata.schema
                    and qualifier[2] == self.metadata.table)
        return False


@dataclass(eq=False)
class DerivedRSN(RSN):
    """A derived table: a subquery in FROM, translated to a let-bound
    RECORDSET (paper Example 8)."""

    bound_query: "object"  # BoundQuery (stage2); typed loosely to avoid cycle
    alias: str = ""
    column_aliases: tuple[str, ...] = ()

    @property
    def binding_name(self) -> str:
        return self.alias

    def columns(self) -> list[RSNColumn]:
        result_columns = self.bound_query.result_columns
        if self.column_aliases:
            if len(self.column_aliases) != len(result_columns):
                raise SQLSemanticError(
                    f"{self.alias}: {len(self.column_aliases)} column "
                    f"aliases for {len(result_columns)} columns")
            names = self.column_aliases
        else:
            names = tuple(c.label for c in result_columns)
        return [RSNColumn(name=name, sql_type=col.sql_type,
                          nullable=col.nullable, typed=False)
                for name, col in zip(names, result_columns)]

    def element_for(self, name: str) -> str:
        """RECORD child element holding column *name*."""
        for rsn_col, res_col in zip(self.columns(),
                                    self.bound_query.result_columns):
            if rsn_col.name == name:
                return res_col.element
        raise SQLSemanticError(
            f"column {name} does not exist in {self.alias}")

    def matches_qualifier(self, qualifier: tuple[str, ...]) -> bool:
        return len(qualifier) == 1 and qualifier[0] == self.alias


@dataclass(eq=False)
class JoinRSN(RSN):
    """A join of two views. Owns its condition and, in stage three,
    generates its own join expression (if-empty pattern for outer joins)."""

    kind: str  # INNER | LEFT | RIGHT | FULL | CROSS
    left: RSN
    right: RSN
    condition: Optional[ast.Expr] = None

    binding_name = "<join>"

    def columns(self) -> list[RSNColumn]:
        return self.left.columns() + self.right.columns()

    def leaf_bindings(self) -> Iterator[RSN]:
        yield from self.left.leaf_bindings()
        yield from self.right.leaf_bindings()

    def matches_qualifier(self, qualifier: tuple[str, ...]) -> bool:
        return False

    def contains_outer(self) -> bool:
        if self.kind in ("LEFT", "RIGHT", "FULL"):
            return True
        for child in (self.left, self.right):
            if isinstance(child, JoinRSN) and child.contains_outer():
                return True
        return False


@dataclass
class ColumnResolution:
    """The answer to an XPath-resolution request (paper section 3.5.iv)."""

    rsn: RSN              # the leaf RSN owning the column
    column: RSNColumn
    depth: int = 0        # 0 = this query's scope; >0 = outer (correlated)


@dataclass
class QueryScope:
    """A query context's name-resolution view: its FROM RSNs plus a link
    to the parent query's scope for correlated subqueries."""

    rsns: list[RSN] = field(default_factory=list)
    parent: Optional["QueryScope"] = None

    def leaf_bindings(self) -> list[RSN]:
        leaves: list[RSN] = []
        for rsn in self.rsns:
            leaves.extend(rsn.leaf_bindings())
        return leaves

    def check_duplicate_bindings(self) -> None:
        names = [leaf.binding_name for leaf in self.leaf_bindings()]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise SQLSemanticError(
                "duplicate range variable(s) in FROM: "
                + ", ".join(sorted(duplicates)))

    def resolve(self, ref: ast.ColumnRef) -> ColumnResolution:
        """SQL-92 column resolution with correlation to outer scopes."""
        depth = 0
        scope: QueryScope | None = self
        while scope is not None:
            matches: list[ColumnResolution] = []
            for leaf in scope.leaf_bindings():
                if ref.qualifier:
                    if not leaf.matches_qualifier(ref.qualifier):
                        continue
                    column = leaf.column(ref.column)
                    if column is None:
                        raise SQLSemanticError(
                            f"column {ref.display()} does not exist in "
                            f"{leaf.binding_name}")
                    matches.append(ColumnResolution(leaf, column, depth))
                else:
                    column = leaf.column(ref.column)
                    if column is not None:
                        matches.append(ColumnResolution(leaf, column, depth))
            if len(matches) > 1:
                raise SQLSemanticError(
                    f"ambiguous column reference {ref.display()}")
            if matches:
                return matches[0]
            scope = scope.parent
            depth += 1
        raise SQLSemanticError(f"unknown column {ref.display()}")
