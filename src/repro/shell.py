"""An interactive SQL shell over a DSP runtime — ``python -m repro``.

The closest thing to pointing a reporting tool at the driver: type
SQL-92, get tabular results. Backslash commands inspect the machinery:

=================  ====================================================
``\\tables``        list SQL-visible tables (Figure-2 mapping)
``\\schema T``      columns of table T
``\\translate SQL`` print the generated XQuery instead of executing
``\\explain SQL``   print the context/RSN report with stage timings
``\\format F``      switch result path: ``delimited`` or ``xml``
``\\timeout S``     per-statement deadline in seconds (``off`` = none)
``\\trace on|off``  print the span tree after each executed query
``\\stats``         print counters, histograms, cache/admission stats
``\\begin``         open an explicit transaction
``\\commit``        commit it
``\\rollback``      roll it back
``\\autocommit X``  ``on`` or ``off`` (the default is on)
``\\connect DSN``   reconnect: ``repro://app/project`` (embedded) or
                   ``repro+tcp://host:port/app/project?token=...``
                   (a remote ``repro.server``)
``\\quit``          leave
=================  ====================================================

Non-interactive: ``python -m repro "SELECT * FROM CUSTOMERS"`` (add
``--translate`` or ``--explain`` for the inspection forms).
"""

from __future__ import annotations

import sys
from typing import Callable, Optional

from .driver import connect
from .engine.dsp import DSPRuntime
from .errors import ReproError
from .translator import explain
from .workloads import build_runtime

PROMPT = "sql> "


def format_table(headers: list[str], rows: list[tuple]) -> str:
    """Fixed-width text rendering of a result set."""
    cells = [[("NULL" if value is None else str(value)) for value in row]
             for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for index, text in enumerate(row):
            widths[index] = max(widths[index], len(text))
    lines = [
        " | ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "-+-".join("-" * w for w in widths),
    ]
    for row in cells:
        lines.append(" | ".join(t.ljust(w) for t, w in zip(row, widths)))
    lines.append(f"({len(rows)} row{'s' if len(rows) != 1 else ''})")
    return "\n".join(lines)


class Shell:
    """One shell session bound to a runtime."""

    def __init__(self, runtime: Optional[DSPRuntime] = None,
                 out: Callable[[str], None] = print):
        self._runtime = runtime or build_runtime()
        self._format = "delimited"
        #: The active connect target: a DSN string after ``\connect``,
        #: else the in-process runtime.
        self._dsn: Optional[str] = None
        self._connection = connect(self._runtime, format=self._format)
        self._out = out

    # -- command dispatch --------------------------------------------------

    def handle(self, line: str) -> bool:
        """Process one input line; returns False when the shell should
        exit."""
        line = line.strip()
        if not line:
            return True
        if line.startswith("\\"):
            return self._command(line)
        self._execute(line)
        return True

    def _command(self, line: str) -> bool:
        name, _, argument = line.partition(" ")
        argument = argument.strip()
        if name in ("\\quit", "\\q"):
            return False
        if name == "\\tables":
            self._tables()
        elif name == "\\schema":
            self._schema(argument)
        elif name == "\\translate":
            self._translate(argument)
        elif name == "\\explain":
            self._explain(argument)
        elif name == "\\format":
            self._set_format(argument)
        elif name == "\\timeout":
            self._set_timeout(argument)
        elif name == "\\trace":
            self._set_trace(argument)
        elif name == "\\stats":
            self._stats()
        elif name == "\\connect":
            self._connect(argument)
        elif name == "\\begin":
            self._txn_command("begin")
        elif name == "\\commit":
            self._txn_command("commit")
        elif name == "\\rollback":
            self._txn_command("rollback")
        elif name == "\\autocommit":
            self._set_autocommit(argument)
        else:
            self._out(f"unknown command {name}; try \\tables, \\schema, "
                      f"\\translate, \\explain, \\format, \\timeout, "
                      f"\\trace, \\stats, \\connect, \\begin, \\commit, "
                      f"\\rollback, \\autocommit, \\quit")
        return True

    # -- command implementations ----------------------------------------------

    def _execute(self, sql: str) -> None:
        try:
            cursor = self._connection.cursor()
            cursor.execute(sql)
            if cursor.description is None:
                # DML: no result set; report the affected-row count the
                # way command-line database shells do.
                count = cursor.rowcount
                self._out(f"OK, {count} row{'s' if count != 1 else ''} "
                          f"affected")
            else:
                headers = [d[0] for d in cursor.description]
                self._out(format_table(headers, cursor.fetchall()))
        except ReproError as exc:
            self._out(f"error: {exc}")
            return
        if self._connection.tracer.enabled:
            root = self._connection.tracer.last_root()
            if root is not None:
                self._out(root.render())

    def _tables(self) -> None:
        for schema, table in self._connection.metadata().tables():
            self._out(f"{schema}.{table}")
        for schema, proc in self._connection.metadata().procedures():
            self._out(f"{schema}.{proc}  (procedure)")

    def _schema(self, table: str) -> None:
        if not table:
            self._out("usage: \\schema TABLE")
            return
        try:
            columns = self._connection.metadata().columns(table)
        except ReproError as exc:
            self._out(f"error: {exc}")
            return
        for name, type_name, position, nullable in columns:
            null = "NULL" if nullable else "NOT NULL"
            self._out(f"{position:>3}  {name}  {type_name}  {null}")

    def _local_only(self, command: str) -> bool:
        """True (and explains why) when *command* needs the in-process
        translator, which a remote connection does not expose."""
        if hasattr(self._connection, "translator"):
            return False
        self._out(f"{command} needs an embedded connection; "
                  f"\\connect repro://app/project to go local")
        return True

    def _translate(self, sql: str) -> None:
        if not sql:
            self._out("usage: \\translate SELECT ...")
            return
        if self._local_only("\\translate"):
            return
        try:
            fmt = "delimited" if self._format == "delimited" \
                else "recordset"
            result = self._connection.translator.translate(sql, format=fmt)
            self._out(result.xquery)
        except ReproError as exc:
            self._out(f"error: {exc}")

    def _explain(self, sql: str) -> None:
        if not sql:
            self._out("usage: \\explain SELECT ...")
            return
        if self._local_only("\\explain"):
            return
        try:
            fmt = "delimited" if self._format == "delimited" \
                else "recordset"
            result = self._connection.translator.translate(sql, format=fmt)
            # The compiled plan (cache-warm after a prior execution)
            # contributes the cost-based pipeline nodes and estimates.
            # Ask the active connection's runtime, which after \connect
            # may not be the one this shell was constructed over.
            runtime = getattr(self._connection, "_runtime", self._runtime)
            plan = runtime.prepare(result.xquery)
            self._out(explain(result.unit,
                              stage_timings=result.stage_timings,
                              plan_reports=plan.plan_reports))
        except ReproError as exc:
            self._out(f"error: {exc}")

    def _set_format(self, fmt: str) -> None:
        if fmt not in ("delimited", "xml"):
            self._out("usage: \\format delimited|xml")
            return
        self._format = fmt
        # Keep the tracer, metrics, and timeout across the reconnect so
        # \trace state, \stats history, and \timeout survive a format
        # switch. The reconnect goes to the active target — the DSN
        # from \connect if one is set, else the in-process runtime.
        old = self._connection
        try:
            self._connection = connect(
                self._dsn or self._runtime, format=fmt,
                tracer=old.tracer,
                metrics=old.metrics,
                default_timeout=old.default_timeout)
        except ReproError as exc:
            self._out(f"error: {exc}")
            return
        old.close()
        self._out(f"result format: {fmt}")

    def _connect(self, dsn: str) -> None:
        if not dsn:
            self._out("usage: \\connect repro://app/project | "
                      "repro+tcp://host:port/app/project?token=...")
            return
        old = self._connection
        try:
            self._connection = connect(
                dsn, format=self._format,
                tracer=old.tracer,
                metrics=old.metrics,
                default_timeout=old.default_timeout)
        except ReproError as exc:
            self._out(f"error: {exc}")
            return
        old.close()
        self._dsn = dsn
        from .driver.dsn import parse_dsn
        self._out(f"connected: {parse_dsn(dsn).display()}")

    def _txn_command(self, verb: str) -> None:
        try:
            getattr(self._connection, verb)()
        except ReproError as exc:
            self._out(f"error: {exc}")
            return
        self._out(f"{verb}: ok")

    def _set_autocommit(self, argument: str) -> None:
        if argument not in ("on", "off"):
            self._out("usage: \\autocommit on|off")
            return
        try:
            self._connection.autocommit = argument == "on"
        except ReproError as exc:
            self._out(f"error: {exc}")
            return
        self._out(f"autocommit: {argument}")

    def _set_timeout(self, argument: str) -> None:
        if argument == "off":
            self._connection.default_timeout = None
            self._out("statement timeout: off")
            return
        try:
            seconds = float(argument)
        except ValueError:
            self._out("usage: \\timeout SECONDS|off")
            return
        if seconds <= 0:
            self._out("usage: \\timeout SECONDS|off")
            return
        self._connection.default_timeout = seconds
        self._out(f"statement timeout: {seconds:g}s")

    def _set_trace(self, argument: str) -> None:
        if argument == "on":
            self._connection.tracer.enable()
            self._out("tracing: on")
        elif argument == "off":
            self._connection.tracer.disable()
            self._out("tracing: off")
        else:
            self._out("usage: \\trace on|off")

    def _stats(self) -> None:
        snapshot = self._connection.stats()
        self._out("COUNTERS")
        for name, value in sorted(snapshot["counters"].items()):
            self._out(f"  {name} = {value}")
        self._out("HISTOGRAMS")
        for name, summary in sorted(snapshot["histograms"].items()):
            if summary["count"] == 0:
                self._out(f"  {name}: no observations")
                continue
            self._out(
                f"  {name}: count={summary['count']} "
                f"mean={summary['mean'] * 1000:.3f}ms "
                f"p50={summary['p50'] * 1000:.3f}ms "
                f"p95={summary['p95'] * 1000:.3f}ms "
                f"max={summary['max'] * 1000:.3f}ms")
        for cache in ("statement_cache", "metadata_cache", "plan_cache"):
            stats = snapshot[cache]
            self._out(f"{cache.upper()}: hits={stats['hits']} "
                      f"misses={stats['misses']} "
                      f"evictions={stats['evictions']} "
                      f"size={stats['size']}/{stats['capacity']}")
        admission = snapshot["admission"]
        self._out(
            f"ADMISSION: active={admission['active']}"
            f"/{admission['max_concurrent']} "
            f"queued={admission['queued']} "
            f"admitted={admission['admitted']} "
            f"rejected={admission['rejected']} "
            f"inflight_rows={admission['inflight_rows']}"
            f"/{admission['max_inflight_rows']}")
        runtime_counters = snapshot["runtime"].get("counters", {})
        retries = runtime_counters.get("source.retries", 0)
        failures = runtime_counters.get("source.failures", 0)
        index_hits = runtime_counters.get("sources.index_hits", 0)
        index_builds = runtime_counters.get("sources.index_builds", 0)
        self._out(f"SOURCES: retries={retries} failures={failures} "
                  f"index_hits={index_hits} index_builds={index_builds}")
        estimated = runtime_counters.get("planner.estimated_rows", 0)
        self._out(f"PLANNER: estimated_rows={estimated}")
        txn = snapshot.get("transactions")
        if txn is not None:
            self._out(
                f"TRANSACTIONS: active={'yes' if txn['active'] else 'no'} "
                f"begun={txn['begun']} committed={txn['committed']} "
                f"rolled_back={txn['rolled_back']} "
                f"autocommits={txn['autocommits']} "
                f"statements={txn['statements']} "
                f"rows_written={txn['rows_written']}")
        server = snapshot.get("server")
        if server is not None:
            quota = server.get("tenant", {})
            self._out(
                f"SERVER: sessions={server.get('sessions', 0)} "
                f"tenant_active={quota.get('active', 0)}"
                f"/{quota.get('max_concurrent')} "
                f"tenant_rejected={quota.get('rejected', 0)}")
        self._out(
            f"PARALLEL: "
            f"queries={runtime_counters.get('parallel.queries', 0)} "
            f"partitions="
            f"{runtime_counters.get('parallel.partitions', 0)} "
            f"workers={runtime_counters.get('parallel.workers', 0)} "
            f"fallbacks="
            f"{runtime_counters.get('parallel.fallbacks', 0)} "
            f"partial_aggs="
            f"{runtime_counters.get('parallel.partial_aggs', 0)}")
        self._out(
            f"AGGREGATION: "
            f"queries={runtime_counters.get('vector.agg_queries', 0)} "
            f"groups={runtime_counters.get('vector.agg_groups', 0)}")

    # -- loops --------------------------------------------------------------

    def run_interactive(self, stdin=None) -> None:
        stdin = stdin or sys.stdin
        self._out("repro SQL shell — \\tables to explore, \\quit to exit")
        while True:
            self._out(PROMPT)
            line = stdin.readline()
            if not line or not self.handle(line):
                return


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    mode = "execute"
    if "--translate" in argv:
        argv.remove("--translate")
        mode = "translate"
    if "--explain" in argv:
        argv.remove("--explain")
        mode = "explain"
    shell = Shell()
    if not argv:
        shell.run_interactive()
        return 0
    sql = " ".join(argv)
    if mode == "translate":
        shell.handle(f"\\translate {sql}")
    elif mode == "explain":
        shell.handle(f"\\explain {sql}")
    else:
        shell.handle(sql)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
