"""repro — SQL to XQuery Translation in the AquaLogic Data Services
Platform (ICDE 2006), reproduced in pure Python.

The public surface is deliberately small — a PEP 249 driver plus the
pluggable physical-source SPI:

* :func:`connect` / :func:`register_runtime` — open DB-API 2.0
  connections over a DSP runtime (the JDBC analogue). One connect API,
  two transports, selected by DSN scheme: ``repro://app/project`` is
  embedded (in-process), ``repro+tcp://host:port/app/project?token=...``
  is remote (a ``repro.server`` instance over the wire) — same cursor
  semantics, same exceptions, same ``stats()`` shape either way;
* :class:`DSN` / :func:`parse_dsn` — the shared DSN grammar;
* ``apilevel`` / ``threadsafety`` / ``paramstyle`` and the PEP 249
  exception hierarchy (:class:`Error`, :class:`OperationalError`, ...);
* :class:`RuntimeConfig` — every engine and driver tuning knob in one
  frozen dataclass, accepted by both ``DSPRuntime(config=...)`` and
  ``connect(config=...)``;
* the sources SPI — :class:`DataSource`, :class:`SourceCapabilities`,
  :class:`ScanRequest`, :class:`Predicate`, :class:`Scan`, and (since
  2.0) the write capability :class:`Mutation` /
  :class:`MutationResult` — and its three backends:
  :class:`TableSource` (in-memory, writable), :class:`SQLiteSource`
  (relational, writable, with predicate/projection pushdown),
  :class:`XMLFileSource` (read-only XML files).

Everything else (the translator, the XQuery engine, storage, the
observability toolkit) lives in its subpackage. 2.0 removed the pre-1.1
top-level aliases that 1.x resolved with a ``DeprecationWarning``;
import those names from their subpackages.

Quickstart::

    import repro
    from repro.workloads import build_runtime

    conn = repro.connect(build_runtime())
    cur = conn.cursor()
    cur.execute("SELECT CUSTOMERNAME FROM CUSTOMERS WHERE CUSTOMERID = ?",
                [23])
    print(cur.fetchall())

    cur.execute("UPDATE CUSTOMERS SET CREDITLIMIT = ? "
                "WHERE CUSTOMERID = ?", [9000, 23])   # autocommit
    conn.autocommit = False
    cur.execute("DELETE FROM CUSTOMERS WHERE REGION = 'EMEA'")
    conn.rollback()                                    # nothing happened
"""

from .config import RuntimeConfig
from .driver import (
    DSN,
    STATS_SCHEMA_VERSION,
    apilevel,
    connect,
    paramstyle,
    parse_dsn,
    register_runtime,
    threadsafety,
    unregister_runtime,
)
from .errors import (
    DataError,
    DatabaseError,
    Error,
    IntegrityError,
    InterfaceError,
    InternalError,
    NotSupportedError,
    OperationalError,
    ProgrammingError,
    ReproError,
    Warning,
)
from .sources import (
    DataSource,
    Mutation,
    MutationResult,
    Predicate,
    Scan,
    ScanRequest,
    SourceCapabilities,
)
from .sources.memory import TableSource
from .sources.sqlite import SQLiteSource
from .sources.xmlfile import XMLFileSource

__version__ = "2.0.0"

__all__ = [
    # driver entry points
    "connect",
    "register_runtime",
    "unregister_runtime",
    # DSN grammar (embedded repro:// and remote repro+tcp://)
    "DSN",
    "parse_dsn",
    # observability contract
    "STATS_SCHEMA_VERSION",
    # PEP 249 module globals
    "apilevel",
    "threadsafety",
    "paramstyle",
    # exception set
    "Warning",
    "Error",
    "InterfaceError",
    "DatabaseError",
    "DataError",
    "OperationalError",
    "IntegrityError",
    "InternalError",
    "ProgrammingError",
    "NotSupportedError",
    "ReproError",
    # configuration
    "RuntimeConfig",
    # sources SPI
    "DataSource",
    "SourceCapabilities",
    "ScanRequest",
    "Predicate",
    "Scan",
    "Mutation",
    "MutationResult",
    "TableSource",
    "SQLiteSource",
    "XMLFileSource",
    "__version__",
]
