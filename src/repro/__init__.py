"""repro — SQL to XQuery Translation in the AquaLogic Data Services
Platform (ICDE 2006), reproduced in pure Python.

The package provides:

* ``repro.translator`` — the paper's core contribution: a three-stage
  SQL-92-to-XQuery translator with typed resultset nodes, query contexts,
  and the section-4 delimited-text result wrapper;
* ``repro.driver`` — a PEP 249 (DB-API 2.0) driver, the JDBC analogue,
  with ``connect(runtime)``;
* ``repro.engine`` — the DSP runtime hosting data services, in-memory
  relational storage, and the reference SQL executor used as the
  correctness oracle;
* ``repro.xquery`` — an XQuery subset engine (FLWOR + BEA group-by
  extension, fn:/xs:/fn-bea: libraries);
* ``repro.catalog`` — applications/projects/data services, XSD row
  schemas, and the remote metadata API with driver-side caching;
* ``repro.xmlmodel`` — the ordered-tree XML data model;
* ``repro.obs`` — observability: nested-span tracing, a metrics
  registry, and the bounded thread-safe LRU behind the driver caches;
* ``repro.workloads`` — demo application, scaling workloads, and the
  random query generator.

Quickstart::

    from repro import connect, build_demo_runtime

    conn = connect(build_demo_runtime())
    cur = conn.cursor()
    cur.execute("SELECT CUSTOMERNAME FROM CUSTOMERS WHERE CUSTOMERID = ?",
                [23])
    print(cur.fetchall())
"""

from .driver import connect, register_runtime, unregister_runtime
from .engine import (
    AdmissionController,
    CancellationToken,
    DSPRuntime,
    FaultProfile,
    QueryContext,
    RetryPolicy,
    SQLExecutor,
    Storage,
    TableProvider,
    install_fault,
)
from .obs import LRUCache, MetricsRegistry, Tracer
from .translator import SQLToXQueryTranslator, TranslationResult
from .workloads import build_runtime as build_demo_runtime
from .xquery import execute_xquery

__version__ = "1.0.0"

__all__ = [
    "AdmissionController",
    "CancellationToken",
    "DSPRuntime",
    "FaultProfile",
    "LRUCache",
    "MetricsRegistry",
    "QueryContext",
    "RetryPolicy",
    "SQLExecutor",
    "SQLToXQueryTranslator",
    "Storage",
    "TableProvider",
    "Tracer",
    "TranslationResult",
    "__version__",
    "build_demo_runtime",
    "connect",
    "execute_xquery",
    "install_fault",
    "register_runtime",
    "translate",
    "unregister_runtime",
]


def translate(sql: str, runtime: DSPRuntime | None = None,
              format: str = "recordset") -> TranslationResult:
    """Translate a SQL-92 SELECT into XQuery against *runtime*'s catalog
    (the demo application when omitted). Convenience wrapper around
    :class:`SQLToXQueryTranslator`."""
    if runtime is None:
        runtime = build_demo_runtime()
    translator = SQLToXQueryTranslator(runtime.metadata_api())
    return translator.translate(sql, format=format)
