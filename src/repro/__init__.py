"""repro — SQL to XQuery Translation in the AquaLogic Data Services
Platform (ICDE 2006), reproduced in pure Python.

The public surface is deliberately small — a PEP 249 driver plus the
pluggable physical-source SPI:

* :func:`connect` / :func:`register_runtime` — open DB-API 2.0
  connections over a DSP runtime (the JDBC analogue). One connect API,
  two transports, selected by DSN scheme: ``repro://app/project`` is
  embedded (in-process), ``repro+tcp://host:port/app/project?token=...``
  is remote (a ``repro.server`` instance over the wire) — same cursor
  semantics, same exceptions, same ``stats()`` shape either way;
* :class:`DSN` / :func:`parse_dsn` — the shared DSN grammar;
* ``apilevel`` / ``threadsafety`` / ``paramstyle`` and the PEP 249
  exception hierarchy (:class:`Error`, :class:`OperationalError`, ...);
* :class:`RuntimeConfig` — every engine and driver tuning knob in one
  frozen dataclass, accepted by both ``DSPRuntime(config=...)`` and
  ``connect(config=...)``;
* the sources SPI — :class:`DataSource`, :class:`SourceCapabilities`,
  :class:`ScanRequest`, :class:`Predicate`, :class:`Scan` — and its
  three backends: :class:`TableSource` (in-memory),
  :class:`SQLiteSource` (relational, with predicate/projection
  pushdown), :class:`XMLFileSource` (read-only XML files).

Everything else (the translator, the XQuery engine, storage, the
observability toolkit) lives in its subpackage; the pre-1.1 top-level
aliases still resolve for one release with a ``DeprecationWarning``.

Quickstart::

    import repro
    from repro.workloads import build_runtime

    conn = repro.connect(build_runtime())
    cur = conn.cursor()
    cur.execute("SELECT CUSTOMERNAME FROM CUSTOMERS WHERE CUSTOMERID = ?",
                [23])
    print(cur.fetchall())
"""

import warnings as _warnings

from .config import RuntimeConfig
from .driver import (
    DSN,
    STATS_SCHEMA_VERSION,
    apilevel,
    connect,
    paramstyle,
    parse_dsn,
    register_runtime,
    threadsafety,
    unregister_runtime,
)
from .errors import (
    DataError,
    DatabaseError,
    Error,
    IntegrityError,
    InterfaceError,
    InternalError,
    NotSupportedError,
    OperationalError,
    ProgrammingError,
    ReproError,
    Warning,
)
from .sources import (
    DataSource,
    Predicate,
    Scan,
    ScanRequest,
    SourceCapabilities,
)
from .sources.memory import TableSource
from .sources.sqlite import SQLiteSource
from .sources.xmlfile import XMLFileSource

__version__ = "1.2.0"

__all__ = [
    # driver entry points
    "connect",
    "register_runtime",
    "unregister_runtime",
    # DSN grammar (embedded repro:// and remote repro+tcp://)
    "DSN",
    "parse_dsn",
    # observability contract
    "STATS_SCHEMA_VERSION",
    # PEP 249 module globals
    "apilevel",
    "threadsafety",
    "paramstyle",
    # exception set
    "Warning",
    "Error",
    "InterfaceError",
    "DatabaseError",
    "DataError",
    "OperationalError",
    "IntegrityError",
    "InternalError",
    "ProgrammingError",
    "NotSupportedError",
    "ReproError",
    # configuration
    "RuntimeConfig",
    # sources SPI
    "DataSource",
    "SourceCapabilities",
    "ScanRequest",
    "Predicate",
    "Scan",
    "TableSource",
    "SQLiteSource",
    "XMLFileSource",
    "__version__",
]


def _translate(sql, runtime=None, format="recordset"):
    from .translator import SQLToXQueryTranslator
    from .workloads import build_runtime

    if runtime is None:
        runtime = build_runtime()
    translator = SQLToXQueryTranslator(runtime.metadata_api())
    return translator.translate(sql, format=format)


def _build_demo_runtime():
    from .workloads import build_runtime

    return build_runtime()


#: Pre-1.1 top-level names and where they live now. Resolved lazily via
#: module ``__getattr__`` with a DeprecationWarning emitted once per
#: name per process (the first access points migrating code at the new
#: home; repeating it for every touch would drown real warnings in any
#: loop over legacy call sites). Deliberately not cached as a module
#: attribute, so the resolution logic stays the single chokepoint.
_LEGACY = {
    "DSPRuntime": ("repro.engine", "DSPRuntime"),
    "Storage": ("repro.engine", "Storage"),
    "SQLExecutor": ("repro.engine", "SQLExecutor"),
    "TableProvider": ("repro.engine", "TableProvider"),
    "QueryContext": ("repro.engine", "QueryContext"),
    "CancellationToken": ("repro.engine", "CancellationToken"),
    "AdmissionController": ("repro.engine", "AdmissionController"),
    "RetryPolicy": ("repro.engine", "RetryPolicy"),
    "FaultProfile": ("repro.engine", "FaultProfile"),
    "install_fault": ("repro.engine", "install_fault"),
    "Tracer": ("repro.obs", "Tracer"),
    "MetricsRegistry": ("repro.obs", "MetricsRegistry"),
    "LRUCache": ("repro.obs", "LRUCache"),
    "SQLToXQueryTranslator": ("repro.translator", "SQLToXQueryTranslator"),
    "TranslationResult": ("repro.translator", "TranslationResult"),
    "execute_xquery": ("repro.xquery", "execute_xquery"),
}

_LEGACY_LOCAL = {
    "translate": _translate,
    "build_demo_runtime": _build_demo_runtime,
}


#: Legacy names that have already warned this process.
_warned_legacy: set = set()


def __getattr__(name):
    if name in _LEGACY:
        module_name, attr = _LEGACY[name]
        if name not in _warned_legacy:
            _warned_legacy.add(name)
            _warnings.warn(
                f"repro.{name} is deprecated; import {attr} from "
                f"{module_name} instead",
                DeprecationWarning, stacklevel=2)
        import importlib

        return getattr(importlib.import_module(module_name), attr)
    if name in _LEGACY_LOCAL:
        if name not in _warned_legacy:
            _warned_legacy.add(name)
            _warnings.warn(
                f"repro.{name} is deprecated; see the module docstring "
                f"for the supported entry points",
                DeprecationWarning, stacklevel=2)
        return _LEGACY_LOCAL[name]
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
