"""A process-wide clock for the niladic datetime functions.

SQL's CURRENT_DATE/CURRENT_TIME/CURRENT_TIMESTAMP and XQuery's
fn:current-date()/fn:current-time()/fn:current-dateTime() must agree when
the reference executor is used as a correctness oracle for translated
queries, so both read this clock. Tests pin it with ``set_fixed``.
"""

from __future__ import annotations

import datetime
import time
from typing import Callable

_fixed: datetime.datetime | None = None
_monotonic_source: Callable[[], float] | None = None


def set_fixed(moment: datetime.datetime | None) -> None:
    """Pin the clock to *moment* (or unpin with None)."""
    global _fixed
    _fixed = moment


def now() -> datetime.datetime:
    if _fixed is not None:
        return _fixed
    return datetime.datetime.now()


def today() -> datetime.date:
    return now().date()


def current_time() -> datetime.time:
    return now().time().replace(microsecond=0)


def set_monotonic(source: Callable[[], float] | None) -> None:
    """Install a deterministic tick source for span timings (or unpin
    with None). Used by the observability tests."""
    global _monotonic_source
    _monotonic_source = source


def monotonic() -> float:
    """The timestamp source for repro.obs spans and stage timings:
    ``time.perf_counter`` unless a test installed a fake ticker."""
    if _monotonic_source is not None:
        return _monotonic_source()
    return time.perf_counter()
