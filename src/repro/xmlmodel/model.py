"""The XML node model underlying the XQuery data model.

The XQuery data model is based on ordered trees (paper section 2.1). We
implement the node kinds the AquaLogic translation pipeline needs: document,
element, attribute, and text nodes. Elements carry an optional *type
annotation* — the name of the XML Schema simple type of their content — which
the DSP runtime sets when a physical data service materializes rows from a
typed source. Untyped (constructor-built) elements atomize to untyped
atomics.

NULL representation
-------------------
A SQL NULL column value is represented as an element that is present but has
no children (``<PAYMENT/>``). Atomizing such an element yields the *empty
sequence*, matching the schema-aware (nillable) behaviour of the AquaLogic
engine and giving end-to-end NULL propagation through nested views. This is
the one deliberate deviation from vanilla XQuery 1.0 untyped-data semantics
(which would yield a zero-length string) and is documented in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Union

from .names import QName

#: Atomic content values that may appear as typed element content.
AtomicContent = Union[str, int, float, bool]


@dataclass
class Text:
    """A text node."""

    value: str

    def string_value(self) -> str:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Text({self.value!r})"


@dataclass
class Attribute:
    """An attribute node (name/value; attributes are unordered)."""

    name: QName
    value: str

    def string_value(self) -> str:
        return self.value


@dataclass
class Element:
    """An element node: a QName, attributes, and an ordered child list.

    ``type_annotation`` is the local name of the ``xs:`` simple type of the
    element's content (e.g. ``"integer"``), or None for untyped elements.
    """

    name: QName
    attributes: list[Attribute] = field(default_factory=list)
    children: list[Union["Element", Text]] = field(default_factory=list)
    type_annotation: str | None = None

    def string_value(self) -> str:
        """Concatenated string value of all descendant text nodes."""
        parts: list[str] = []
        for child in self.children:
            parts.append(child.string_value())
        return "".join(parts)

    def child_elements(self, local: str | None = None) -> Iterator["Element"]:
        """Iterate child elements, optionally filtered by local name.

        Name matching is by local name only: the translator's generated
        paths (``$var/CUSTOMERID``) address children of schema-imported
        elements whose children are in no namespace, and the RECORD trees it
        builds are namespace-free, so local-name matching is the correct and
        convenient rule for this dialect.
        """
        for child in self.children:
            if isinstance(child, Element):
                if local is None or child.name.local == local:
                    yield child

    def attribute(self, local: str) -> Attribute | None:
        for attr in self.attributes:
            if attr.name.local == local:
                return attr
        return None

    def append(self, node: Union["Element", Text]) -> None:
        self.children.append(node)

    def is_empty(self) -> bool:
        """True when the element has no children (the SQL NULL encoding)."""
        return not self.children

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Element(<{self.name.lexical}> {len(self.children)} children)"


@dataclass
class Document:
    """A document node wrapping a sequence of top-level children."""

    children: list[Union[Element, Text]] = field(default_factory=list)

    def string_value(self) -> str:
        return "".join(child.string_value() for child in self.children)

    def root(self) -> Element:
        """The single root element; raises ValueError if absent."""
        roots = [c for c in self.children if isinstance(c, Element)]
        if len(roots) != 1:
            raise ValueError(f"document has {len(roots)} root elements")
        return roots[0]


Node = Union[Document, Element, Attribute, Text]


def element(name: str, *children: Union[Element, Text, str],
            uri: str = "", prefix: str = "",
            type_annotation: str | None = None) -> Element:
    """Convenience constructor: build an element from name and children.

    Plain strings become text nodes. Intended for tests and examples.
    """
    elem = Element(QName(name, uri, prefix), type_annotation=type_annotation)
    for child in children:
        if isinstance(child, str):
            elem.append(Text(child))
        else:
            elem.append(child)
    return elem


def deep_equal(a: Node | str, b: Node | str) -> bool:
    """Structural equality of two nodes, per fn:deep-equal.

    Compares expanded names, attribute sets, and ordered child sequences.
    Text content is compared as strings. Type annotations are ignored, as in
    fn:deep-equal over untyped comparison.
    """
    if isinstance(a, str) or isinstance(b, str):
        return isinstance(a, str) and isinstance(b, str) and a == b
    if isinstance(a, Text) or isinstance(b, Text):
        return (isinstance(a, Text) and isinstance(b, Text)
                and a.value == b.value)
    if isinstance(a, Attribute) or isinstance(b, Attribute):
        return (isinstance(a, Attribute) and isinstance(b, Attribute)
                and a.name == b.name and a.value == b.value)
    if isinstance(a, Document) or isinstance(b, Document):
        if not (isinstance(a, Document) and isinstance(b, Document)):
            return False
        return _children_equal(a.children, b.children)
    assert isinstance(a, Element) and isinstance(b, Element)
    if a.name != b.name:
        return False
    if len(a.attributes) != len(b.attributes):
        return False
    b_attrs = {(attr.name.uri, attr.name.local): attr.value
               for attr in b.attributes}
    for attr in a.attributes:
        if b_attrs.get((attr.name.uri, attr.name.local)) != attr.value:
            return False
    return _children_equal(a.children, b.children)


def _children_equal(xs: Iterable[Element | Text], ys: Iterable[Element | Text]) -> bool:
    xs = _merge_text(list(xs))
    ys = _merge_text(list(ys))
    if len(xs) != len(ys):
        return False
    return all(deep_equal(x, y) for x, y in zip(xs, ys))


def _merge_text(children: list[Element | Text]) -> list[Element | Text]:
    """Normalize a child list by merging adjacent text nodes."""
    merged: list[Element | Text] = []
    for child in children:
        if (isinstance(child, Text) and merged
                and isinstance(merged[-1], Text)):
            merged[-1] = Text(merged[-1].value + child.value)
        else:
            merged.append(child)
    return [c for c in merged if not (isinstance(c, Text) and c.value == "")]


def copy_node(node: Element | Text) -> Element | Text:
    """Deep-copy a node (used by element constructors in the evaluator)."""
    if isinstance(node, Text):
        return Text(node.value)
    clone = Element(node.name, type_annotation=node.type_annotation)
    clone.attributes = [Attribute(a.name, a.value) for a in node.attributes]
    clone.children = [copy_node(c) for c in node.children]
    return clone
