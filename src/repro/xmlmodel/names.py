"""Qualified names (QNames) for the XML data model.

The XQuery data model identifies elements and attributes by expanded names:
a (namespace URI, local name) pair, optionally carrying the lexical prefix
used in the source document. Two QNames are equal when their URI and local
name are equal; the prefix is presentation only.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

_NCNAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_.\-]*$")


def is_ncname(text: str) -> bool:
    """Return True if *text* is a valid NCName (no-colon XML name).

    We accept the pragmatic ASCII subset used throughout the paper's
    examples (letters, digits, ``_``, ``-``, ``.``; the name must not start
    with a digit, ``-`` or ``.``).
    """
    return bool(_NCNAME_RE.match(text))


@dataclass(frozen=True)
class QName:
    """An expanded XML name: (namespace URI, local part) plus lexical prefix.

    ``uri`` is the empty string for names in no namespace. ``prefix`` takes
    part in serialization but not in equality or hashing.
    """

    local: str
    uri: str = ""
    prefix: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if not self.local:
            raise ValueError("QName local part must be non-empty")

    @property
    def lexical(self) -> str:
        """The prefixed lexical form, e.g. ``ns0:CUSTOMERS``."""
        if self.prefix:
            return f"{self.prefix}:{self.local}"
        return self.local

    @classmethod
    def parse(cls, lexical: str, namespaces: dict[str, str] | None = None) -> "QName":
        """Parse a lexical QName, resolving its prefix via *namespaces*.

        *namespaces* maps prefixes to URIs; the empty-string key supplies
        the default element namespace. An unknown prefix raises KeyError.
        """
        namespaces = namespaces or {}
        if ":" in lexical:
            prefix, local = lexical.split(":", 1)
            return cls(local=local, uri=namespaces[prefix], prefix=prefix)
        return cls(local=lexical, uri=namespaces.get("", ""))

    def __str__(self) -> str:  # pragma: no cover - display helper
        return self.lexical
