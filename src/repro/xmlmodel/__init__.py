"""XML data model substrate (S1 in DESIGN.md).

Ordered-tree XML infoset with QNames, optional simple-type annotations,
well-formed parsing, escaping, and serialization. This is the data model
the XQuery engine (``repro.xquery``) evaluates over and the driver's XML
result path parses.
"""

from .escape import escape_attribute, escape_text, unescape
from .model import (
    Attribute,
    Document,
    Element,
    Node,
    Text,
    copy_node,
    deep_equal,
    element,
)
from .names import QName, is_ncname
from .parser import parse_document, parse_element, parse_fragment
from .serializer import serialize, serialize_sequence

__all__ = [
    "Attribute",
    "Document",
    "Element",
    "Node",
    "QName",
    "Text",
    "copy_node",
    "deep_equal",
    "element",
    "escape_attribute",
    "escape_text",
    "is_ncname",
    "parse_document",
    "parse_element",
    "parse_fragment",
    "serialize",
    "serialize_sequence",
    "unescape",
]
