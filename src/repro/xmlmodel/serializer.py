"""Serialization of XML node trees to text.

Used by the driver's XML result path (materialize `<RECORDSET>` trees and
re-parse them client-side, the configuration the paper found slow) and by
debugging/pretty-printing helpers.
"""

from __future__ import annotations

from io import StringIO
from typing import Union

from .escape import escape_attribute, escape_text
from .model import Attribute, Document, Element, Text


def serialize(node: Union[Document, Element, Text, Attribute],
              indent: int | None = None) -> str:
    """Serialize *node* to a string.

    With ``indent=None`` (default) the output is compact, with no
    whitespace between tags — the on-the-wire form. With an integer
    ``indent`` the output is pretty-printed for human consumption.
    """
    out = StringIO()
    _write(node, out, indent, 0)
    return out.getvalue()


def serialize_sequence(nodes: list[Union[Element, Text]],
                       indent: int | None = None) -> str:
    """Serialize a sequence of sibling nodes (an XQuery result sequence)."""
    out = StringIO()
    for i, node in enumerate(nodes):
        if indent is not None and i:
            out.write("\n")
        _write(node, out, indent, 0)
    return out.getvalue()


def _write(node: Union[Document, Element, Text, Attribute],
           out: StringIO, indent: int | None, depth: int) -> None:
    if isinstance(node, Document):
        for i, child in enumerate(node.children):
            if indent is not None and i:
                out.write("\n")
            _write(child, out, indent, depth)
        return
    if isinstance(node, Text):
        out.write(escape_text(node.value))
        return
    if isinstance(node, Attribute):
        out.write(f'{node.name.lexical}="{escape_attribute(node.value)}"')
        return
    _write_element(node, out, indent, depth)


def _write_element(elem: Element, out: StringIO,
                   indent: int | None, depth: int) -> None:
    pad = "" if indent is None else " " * (indent * depth)
    out.write(f"{pad}<{elem.name.lexical}")
    for attr in elem.attributes:
        out.write(" ")
        _write(attr, out, None, depth)
    if not elem.children:
        out.write("/>")
        return
    out.write(">")
    text_only = all(isinstance(c, Text) for c in elem.children)
    if indent is None or text_only:
        for child in elem.children:
            _write(child, out, None, depth)
        out.write(f"</{elem.name.lexical}>")
        return
    for child in elem.children:
        out.write("\n")
        if isinstance(child, Text):
            out.write(" " * (indent * (depth + 1)))
            out.write(escape_text(child.value))
        else:
            _write_element(child, out, indent, depth + 1)
    out.write(f"\n{pad}</{elem.name.lexical}>")
