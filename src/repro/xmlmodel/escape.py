"""XML character escaping and unescaping.

These are the primitives behind both the XML serializer and the
``fn-bea:xml-escape`` function the paper's result-wrapper queries use.
"""

from __future__ import annotations

import re

from ..errors import XMLParseError

_ESCAPES = {
    "&": "&amp;",
    "<": "&lt;",
    ">": "&gt;",
}
_ATTR_ESCAPES = {**_ESCAPES, '"': "&quot;"}

_NAMED_ENTITIES = {
    "amp": "&",
    "lt": "<",
    "gt": ">",
    "quot": '"',
    "apos": "'",
}

_ENTITY_RE = re.compile(r"&(#x[0-9A-Fa-f]+|#[0-9]+|[A-Za-z]+);")


def escape_text(text: str) -> str:
    """Escape character data for use as element content."""
    if "&" not in text and "<" not in text and ">" not in text:
        return text
    return "".join(_ESCAPES.get(ch, ch) for ch in text)


def escape_attribute(text: str) -> str:
    """Escape character data for use inside a double-quoted attribute."""
    if "&" not in text and "<" not in text and ">" not in text \
            and '"' not in text:
        return text
    return "".join(_ATTR_ESCAPES.get(ch, ch) for ch in text)


def unescape(text: str) -> str:
    """Replace entity and character references with their characters."""

    def _sub(match: re.Match[str]) -> str:
        body = match.group(1)
        if body.startswith("#x") or body.startswith("#X"):
            return chr(int(body[2:], 16))
        if body.startswith("#"):
            return chr(int(body[1:]))
        try:
            return _NAMED_ENTITIES[body]
        except KeyError:
            raise XMLParseError(f"unknown entity reference &{body};") from None

    return _ENTITY_RE.sub(_sub, text)
