"""A small, namespace-aware XML parser for the model in this package.

The driver's XML result path parses ``<RECORDSET>`` documents coming back
from the server, so the parser needs to be correct for the XML subset the
engine emits: elements, attributes, namespace declarations, character data
with entity references, CDATA sections, comments, and processing
instructions. DTDs are not supported (the data services world is
XML-Schema-typed, not DTD-typed).
"""

from __future__ import annotations

import re

from ..errors import XMLParseError
from .escape import unescape
from .model import Attribute, Document, Element, Text
from .names import QName

_NAME_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_.\-]*(:[A-Za-z_][A-Za-z0-9_.\-]*)?")
_WS_RE = re.compile(r"[ \t\r\n]+")


class _Scanner:
    """Cursor over the input text with error-position reporting."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    def eof(self) -> bool:
        return self.pos >= len(self.text)

    def peek(self, n: int = 1) -> str:
        return self.text[self.pos:self.pos + n]

    def advance(self, n: int = 1) -> str:
        chunk = self.text[self.pos:self.pos + n]
        self.pos += n
        return chunk

    def expect(self, literal: str) -> None:
        if not self.text.startswith(literal, self.pos):
            raise XMLParseError(f"expected {literal!r}", self.pos)
        self.pos += len(literal)

    def skip_ws(self) -> None:
        match = _WS_RE.match(self.text, self.pos)
        if match:
            self.pos = match.end()

    def name(self) -> str:
        match = _NAME_RE.match(self.text, self.pos)
        if not match:
            raise XMLParseError("expected an XML name", self.pos)
        self.pos = match.end()
        return match.group(0)


def parse_document(text: str) -> Document:
    """Parse *text* into a Document with a single root element."""
    scanner = _Scanner(text)
    _skip_misc(scanner)
    root = _parse_element(scanner, namespaces={"": ""})
    _skip_misc(scanner)
    if not scanner.eof():
        raise XMLParseError("content after document root", scanner.pos)
    return Document(children=[root])


def parse_element(text: str) -> Element:
    """Parse a single element (fragment parse; convenience for tests)."""
    return parse_document(text).root()


def parse_fragment(text: str) -> list[Element | Text]:
    """Parse a sequence of sibling elements and text (an XQuery result)."""
    scanner = _Scanner(text)
    children = _parse_content(scanner, namespaces={"": ""}, closing=None)
    if not scanner.eof():
        raise XMLParseError("unparsed trailing content", scanner.pos)
    return children


def _skip_misc(scanner: _Scanner) -> None:
    """Skip whitespace, comments, PIs and the XML declaration."""
    while True:
        scanner.skip_ws()
        if scanner.peek(4) == "<!--":
            _skip_comment(scanner)
        elif scanner.peek(2) == "<?":
            _skip_pi(scanner)
        else:
            return


def _skip_comment(scanner: _Scanner) -> None:
    end = scanner.text.find("-->", scanner.pos + 4)
    if end < 0:
        raise XMLParseError("unterminated comment", scanner.pos)
    scanner.pos = end + 3


def _skip_pi(scanner: _Scanner) -> None:
    end = scanner.text.find("?>", scanner.pos + 2)
    if end < 0:
        raise XMLParseError("unterminated processing instruction", scanner.pos)
    scanner.pos = end + 2


def _parse_element(scanner: _Scanner, namespaces: dict[str, str]) -> Element:
    scanner.expect("<")
    tag = scanner.name()
    raw_attrs: list[tuple[str, str]] = []
    while True:
        scanner.skip_ws()
        if scanner.peek(2) == "/>":
            scanner.advance(2)
            return _build_element(tag, raw_attrs, [], namespaces, scanner)
        if scanner.peek() == ">":
            scanner.advance()
            break
        attr_name = scanner.name()
        scanner.skip_ws()
        scanner.expect("=")
        scanner.skip_ws()
        raw_attrs.append((attr_name, _parse_attr_value(scanner)))
    scope = _extend_namespaces(namespaces, raw_attrs)
    children = _parse_content(scanner, scope, closing=tag)
    return _build_element(tag, raw_attrs, children, namespaces, scanner)


def _parse_attr_value(scanner: _Scanner) -> str:
    quote = scanner.advance()
    if quote not in ('"', "'"):
        raise XMLParseError("expected quoted attribute value", scanner.pos - 1)
    end = scanner.text.find(quote, scanner.pos)
    if end < 0:
        raise XMLParseError("unterminated attribute value", scanner.pos)
    raw = scanner.text[scanner.pos:end]
    scanner.pos = end + 1
    return unescape(raw)


def _extend_namespaces(namespaces: dict[str, str],
                       raw_attrs: list[tuple[str, str]]) -> dict[str, str]:
    scope = namespaces
    for name, value in raw_attrs:
        if name == "xmlns":
            scope = {**scope, "": value}
        elif name.startswith("xmlns:"):
            scope = {**scope, name[6:]: value}
    return scope


def _build_element(tag: str, raw_attrs: list[tuple[str, str]],
                   children: list[Element | Text],
                   outer_namespaces: dict[str, str],
                   scanner: _Scanner) -> Element:
    scope = _extend_namespaces(outer_namespaces, raw_attrs)
    try:
        name = QName.parse(tag, scope)
    except KeyError as exc:
        raise XMLParseError(f"undeclared namespace prefix in <{tag}>",
                            scanner.pos) from exc
    attributes = []
    for attr_name, value in raw_attrs:
        if attr_name == "xmlns" or attr_name.startswith("xmlns:"):
            continue
        if ":" in attr_name:
            try:
                qname = QName.parse(attr_name, scope)
            except KeyError as exc:
                raise XMLParseError(
                    f"undeclared namespace prefix in @{attr_name}",
                    scanner.pos) from exc
        else:
            # Unprefixed attributes are in no namespace, not the default one.
            qname = QName(attr_name)
        attributes.append(Attribute(qname, value))
    return Element(name, attributes=attributes, children=children)


def _parse_content(scanner: _Scanner, namespaces: dict[str, str],
                   closing: str | None) -> list[Element | Text]:
    children: list[Element | Text] = []
    buffer: list[str] = []

    def flush_text() -> None:
        if buffer:
            children.append(Text(unescape("".join(buffer))))
            buffer.clear()

    while True:
        if scanner.eof():
            if closing is None:
                flush_text()
                return children
            raise XMLParseError(f"unterminated element <{closing}>",
                                scanner.pos)
        ch = scanner.peek()
        if ch == "<":
            if scanner.peek(4) == "<!--":
                flush_text()
                _skip_comment(scanner)
            elif scanner.peek(9) == "<![CDATA[":
                end = scanner.text.find("]]>", scanner.pos + 9)
                if end < 0:
                    raise XMLParseError("unterminated CDATA", scanner.pos)
                buffer.append(scanner.text[scanner.pos + 9:end])
                scanner.pos = end + 3
            elif scanner.peek(2) == "<?":
                flush_text()
                _skip_pi(scanner)
            elif scanner.peek(2) == "</":
                flush_text()
                if closing is None:
                    raise XMLParseError("unexpected close tag", scanner.pos)
                scanner.advance(2)
                tag = scanner.name()
                if tag != closing:
                    raise XMLParseError(
                        f"mismatched close tag </{tag}>, expected "
                        f"</{closing}>", scanner.pos)
                scanner.skip_ws()
                scanner.expect(">")
                return children
            else:
                flush_text()
                children.append(_parse_element(scanner, namespaces))
        else:
            buffer.append(scanner.advance())
