"""Render SQL ASTs back to SQL-92 text.

Used for debugging, error messages, and the parser round-trip property
tests (parse → print → parse must reach a fixed point).
"""

from __future__ import annotations

import datetime
from decimal import Decimal

from . import ast
from .tokens import RESERVED_WORDS
from .types import SQLType


def print_query(query: ast.Query) -> str:
    parts = [print_body(query.body)]
    if query.order_by:
        keys = ", ".join(_sort_item(item) for item in query.order_by)
        parts.append(f"ORDER BY {keys}")
    if query.limit is not None:
        parts.append(f"LIMIT {query.limit}")
    if query.offset is not None:
        parts.append(f"OFFSET {query.offset}")
    return " ".join(parts)


def print_body(body: ast.QueryBody) -> str:
    if isinstance(body, ast.SetOp):
        left = print_body(body.left)
        right = print_body(body.right)
        if isinstance(body.right, ast.SetOp):
            right = f"({right})"
        all_kw = " ALL" if body.all else ""
        return f"{left} {body.op}{all_kw} {right}"
    return _select(body)


def _select(select: ast.Select) -> str:
    parts = ["SELECT"]
    if select.distinct:
        parts.append("DISTINCT")
    parts.append(", ".join(_select_item(item) for item in select.items))
    parts.append("FROM")
    parts.append(", ".join(_table(t) for t in select.from_clause))
    if select.where is not None:
        parts.append(f"WHERE {print_expr(select.where)}")
    if select.group_by:
        keys = ", ".join(print_expr(e) for e in select.group_by)
        parts.append(f"GROUP BY {keys}")
    if select.having is not None:
        parts.append(f"HAVING {print_expr(select.having)}")
    return " ".join(parts)


def _select_item(item: ast.SelectItem | ast.StarItem) -> str:
    if isinstance(item, ast.StarItem):
        if item.qualifier:
            return ".".join(_ident(p) for p in item.qualifier) + ".*"
        return "*"
    text = print_expr(item.expr)
    if item.alias:
        return f"{text} AS {_ident(item.alias)}"
    return text


def _sort_item(item: ast.SortItem) -> str:
    key = str(item.key) if isinstance(item.key, int) else print_expr(item.key)
    return key if item.ascending else f"{key} DESC"


def _table(table: ast.TableExpr) -> str:
    if isinstance(table, ast.TableRef):
        parts = [p for p in (table.catalog, table.schema, table.name) if p]
        text = ".".join(_ident(p) for p in parts)
        if table.alias:
            text += f" AS {_ident(table.alias)}"
        if table.column_aliases:
            cols = ", ".join(_ident(c) for c in table.column_aliases)
            text += f" ({cols})"
        return text
    if isinstance(table, ast.DerivedTable):
        text = f"({print_query(table.query)}) AS {_ident(table.alias)}"
        if table.column_aliases:
            cols = ", ".join(_ident(c) for c in table.column_aliases)
            text += f" ({cols})"
        return text
    assert isinstance(table, ast.Join)
    left = _table(table.left)
    right = _table(table.right)
    if isinstance(table.right, ast.Join):
        right = f"({right})"
    natural = "NATURAL " if table.natural else ""
    if table.kind == "CROSS":
        text = f"{left} CROSS JOIN {right}"
    elif table.kind == "INNER":
        text = f"{left} {natural}INNER JOIN {right}"
    else:
        text = f"{left} {natural}{table.kind} OUTER JOIN {right}"
    if table.condition is not None:
        text += f" ON {print_expr(table.condition)}"
    elif table.using:
        cols = ", ".join(_ident(c) for c in table.using)
        text += f" USING ({cols})"
    return text


def _ident(name: str) -> str:
    """Quote an identifier when it is not a regular SQL identifier."""
    if (name.isidentifier() and name == name.upper()
            and name not in RESERVED_WORDS):
        return name
    escaped = name.replace('"', '""')
    return f'"{escaped}"'


_PRECEDENCE = {
    "OR": 1,
    "AND": 2,
    "NOT": 3,
    "CMP": 4,
    "+": 5,
    "-": 5,
    "||": 5,
    "*": 6,
    "/": 6,
    "UNARY": 7,
}


def print_expr(expr: ast.Expr, parent_prec: int = 0) -> str:
    text, prec = _expr(expr)
    if prec < parent_prec:
        return f"({text})"
    return text


def _literal(value: object, sql_type: SQLType) -> str:
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    if isinstance(value, datetime.datetime):
        return f"TIMESTAMP '{value.isoformat(sep=' ')}'"
    if isinstance(value, datetime.date):
        return f"DATE '{value.isoformat()}'"
    if isinstance(value, datetime.time):
        return f"TIME '{value.isoformat()}'"
    if isinstance(value, Decimal):
        text = str(value)
        return text if "." in text else text + ".0"
    if isinstance(value, float):
        return repr(value) if "e" in repr(value) or "E" in repr(value) \
            else f"{value!r}E0"
    return str(value)


def _expr(expr: ast.Expr) -> tuple[str, int]:
    atom = 100
    if isinstance(expr, ast.Literal):
        return _literal(expr.value, expr.type), atom
    if isinstance(expr, ast.NullLiteral):
        return "NULL", atom
    if isinstance(expr, ast.Parameter):
        return "?", atom
    if isinstance(expr, ast.ColumnRef):
        parts = expr.qualifier + (expr.column,)
        return ".".join(_ident(p) for p in parts), atom
    if isinstance(expr, ast.UnaryOp):
        prec = _PRECEDENCE["UNARY"]
        return f"{expr.op}{print_expr(expr.operand, prec)}", prec
    if isinstance(expr, ast.BinaryOp):
        prec = _PRECEDENCE[expr.op]
        left = print_expr(expr.left, prec)
        right = print_expr(expr.right, prec + 1)
        return f"{left} {expr.op} {right}", prec
    if isinstance(expr, ast.FunctionCall):
        return _function_call(expr), atom
    if isinstance(expr, ast.AggregateCall):
        if expr.star:
            return "COUNT(*)", atom
        distinct = "DISTINCT " if expr.distinct else ""
        return f"{expr.func}({distinct}{print_expr(expr.arg)})", atom
    if isinstance(expr, ast.CaseExpr):
        parts = ["CASE"]
        if expr.operand is not None:
            parts.append(print_expr(expr.operand))
        for when, then in expr.whens:
            parts.append(f"WHEN {print_expr(when)} THEN {print_expr(then)}")
        if expr.else_ is not None:
            parts.append(f"ELSE {print_expr(expr.else_)}")
        parts.append("END")
        return " ".join(parts), atom
    if isinstance(expr, ast.Cast):
        return f"CAST({print_expr(expr.operand)} AS {expr.target})", atom
    if isinstance(expr, ast.ExtractExpr):
        return f"EXTRACT({expr.field} FROM {print_expr(expr.source)})", atom
    if isinstance(expr, ast.TrimExpr):
        inner = expr.mode
        if expr.chars is not None:
            inner += f" {print_expr(expr.chars)}"
        inner += f" FROM {print_expr(expr.source)}"
        return f"TRIM({inner})", atom
    if isinstance(expr, ast.ScalarSubquery):
        return f"({print_query(expr.query)})", atom
    if isinstance(expr, ast.Comparison):
        prec = _PRECEDENCE["CMP"]
        left = print_expr(expr.left, prec + 1)
        right = print_expr(expr.right, prec + 1)
        return f"{left} {expr.op} {right}", prec
    if isinstance(expr, ast.QuantifiedComparison):
        prec = _PRECEDENCE["CMP"]
        left = print_expr(expr.left, prec + 1)
        return (f"{left} {expr.op} {expr.quantifier} "
                f"({print_query(expr.query)})", prec)
    if isinstance(expr, ast.IsNull):
        prec = _PRECEDENCE["CMP"]
        not_kw = " NOT" if expr.negated else ""
        return f"{print_expr(expr.operand, prec + 1)} IS{not_kw} NULL", prec
    if isinstance(expr, ast.Between):
        prec = _PRECEDENCE["CMP"]
        not_kw = "NOT " if expr.negated else ""
        return (f"{print_expr(expr.operand, prec + 1)} {not_kw}BETWEEN "
                f"{print_expr(expr.low, prec + 1)} AND "
                f"{print_expr(expr.high, prec + 1)}", prec)
    if isinstance(expr, ast.InList):
        prec = _PRECEDENCE["CMP"]
        not_kw = "NOT " if expr.negated else ""
        items = ", ".join(print_expr(i) for i in expr.items)
        return (f"{print_expr(expr.operand, prec + 1)} {not_kw}IN ({items})",
                prec)
    if isinstance(expr, ast.InSubquery):
        prec = _PRECEDENCE["CMP"]
        not_kw = "NOT " if expr.negated else ""
        return (f"{print_expr(expr.operand, prec + 1)} {not_kw}IN "
                f"({print_query(expr.query)})", prec)
    if isinstance(expr, ast.Like):
        prec = _PRECEDENCE["CMP"]
        not_kw = "NOT " if expr.negated else ""
        text = (f"{print_expr(expr.operand, prec + 1)} {not_kw}LIKE "
                f"{print_expr(expr.pattern, prec + 1)}")
        if expr.escape is not None:
            text += f" ESCAPE {print_expr(expr.escape, prec + 1)}"
        return text, prec
    if isinstance(expr, ast.Exists):
        return f"EXISTS ({print_query(expr.query)})", atom
    if isinstance(expr, ast.Not):
        prec = _PRECEDENCE["NOT"]
        return f"NOT {print_expr(expr.operand, prec)}", prec
    if isinstance(expr, ast.And):
        prec = _PRECEDENCE["AND"]
        left = print_expr(expr.left, prec)
        right = print_expr(expr.right, prec + 1)
        return f"{left} AND {right}", prec
    if isinstance(expr, ast.Or):
        prec = _PRECEDENCE["OR"]
        left = print_expr(expr.left, prec)
        right = print_expr(expr.right, prec + 1)
        return f"{left} OR {right}", prec
    raise TypeError(f"cannot print expression {expr!r}")


def _function_call(call: ast.FunctionCall) -> str:
    if call.name == "SUBSTRING":
        parts = [print_expr(call.args[0]), "FROM", print_expr(call.args[1])]
        if len(call.args) == 3:
            parts.extend(["FOR", print_expr(call.args[2])])
        return f"SUBSTRING({' '.join(parts)})"
    if call.name == "POSITION":
        return (f"POSITION({print_expr(call.args[0])} IN "
                f"{print_expr(call.args[1])})")
    if not call.args and call.name.startswith("CURRENT_"):
        return call.name
    args = ", ".join(print_expr(a) for a in call.args)
    return f"{call.name}({args})"
