"""Recursive-descent parser for SQL-92 SELECT statements (stage one).

The parser performs the syntactic half of the paper's stage one: "The input
SQL query is verified for syntactical correctness, and syntactically
invalid SQL is rejected immediately. The result of the first stage of
translation is an abstract syntax tree representing the input SQL query."

Grammar coverage (see DESIGN.md section 5 for the full list): query
expressions with UNION/INTERSECT/EXCEPT [ALL], SELECT [DISTINCT], derived
tables, the five join flavors with ON/USING/NATURAL, WHERE/GROUP BY/HAVING/
ORDER BY, all SQL-92 predicate forms, CASE/CAST/EXTRACT/TRIM/SUBSTRING/
POSITION special syntax, datetime literals, and ``?`` parameter markers.
"""

from __future__ import annotations

import datetime
from decimal import Decimal

from ..errors import SQLSyntaxError
from . import ast
from .lexer import tokenize
from .tokens import Token, TokenType
from .types import (
    DATE,
    DOUBLE,
    INTEGER,
    TIME,
    TIMESTAMP,
    VARCHAR,
    SQLType,
    type_from_name,
)

#: Set functions recognized in a select list or expression.
AGGREGATE_NAMES = frozenset({"COUNT", "SUM", "AVG", "MIN", "MAX"})

_COMPARISON_OPS = ("=", "<>", "!=", "<", "<=", ">", ">=")

_EXTRACT_FIELDS = frozenset({
    "YEAR", "MONTH", "DAY", "HOUR", "MINUTE", "SECOND",
})


#: Leading keywords that select the DML grammar over the query grammar.
DML_KEYWORDS = frozenset({"INSERT", "UPDATE", "DELETE"})

_FIRST_WORD_RE = None  # built lazily; regex import kept out of hot path


def is_mutation(text: str) -> bool:
    """Cheap syntactic peek: does *text* start with a DML keyword?

    Used by the driver to pick the write path without tokenizing twice;
    a false positive simply reaches the DML parser's real error."""
    global _FIRST_WORD_RE
    if _FIRST_WORD_RE is None:
        import re

        _FIRST_WORD_RE = re.compile(r"\s*([A-Za-z_][A-Za-z_0-9]*)")
    match = _FIRST_WORD_RE.match(text or "")
    return bool(match) and match.group(1).upper() in DML_KEYWORDS


def parse_statement(text: str) -> ast.Query:
    """Parse a complete SQL SELECT statement into a Query AST."""
    parser = Parser(text)
    query = parser.parse_query(top_level=True)
    parser.expect_eof()
    return query


def parse_mutation(text: str) -> ast.MutationStatement:
    """Parse a complete INSERT/UPDATE/DELETE statement."""
    parser = Parser(text)
    statement = parser.parse_mutation()
    parser.expect_eof()
    return statement


def parse_any_statement(text: str):
    """Parse either statement family: a :class:`ast.Query` for SELECT,
    a :class:`ast.MutationStatement` for INSERT/UPDATE/DELETE."""
    parser = Parser(text)
    if parser._current.is_keyword("INSERT", "UPDATE", "DELETE"):
        statement = parser.parse_mutation()
    else:
        statement = parser.parse_query(top_level=True)
    parser.expect_eof()
    return statement


def parse_expression(text: str) -> ast.Expr:
    """Parse a standalone expression (used by tests and tools)."""
    parser = Parser(text)
    expr = parser.parse_expr()
    parser.expect_eof()
    return expr


class Parser:
    """Token-stream parser. One instance parses one statement."""

    def __init__(self, text: str):
        self._tokens = tokenize(text)
        self._pos = 0
        self._param_count = 0

    # -- token plumbing -------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._pos]

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._current
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def _error(self, message: str, token: Token | None = None) -> SQLSyntaxError:
        token = token or self._current
        found = token.text or "<end of input>"
        return SQLSyntaxError(f"{message}, found {found!r}",
                              token.line, token.column)

    def _accept_keyword(self, *words: str) -> Token | None:
        if self._current.is_keyword(*words):
            return self._advance()
        return None

    def _expect_keyword(self, word: str) -> Token:
        if not self._current.is_keyword(word):
            raise self._error(f"expected {word}")
        return self._advance()

    def _accept_symbol(self, *symbols: str) -> Token | None:
        if self._current.is_symbol(*symbols):
            return self._advance()
        return None

    def _expect_symbol(self, symbol: str) -> Token:
        if not self._current.is_symbol(symbol):
            raise self._error(f"expected {symbol!r}")
        return self._advance()

    def expect_eof(self) -> None:
        self._accept_symbol(";")
        if self._current.type is not TokenType.EOF:
            raise self._error("unexpected trailing input")

    def _identifier(self, what: str = "identifier") -> str:
        token = self._current
        if token.type in (TokenType.IDENT, TokenType.QUOTED_IDENT):
            self._advance()
            return token.text
        raise self._error(f"expected {what}")

    # -- query expressions ----------------------------------------------

    def parse_query(self, top_level: bool = False) -> ast.Query:
        body = self._parse_query_body()
        order_by: tuple[ast.SortItem, ...] = ()
        if self._current.is_keyword("ORDER"):
            if not top_level:
                raise self._error(
                    "ORDER BY is only allowed on the outermost query "
                    "(SQL-92 13.1)")
            self._advance()
            self._expect_keyword("BY")
            order_by = self._parse_sort_items()
        limit: int | None = None
        offset: int | None = None
        while self._current.is_keyword("LIMIT", "OFFSET"):
            if not top_level:
                raise self._error(
                    f"{self._current.text} is only allowed on the "
                    f"outermost query")
            keyword = self._advance().text
            if keyword == "LIMIT":
                if limit is not None:
                    raise self._error("duplicate LIMIT clause")
                limit = self._unsigned_integer("LIMIT row count")
            else:
                if offset is not None:
                    raise self._error("duplicate OFFSET clause")
                offset = self._unsigned_integer("OFFSET row count")
        return ast.Query(body=body, order_by=order_by,
                         limit=limit, offset=offset)

    def _unsigned_integer(self, what: str) -> int:
        token = self._current
        if token.type is not TokenType.INTEGER:
            raise self._error(f"expected non-negative integer {what}")
        self._advance()
        return int(token.text)

    def _parse_query_body(self) -> ast.QueryBody:
        left = self._parse_query_term()
        while True:
            token = self._accept_keyword("UNION", "EXCEPT")
            if token is None:
                return left
            all_flag = bool(self._accept_keyword("ALL"))
            if not all_flag:
                self._accept_keyword("DISTINCT")
            right = self._parse_query_term()
            left = ast.SetOp(op=token.text, all=all_flag,
                             left=left, right=right)

    def _parse_query_term(self) -> ast.QueryBody:
        left = self._parse_query_primary()
        while self._accept_keyword("INTERSECT"):
            all_flag = bool(self._accept_keyword("ALL"))
            if not all_flag:
                self._accept_keyword("DISTINCT")
            right = self._parse_query_primary()
            left = ast.SetOp(op="INTERSECT", all=all_flag,
                             left=left, right=right)
        return left

    def _parse_query_primary(self) -> ast.QueryBody:
        if self._accept_symbol("("):
            body = self._parse_query_body()
            self._expect_symbol(")")
            return body
        return self._parse_select_core()

    def _parse_select_core(self) -> ast.Select:
        self._expect_keyword("SELECT")
        distinct = False
        if self._accept_keyword("DISTINCT"):
            distinct = True
        else:
            self._accept_keyword("ALL")
        items = self._parse_select_list()
        self._expect_keyword("FROM")
        from_clause = self._parse_table_reference_list()
        where = None
        if self._accept_keyword("WHERE"):
            where = self.parse_expr()
        group_by: tuple[ast.Expr, ...] = ()
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            group_by = self._parse_expr_list()
        having = None
        if self._accept_keyword("HAVING"):
            having = self.parse_expr()
        return ast.Select(items=items, from_clause=from_clause, where=where,
                          group_by=group_by, having=having, distinct=distinct)

    def _parse_select_list(self) -> tuple[ast.SelectItem | ast.StarItem, ...]:
        items: list[ast.SelectItem | ast.StarItem] = []
        while True:
            items.append(self._parse_select_item())
            if not self._accept_symbol(","):
                return tuple(items)

    def _parse_select_item(self) -> ast.SelectItem | ast.StarItem:
        if self._accept_symbol("*"):
            return ast.StarItem()
        star = self._try_parse_qualified_star()
        if star is not None:
            return star
        expr = self.parse_expr()
        alias = None
        if self._accept_keyword("AS"):
            alias = self._identifier("alias after AS")
        elif self._current.type in (TokenType.IDENT, TokenType.QUOTED_IDENT):
            alias = self._identifier()
        return ast.SelectItem(expr=expr, alias=alias)

    def _try_parse_qualified_star(self) -> ast.StarItem | None:
        """Recognize ``name(.name)*.*`` without consuming on failure."""
        if self._current.type not in (TokenType.IDENT, TokenType.QUOTED_IDENT):
            return None
        offset = 0
        parts = 0
        while True:
            token = self._peek(offset)
            if token.type not in (TokenType.IDENT, TokenType.QUOTED_IDENT):
                return None
            parts += 1
            dot = self._peek(offset + 1)
            if not dot.is_symbol("."):
                return None
            after = self._peek(offset + 2)
            if after.is_symbol("*"):
                qualifier = tuple(
                    self._peek(i * 2).text for i in range(parts))
                for _ in range(parts * 2 + 1):
                    self._advance()
                return ast.StarItem(qualifier=qualifier)
            offset += 2

    def _parse_sort_items(self) -> tuple[ast.SortItem, ...]:
        items: list[ast.SortItem] = []
        while True:
            if self._current.type is TokenType.INTEGER:
                key: ast.Expr | int = int(self._advance().text)
            else:
                key = self.parse_expr()
            ascending = True
            if self._accept_keyword("DESC"):
                ascending = False
            else:
                self._accept_keyword("ASC")
            items.append(ast.SortItem(key=key, ascending=ascending))
            if not self._accept_symbol(","):
                return tuple(items)

    # -- DML statements ---------------------------------------------------

    def parse_mutation(self) -> ast.MutationStatement:
        """One INSERT / UPDATE / DELETE statement."""
        if self._current.is_keyword("INSERT"):
            return self._parse_insert()
        if self._current.is_keyword("UPDATE"):
            return self._parse_update()
        if self._current.is_keyword("DELETE"):
            return self._parse_delete()
        raise self._error("expected INSERT, UPDATE, or DELETE")

    def _parse_dml_target(self) -> ast.TableRef:
        """The mutation target: a (possibly qualified) table name.

        No alias — SQL-92 does not allow correlation names on the
        target of an INSERT/UPDATE/DELETE."""
        parts = [self._identifier("table name")]
        while self._accept_symbol("."):
            parts.append(self._identifier("name after '.'"))
        if len(parts) > 3:
            raise self._error(
                "too many qualifiers in table name (max catalog.schema.table)")
        return ast.TableRef(name=parts[-1],
                            schema=parts[-2] if len(parts) >= 2 else None,
                            catalog=parts[-3] if len(parts) >= 3 else None)

    def _parse_insert(self) -> ast.Insert:
        self._expect_keyword("INSERT")
        self._expect_keyword("INTO")
        table = self._parse_dml_target()
        columns: tuple[str, ...] = ()
        if self._accept_symbol("("):
            names = [self._identifier("column name")]
            while self._accept_symbol(","):
                names.append(self._identifier("column name"))
            self._expect_symbol(")")
            columns = tuple(names)
        self._expect_keyword("VALUES")
        rows = [self._parse_values_row()]
        while self._accept_symbol(","):
            rows.append(self._parse_values_row())
        width = len(columns) if columns else len(rows[0])
        for row in rows:
            if len(row) != width:
                raise self._error(
                    f"VALUES row has {len(row)} expressions, expected "
                    f"{width}")
        return ast.Insert(table=table, columns=columns, rows=tuple(rows))

    def _parse_values_row(self) -> tuple[ast.Expr, ...]:
        self._expect_symbol("(")
        exprs = self._parse_expr_list()
        self._expect_symbol(")")
        return exprs

    def _parse_update(self) -> ast.Update:
        self._expect_keyword("UPDATE")
        table = self._parse_dml_target()
        self._expect_keyword("SET")
        assignments = [self._parse_assignment()]
        while self._accept_symbol(","):
            assignments.append(self._parse_assignment())
        where = None
        if self._accept_keyword("WHERE"):
            where = self.parse_expr()
        return ast.Update(table=table, assignments=tuple(assignments),
                          where=where)

    def _parse_assignment(self) -> ast.Assignment:
        column = self._identifier("column name")
        self._expect_symbol("=")
        return ast.Assignment(column=column, value=self.parse_expr())

    def _parse_delete(self) -> ast.Delete:
        self._expect_keyword("DELETE")
        self._expect_keyword("FROM")
        table = self._parse_dml_target()
        where = None
        if self._accept_keyword("WHERE"):
            where = self.parse_expr()
        return ast.Delete(table=table, where=where)

    # -- table references -------------------------------------------------

    def _parse_table_reference_list(self) -> tuple[ast.TableExpr, ...]:
        refs = [self._parse_table_reference()]
        while self._accept_symbol(","):
            refs.append(self._parse_table_reference())
        return tuple(refs)

    def _parse_table_reference(self) -> ast.TableExpr:
        left = self._parse_table_primary()
        while True:
            join = self._try_parse_join(left)
            if join is None:
                return left
            left = join

    def _try_parse_join(self, left: ast.TableExpr) -> ast.Join | None:
        natural = False
        kind = None
        start = self._pos
        if self._accept_keyword("NATURAL"):
            natural = True
        if self._accept_keyword("CROSS"):
            kind = "CROSS"
        elif self._accept_keyword("INNER"):
            kind = "INNER"
        elif self._accept_keyword("LEFT"):
            self._accept_keyword("OUTER")
            kind = "LEFT"
        elif self._accept_keyword("RIGHT"):
            self._accept_keyword("OUTER")
            kind = "RIGHT"
        elif self._accept_keyword("FULL"):
            self._accept_keyword("OUTER")
            kind = "FULL"
        if not self._current.is_keyword("JOIN"):
            if kind is not None or natural:
                raise self._error("expected JOIN")
            self._pos = start
            return None
        self._advance()
        if kind is None:
            kind = "INNER"
        if natural and kind == "CROSS":
            raise self._error("NATURAL cannot be combined with CROSS JOIN")
        right = self._parse_table_primary()
        condition = None
        using: tuple[str, ...] = ()
        if kind != "CROSS" and not natural:
            if self._accept_keyword("ON"):
                condition = self.parse_expr()
            elif self._accept_keyword("USING"):
                self._expect_symbol("(")
                names = [self._identifier("column name")]
                while self._accept_symbol(","):
                    names.append(self._identifier("column name"))
                self._expect_symbol(")")
                using = tuple(names)
            else:
                raise self._error("expected ON or USING after JOIN")
        return ast.Join(kind=kind, left=left, right=right,
                        condition=condition, using=using, natural=natural)

    def _parse_table_primary(self) -> ast.TableExpr:
        if self._accept_symbol("("):
            if self._current.is_keyword("SELECT") or self._looks_like_query():
                query = self.parse_query()
                self._expect_symbol(")")
                self._accept_keyword("AS")
                alias = self._identifier("alias for derived table")
                column_aliases = self._parse_optional_column_aliases()
                return ast.DerivedTable(query=query, alias=alias,
                                        column_aliases=column_aliases)
            inner = self._parse_table_reference()
            self._expect_symbol(")")
            return inner
        parts = [self._identifier("table name")]
        while self._accept_symbol("."):
            parts.append(self._identifier("name after '.'"))
        if len(parts) > 3:
            raise self._error(
                "too many qualifiers in table name (max catalog.schema.table)")
        name = parts[-1]
        schema = parts[-2] if len(parts) >= 2 else None
        catalog = parts[-3] if len(parts) >= 3 else None
        alias = None
        if self._accept_keyword("AS"):
            alias = self._identifier("alias after AS")
        elif self._current.type in (TokenType.IDENT, TokenType.QUOTED_IDENT):
            alias = self._identifier()
        column_aliases = self._parse_optional_column_aliases()
        return ast.TableRef(name=name, schema=schema, catalog=catalog,
                            alias=alias, column_aliases=column_aliases)

    def _looks_like_query(self) -> bool:
        """After an opening paren: does a (possibly nested) query follow?"""
        offset = 0
        while self._peek(offset).is_symbol("("):
            offset += 1
        return self._peek(offset).is_keyword("SELECT")

    def _parse_optional_column_aliases(self) -> tuple[str, ...]:
        if not self._current.is_symbol("("):
            return ()
        # Only a column-alias list can follow an alias here.
        self._advance()
        names = [self._identifier("column alias")]
        while self._accept_symbol(","):
            names.append(self._identifier("column alias"))
        self._expect_symbol(")")
        return tuple(names)

    # -- expressions -------------------------------------------------------

    def parse_expr(self) -> ast.Expr:
        return self._parse_or()

    def _parse_expr_list(self) -> tuple[ast.Expr, ...]:
        exprs = [self.parse_expr()]
        while self._accept_symbol(","):
            exprs.append(self.parse_expr())
        return tuple(exprs)

    def _parse_or(self) -> ast.Expr:
        left = self._parse_and()
        while self._accept_keyword("OR"):
            left = ast.Or(left=left, right=self._parse_and())
        return left

    def _parse_and(self) -> ast.Expr:
        left = self._parse_not()
        while self._accept_keyword("AND"):
            left = ast.And(left=left, right=self._parse_not())
        return left

    def _parse_not(self) -> ast.Expr:
        if self._accept_keyword("NOT"):
            return ast.Not(operand=self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> ast.Expr:
        if self._current.is_keyword("EXISTS"):
            self._advance()
            self._expect_symbol("(")
            query = self.parse_query()
            self._expect_symbol(")")
            return ast.Exists(query=query)
        left = self._parse_additive()
        return self._parse_predicate_suffix(left)

    def _parse_predicate_suffix(self, left: ast.Expr) -> ast.Expr:
        token = self._current
        if token.is_symbol(*_COMPARISON_OPS):
            op = self._advance().text
            if op == "!=":
                op = "<>"
            quantifier = self._accept_keyword("ANY", "SOME", "ALL")
            if quantifier is not None:
                self._expect_symbol("(")
                query = self.parse_query()
                self._expect_symbol(")")
                quant = "ANY" if quantifier.text in ("ANY", "SOME") else "ALL"
                return ast.QuantifiedComparison(op=op, left=left,
                                                quantifier=quant, query=query)
            right = self._parse_additive()
            return ast.Comparison(op=op, left=left, right=right)
        negated = False
        if token.is_keyword("NOT"):
            follower = self._peek(1)
            if follower.is_keyword("BETWEEN", "IN", "LIKE"):
                self._advance()
                negated = True
                token = self._current
        if token.is_keyword("IS"):
            self._advance()
            is_not = bool(self._accept_keyword("NOT"))
            self._expect_keyword("NULL")
            return ast.IsNull(operand=left, negated=is_not)
        if token.is_keyword("BETWEEN"):
            self._advance()
            low = self._parse_additive()
            self._expect_keyword("AND")
            high = self._parse_additive()
            return ast.Between(operand=left, low=low, high=high,
                               negated=negated)
        if token.is_keyword("IN"):
            self._advance()
            self._expect_symbol("(")
            if self._current.is_keyword("SELECT") or self._looks_like_query():
                query = self.parse_query()
                self._expect_symbol(")")
                return ast.InSubquery(operand=left, query=query,
                                      negated=negated)
            items = self._parse_expr_list()
            self._expect_symbol(")")
            return ast.InList(operand=left, items=items, negated=negated)
        if token.is_keyword("LIKE"):
            self._advance()
            pattern = self._parse_additive()
            escape = None
            if self._accept_keyword("ESCAPE"):
                escape = self._parse_additive()
            return ast.Like(operand=left, pattern=pattern, escape=escape,
                            negated=negated)
        if negated:
            raise self._error("expected BETWEEN, IN, or LIKE after NOT")
        return left

    def _parse_additive(self) -> ast.Expr:
        left = self._parse_multiplicative()
        while True:
            if self._accept_symbol("+"):
                left = ast.BinaryOp(op="+", left=left,
                                    right=self._parse_multiplicative())
            elif self._accept_symbol("-"):
                left = ast.BinaryOp(op="-", left=left,
                                    right=self._parse_multiplicative())
            elif self._accept_symbol("||"):
                left = ast.BinaryOp(op="||", left=left,
                                    right=self._parse_multiplicative())
            else:
                return left

    def _parse_multiplicative(self) -> ast.Expr:
        left = self._parse_unary()
        while True:
            if self._accept_symbol("*"):
                left = ast.BinaryOp(op="*", left=left,
                                    right=self._parse_unary())
            elif self._accept_symbol("/"):
                left = ast.BinaryOp(op="/", left=left,
                                    right=self._parse_unary())
            else:
                return left

    def _parse_unary(self) -> ast.Expr:
        if self._accept_symbol("-"):
            return ast.UnaryOp(op="-", operand=self._parse_unary())
        if self._accept_symbol("+"):
            return ast.UnaryOp(op="+", operand=self._parse_unary())
        return self._parse_primary()

    # -- primary expressions ------------------------------------------------

    def _parse_primary(self) -> ast.Expr:
        token = self._current
        if token.type is TokenType.STRING:
            self._advance()
            return ast.Literal(value=token.text, type=VARCHAR)
        if token.type is TokenType.INTEGER:
            self._advance()
            return ast.Literal(value=int(token.text), type=INTEGER)
        if token.type is TokenType.DECIMAL:
            self._advance()
            return ast.Literal(value=Decimal(token.text),
                               type=SQLType("DECIMAL"))
        if token.type is TokenType.APPROX:
            self._advance()
            return ast.Literal(value=float(token.text), type=DOUBLE)
        if token.type is TokenType.PARAM:
            self._advance()
            self._param_count += 1
            return ast.Parameter(index=self._param_count)
        if token.is_keyword("NULL"):
            self._advance()
            return ast.NullLiteral()
        if token.is_keyword("DATE", "TIME", "TIMESTAMP"):
            if self._peek(1).type is TokenType.STRING:
                return self._parse_datetime_literal()
        if token.is_keyword("CASE"):
            return self._parse_case()
        if token.is_keyword("CAST"):
            return self._parse_cast()
        if token.is_keyword("EXTRACT"):
            return self._parse_extract()
        if token.is_keyword("TRIM"):
            return self._parse_trim()
        if token.is_keyword("SUBSTRING"):
            return self._parse_substring()
        if token.is_keyword("POSITION"):
            return self._parse_position()
        if token.is_keyword("COALESCE", "NULLIF"):
            name = self._advance().text
            self._expect_symbol("(")
            args = self._parse_expr_list()
            self._expect_symbol(")")
            return ast.FunctionCall(name=name, args=args)
        if token.is_keyword("CURRENT_DATE", "CURRENT_TIME",
                            "CURRENT_TIMESTAMP"):
            self._advance()
            return ast.FunctionCall(name=token.text, args=())
        if token.is_keyword(*AGGREGATE_NAMES):
            return self._parse_aggregate()
        if token.is_symbol("("):
            self._advance()
            if self._current.is_keyword("SELECT") or self._looks_like_query():
                query = self.parse_query()
                self._expect_symbol(")")
                return ast.ScalarSubquery(query=query)
            expr = self.parse_expr()
            self._expect_symbol(")")
            return expr
        if token.type in (TokenType.IDENT, TokenType.QUOTED_IDENT):
            return self._parse_name_or_call()
        raise self._error("expected an expression")

    def _parse_datetime_literal(self) -> ast.Expr:
        kind = self._advance().text
        raw = self._advance().text
        try:
            if kind == "DATE":
                value: object = datetime.date.fromisoformat(raw)
                return ast.Literal(value=value, type=DATE)
            if kind == "TIME":
                value = datetime.time.fromisoformat(raw)
                return ast.Literal(value=value, type=TIME)
            value = datetime.datetime.fromisoformat(raw)
            return ast.Literal(value=value, type=TIMESTAMP)
        except ValueError:
            raise self._error(f"malformed {kind} literal {raw!r}") from None

    def _parse_case(self) -> ast.Expr:
        self._expect_keyword("CASE")
        operand = None
        if not self._current.is_keyword("WHEN"):
            operand = self.parse_expr()
        whens: list[tuple[ast.Expr, ast.Expr]] = []
        while self._accept_keyword("WHEN"):
            when = self.parse_expr()
            self._expect_keyword("THEN")
            then = self.parse_expr()
            whens.append((when, then))
        if not whens:
            raise self._error("CASE requires at least one WHEN branch")
        else_ = None
        if self._accept_keyword("ELSE"):
            else_ = self.parse_expr()
        self._expect_keyword("END")
        return ast.CaseExpr(operand=operand, whens=tuple(whens), else_=else_)

    def _parse_cast(self) -> ast.Expr:
        self._expect_keyword("CAST")
        self._expect_symbol("(")
        operand = self.parse_expr()
        self._expect_keyword("AS")
        target = self._parse_type_name()
        self._expect_symbol(")")
        return ast.Cast(operand=operand, target=target)

    def _parse_type_name(self) -> SQLType:
        token = self._current
        if not (token.type is TokenType.KEYWORD or
                token.type is TokenType.IDENT):
            raise self._error("expected a type name")
        name = self._advance().text
        if name == "DOUBLE":
            self._accept_keyword("PRECISION")
        varying = False
        if name in ("CHAR", "CHARACTER") and self._accept_keyword("VARYING"):
            varying = True
        precision = scale = length = None
        if self._accept_symbol("("):
            first = self._current
            if first.type is not TokenType.INTEGER:
                raise self._error("expected a precision/length")
            precision = int(self._advance().text)
            if self._accept_symbol(","):
                second = self._current
                if second.type is not TokenType.INTEGER:
                    raise self._error("expected a scale")
                scale = int(self._advance().text)
            self._expect_symbol(")")
            length = precision
        if varying:
            name = "VARCHAR"
        try:
            return type_from_name(name, precision=precision, scale=scale,
                                  length=length)
        except Exception:
            raise self._error(f"unknown type name {name!r}") from None

    def _parse_extract(self) -> ast.Expr:
        self._expect_keyword("EXTRACT")
        self._expect_symbol("(")
        token = self._current
        field = token.text
        if field not in _EXTRACT_FIELDS:
            raise self._error("expected YEAR/MONTH/DAY/HOUR/MINUTE/SECOND")
        self._advance()
        self._expect_keyword("FROM")
        source = self.parse_expr()
        self._expect_symbol(")")
        return ast.ExtractExpr(field=field, source=source)

    def _parse_trim(self) -> ast.Expr:
        self._expect_keyword("TRIM")
        self._expect_symbol("(")
        mode = "BOTH"
        chars = None
        token = self._accept_keyword("LEADING", "TRAILING", "BOTH")
        if token is not None:
            mode = token.text
            if not self._current.is_keyword("FROM"):
                chars = self.parse_expr()
            self._expect_keyword("FROM")
            source = self.parse_expr()
        else:
            first = self.parse_expr()
            if self._accept_keyword("FROM"):
                chars = first
                source = self.parse_expr()
            else:
                source = first
        self._expect_symbol(")")
        return ast.TrimExpr(mode=mode, chars=chars, source=source)

    def _parse_substring(self) -> ast.Expr:
        self._expect_keyword("SUBSTRING")
        self._expect_symbol("(")
        source = self.parse_expr()
        args: list[ast.Expr] = [source]
        if self._accept_keyword("FROM"):
            args.append(self.parse_expr())
            if self._accept_keyword("FOR"):
                args.append(self.parse_expr())
        elif self._accept_symbol(","):
            args.append(self.parse_expr())
            if self._accept_symbol(","):
                args.append(self.parse_expr())
        else:
            raise self._error("expected FROM or ',' in SUBSTRING")
        self._expect_symbol(")")
        return ast.FunctionCall(name="SUBSTRING", args=tuple(args))

    def _parse_position(self) -> ast.Expr:
        self._expect_keyword("POSITION")
        self._expect_symbol("(")
        needle = self._parse_additive()
        self._expect_keyword("IN")
        haystack = self.parse_expr()
        self._expect_symbol(")")
        return ast.FunctionCall(name="POSITION", args=(needle, haystack))

    def _parse_aggregate(self) -> ast.Expr:
        func = self._advance().text
        self._expect_symbol("(")
        if func == "COUNT" and self._accept_symbol("*"):
            self._expect_symbol(")")
            return ast.AggregateCall(func="COUNT", arg=None, star=True)
        distinct = False
        if self._accept_keyword("DISTINCT"):
            distinct = True
        else:
            self._accept_keyword("ALL")
        arg = self.parse_expr()
        self._expect_symbol(")")
        return ast.AggregateCall(func=func, arg=arg, distinct=distinct)

    def _parse_name_or_call(self) -> ast.Expr:
        parts = [self._identifier()]
        while self._current.is_symbol(".") and not self._peek(1).is_symbol("*"):
            self._advance()
            parts.append(self._identifier("name after '.'"))
        if len(parts) == 1 and self._current.is_symbol("("):
            self._advance()
            if self._accept_symbol(")"):
                return ast.FunctionCall(name=parts[0], args=())
            args = self._parse_expr_list()
            self._expect_symbol(")")
            return ast.FunctionCall(name=parts[0], args=tuple(args))
        if len(parts) > 4:
            raise self._error("too many qualifiers in column reference")
        return ast.ColumnRef(qualifier=tuple(parts[:-1]), column=parts[-1])
