"""SQL-92 SELECT frontend (S2 in DESIGN.md).

Lexer, recursive-descent parser, typed AST (the stage-one output of the
paper's translator), pretty-printer, type system with promotion rules, and
the scalar function registry.
"""

from . import ast
from .functions import REGISTRY as FUNCTION_REGISTRY
from .functions import FunctionSpec, lookup as lookup_function
from .lexer import Lexer, tokenize
from .parser import (
    AGGREGATE_NAMES,
    DML_KEYWORDS,
    Parser,
    is_mutation,
    parse_any_statement,
    parse_expression,
    parse_mutation,
    parse_statement,
)
from .printer import print_expr, print_query
from .tokens import RESERVED_WORDS, Token, TokenType
from .types import SQLType, literal_type, promote, type_from_name

__all__ = [
    "AGGREGATE_NAMES",
    "DML_KEYWORDS",
    "FUNCTION_REGISTRY",
    "FunctionSpec",
    "Lexer",
    "Parser",
    "RESERVED_WORDS",
    "SQLType",
    "Token",
    "TokenType",
    "ast",
    "is_mutation",
    "literal_type",
    "lookup_function",
    "parse_any_statement",
    "parse_expression",
    "parse_mutation",
    "parse_statement",
    "print_expr",
    "print_query",
    "promote",
    "tokenize",
    "type_from_name",
]
