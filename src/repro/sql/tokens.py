"""Token definitions for the SQL-92 lexer (stage one, lexical analysis)."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto


class TokenType(Enum):
    """Lexical categories produced by the SQL lexer."""

    KEYWORD = auto()        # reserved word (text is uppercased)
    IDENT = auto()          # regular identifier (text is uppercased)
    QUOTED_IDENT = auto()   # delimited identifier (case preserved)
    STRING = auto()         # character string literal (text is the value)
    INTEGER = auto()        # exact numeric literal without fraction
    DECIMAL = auto()        # exact numeric literal with fraction
    APPROX = auto()         # approximate numeric literal (E notation)
    PARAM = auto()          # positional parameter marker '?'
    SYMBOL = auto()         # operator or punctuation
    EOF = auto()


#: SQL-92 reserved words used by the supported SELECT and DML grammars,
#: plus the few common extensions the translator accepts. Regular
#: identifiers matching one of these are tokenized as keywords.
RESERVED_WORDS = frozenset({
    "ALL", "AND", "ANY", "AS", "ASC", "AVG", "BETWEEN", "BIGINT", "BOTH",
    "BY", "CASE", "CAST", "CHAR", "CHARACTER", "COALESCE", "COUNT", "CROSS",
    "CURRENT_DATE", "CURRENT_TIME", "CURRENT_TIMESTAMP", "DATE", "DEC",
    "DECIMAL", "DELETE", "DESC", "DISTINCT", "DOUBLE", "ELSE", "END",
    "ESCAPE",
    "EXCEPT", "EXISTS", "EXTRACT", "FALSE", "FLOAT", "FOR", "FROM", "FULL",
    "GROUP", "HAVING", "IN", "INNER", "INSERT", "INT", "INTEGER",
    "INTERSECT", "INTO", "IS",
    "JOIN", "LEADING", "LEFT", "LIKE", "LIMIT", "MAX", "MIN", "NATURAL",
    "NOT", "NULL", "NULLIF", "NUMERIC", "OFFSET", "ON", "OR", "ORDER",
    "OUTER", "POSITION",
    "PRECISION", "REAL", "RIGHT", "SELECT", "SET", "SMALLINT", "SOME",
    "SUBSTRING",
    "SUM", "THEN", "TIME", "TIMESTAMP", "TRAILING", "TRIM", "TRUE", "UNION",
    "UNKNOWN", "UPDATE", "USING", "VALUES", "VARCHAR", "VARYING", "WHEN",
    "WHERE",
})

#: Multi-character operator symbols, longest first so the lexer can use
#: greedy matching.
MULTI_CHAR_SYMBOLS = ("<>", "<=", ">=", "!=", "||")

SINGLE_CHAR_SYMBOLS = frozenset("()+-*/,.<>=;")


@dataclass(frozen=True)
class Token:
    """A single lexical token with its source position (1-based)."""

    type: TokenType
    text: str
    line: int
    column: int

    def is_keyword(self, *words: str) -> bool:
        return self.type is TokenType.KEYWORD and self.text in words

    def is_symbol(self, *symbols: str) -> bool:
        return self.type is TokenType.SYMBOL and self.text in symbols

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Token({self.type.name}, {self.text!r})"
