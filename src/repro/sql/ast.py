"""Typed AST nodes for SQL-92 SELECT statements.

The paper (section 3.4.2): "When the translator parses the input SQL in
stage-one, it generates an AST where each node is a typed node ... whose
type is designed to correspond to some SQL abstraction."

The *resultset-node* (RSN) abstraction — "queries on tables, join
operations between two queries or tables, set operations involving two
queries, and even the tables themselves are all treated as views" — is
realized here as the ``TableExpr``/``QueryBody`` node families; the
translator wraps each of them in an RSN object that knows how to emit
XQuery (``repro.translator.rsn``).

All nodes are immutable-by-convention dataclasses. Stage two of the
translator produces *rewritten copies* rather than mutating parser output,
so a parsed AST can be reused (e.g. by the reference executor) safely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from .types import SQLType


class Node:
    """Marker base class for all SQL AST nodes."""

    __slots__ = ()


class Expr(Node):
    """Marker base class for value and predicate expressions."""

    __slots__ = ()


# ---------------------------------------------------------------------------
# Value expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Literal(Expr):
    """A typed literal. ``value`` is int, Decimal, float, str, or a
    date/time/datetime object for the datetime literals."""

    value: object
    type: SQLType


@dataclass(frozen=True)
class NullLiteral(Expr):
    """The NULL keyword used as a value."""


@dataclass(frozen=True)
class Parameter(Expr):
    """A positional ``?`` parameter marker (1-based index)."""

    index: int


@dataclass(frozen=True)
class ColumnRef(Expr):
    """A possibly-qualified column reference.

    ``qualifier`` holds the leading name parts (range variable, or
    schema-qualified table name); empty tuple for an unqualified column.
    """

    qualifier: tuple[str, ...]
    column: str

    def display(self) -> str:
        return ".".join(self.qualifier + (self.column,))


@dataclass(frozen=True)
class UnaryOp(Expr):
    """Unary ``+`` or ``-``."""

    op: str
    operand: Expr


@dataclass(frozen=True)
class BinaryOp(Expr):
    """Dyadic arithmetic (``+ - * /``) or string concatenation (``||``)."""

    op: str
    left: Expr
    right: Expr


@dataclass(frozen=True)
class FunctionCall(Expr):
    """A scalar function call with positional arguments.

    Special SQL-92 syntaxes are canonicalized by the parser:
    ``SUBSTRING(x FROM s FOR n)`` becomes ``FunctionCall("SUBSTRING",
    (x, s, n))`` and ``POSITION(a IN b)`` becomes
    ``FunctionCall("POSITION", (a, b))``.
    """

    name: str
    args: tuple[Expr, ...]


@dataclass(frozen=True)
class AggregateCall(Expr):
    """A set function: COUNT/SUM/AVG/MIN/MAX, optionally DISTINCT.

    ``COUNT(*)`` is represented with ``star=True`` and ``arg=None``.
    """

    func: str
    arg: Optional[Expr]
    distinct: bool = False
    star: bool = False

    def display(self) -> str:
        inner = "*" if self.star else ""
        return f"{self.func}({inner})"


@dataclass(frozen=True)
class CaseExpr(Expr):
    """Simple (with operand) or searched CASE expression."""

    operand: Optional[Expr]
    whens: tuple[tuple[Expr, Expr], ...]
    else_: Optional[Expr]


@dataclass(frozen=True)
class Cast(Expr):
    """``CAST(expr AS type)``."""

    operand: Expr
    target: SQLType


@dataclass(frozen=True)
class ExtractExpr(Expr):
    """``EXTRACT(field FROM source)``; field is YEAR/MONTH/DAY/HOUR/..."""

    field: str
    source: Expr


@dataclass(frozen=True)
class TrimExpr(Expr):
    """``TRIM([LEADING|TRAILING|BOTH] [chars] FROM source)``."""

    mode: str  # "LEADING" | "TRAILING" | "BOTH"
    chars: Optional[Expr]
    source: Expr


@dataclass(frozen=True)
class ScalarSubquery(Expr):
    """A parenthesized subquery used as a scalar value."""

    query: "Query"


# ---------------------------------------------------------------------------
# Predicates (boolean-valued expressions)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Comparison(Expr):
    """``left op right`` with op one of = <> < <= > >=."""

    op: str
    left: Expr
    right: Expr


@dataclass(frozen=True)
class QuantifiedComparison(Expr):
    """``left op ANY|ALL (subquery)`` (SOME is normalized to ANY)."""

    op: str
    left: Expr
    quantifier: str  # "ANY" | "ALL"
    query: "Query"


@dataclass(frozen=True)
class IsNull(Expr):
    """``expr IS [NOT] NULL``."""

    operand: Expr
    negated: bool = False


@dataclass(frozen=True)
class Between(Expr):
    """``expr [NOT] BETWEEN low AND high``."""

    operand: Expr
    low: Expr
    high: Expr
    negated: bool = False


@dataclass(frozen=True)
class InList(Expr):
    """``expr [NOT] IN (v1, v2, ...)``."""

    operand: Expr
    items: tuple[Expr, ...]
    negated: bool = False


@dataclass(frozen=True)
class InSubquery(Expr):
    """``expr [NOT] IN (subquery)``."""

    operand: Expr
    query: "Query"
    negated: bool = False


@dataclass(frozen=True)
class Like(Expr):
    """``expr [NOT] LIKE pattern [ESCAPE esc]``."""

    operand: Expr
    pattern: Expr
    escape: Optional[Expr] = None
    negated: bool = False


@dataclass(frozen=True)
class Exists(Expr):
    """``EXISTS (subquery)``."""

    query: "Query"


@dataclass(frozen=True)
class Not(Expr):
    operand: Expr


@dataclass(frozen=True)
class And(Expr):
    left: Expr
    right: Expr


@dataclass(frozen=True)
class Or(Expr):
    left: Expr
    right: Expr


# ---------------------------------------------------------------------------
# Table expressions (FROM clause) — each of these is an RSN in the paper's
# terminology: "a typed view node is created ... for each table", "each
# join operation on two views", etc.
# ---------------------------------------------------------------------------


class TableExpr(Node):
    """Marker base for FROM-clause items."""

    __slots__ = ()


@dataclass(frozen=True)
class TableRef(TableExpr):
    """A base-table reference, optionally schema/catalog-qualified and
    aliased. In the DSP mapping, ``name`` is a data service function."""

    name: str
    schema: Optional[str] = None
    catalog: Optional[str] = None
    alias: Optional[str] = None
    column_aliases: tuple[str, ...] = ()

    def binding_name(self) -> str:
        """The range-variable name this table is known by in its query."""
        return self.alias or self.name


@dataclass(frozen=True)
class DerivedTable(TableExpr):
    """A parenthesized subquery in FROM with a mandatory alias."""

    query: "Query"
    alias: str
    column_aliases: tuple[str, ...] = ()

    def binding_name(self) -> str:
        return self.alias


@dataclass(frozen=True)
class Join(TableExpr):
    """A joined table: CROSS/INNER/LEFT/RIGHT/FULL with ON or USING."""

    kind: str  # "CROSS" | "INNER" | "LEFT" | "RIGHT" | "FULL"
    left: TableExpr
    right: TableExpr
    condition: Optional[Expr] = None
    using: tuple[str, ...] = ()
    natural: bool = False


# ---------------------------------------------------------------------------
# Query structure
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SelectItem(Node):
    """A single projection expression with an optional alias."""

    expr: Expr
    alias: Optional[str] = None


@dataclass(frozen=True)
class StarItem(Node):
    """``*`` or ``qualifier.*`` in the select list. Stage two expands
    these into concrete SelectItems using fetched table metadata."""

    qualifier: tuple[str, ...] = ()


class QueryBody(Node):
    """Marker base: a query body is a Select or a SetOp tree."""

    __slots__ = ()


@dataclass(frozen=True)
class Select(QueryBody):
    """A SELECT ... FROM ... WHERE ... GROUP BY ... HAVING query block."""

    items: tuple[Union[SelectItem, StarItem], ...]
    from_clause: tuple[TableExpr, ...]
    where: Optional[Expr] = None
    group_by: tuple[Expr, ...] = ()
    having: Optional[Expr] = None
    distinct: bool = False


@dataclass(frozen=True)
class SetOp(QueryBody):
    """UNION/INTERSECT/EXCEPT [ALL] of two query bodies."""

    op: str  # "UNION" | "INTERSECT" | "EXCEPT"
    all: bool
    left: QueryBody
    right: QueryBody


@dataclass(frozen=True)
class SortItem(Node):
    """One ORDER BY key: an expression or a 1-based select-list position."""

    key: Union[Expr, int]
    ascending: bool = True


@dataclass(frozen=True)
class Query(Node):
    """A complete query expression: body plus optional ORDER BY and
    LIMIT/OFFSET (the common pagination extension; top-level only, like
    ORDER BY)."""

    body: QueryBody
    order_by: tuple[SortItem, ...] = ()
    limit: Optional[int] = None
    offset: Optional[int] = None


# ---------------------------------------------------------------------------
# DML statements (the write path)
# ---------------------------------------------------------------------------


class MutationStatement(Node):
    """Marker base: an INSERT, UPDATE, or DELETE statement.

    DML never reaches the XQuery generator; the engine turns these
    nodes into source-level mutation plans (``repro.engine.dml``)."""

    __slots__ = ()


@dataclass(frozen=True)
class Insert(MutationStatement):
    """``INSERT INTO t [(c, ...)] VALUES (e, ...)[, (e, ...)]*``.

    ``columns`` is empty for the positional (all-columns) form; each
    entry of ``rows`` has one expression per target column."""

    table: TableRef
    columns: tuple[str, ...]
    rows: tuple[tuple[Expr, ...], ...]


@dataclass(frozen=True)
class Assignment(Node):
    """One ``column = expr`` item of an UPDATE SET list."""

    column: str
    value: Expr


@dataclass(frozen=True)
class Update(MutationStatement):
    """``UPDATE t SET c = e [, ...] [WHERE p]``."""

    table: TableRef
    assignments: tuple[Assignment, ...]
    where: Optional[Expr] = None


@dataclass(frozen=True)
class Delete(MutationStatement):
    """``DELETE FROM t [WHERE p]``."""

    table: TableRef
    where: Optional[Expr] = None


# ---------------------------------------------------------------------------
# Traversal helpers
# ---------------------------------------------------------------------------


def children_of(expr: Expr) -> tuple[Expr, ...]:
    """Direct sub-expressions of *expr* (not descending into subqueries)."""
    if isinstance(expr, UnaryOp):
        return (expr.operand,)
    if isinstance(expr, BinaryOp):
        return (expr.left, expr.right)
    if isinstance(expr, FunctionCall):
        return expr.args
    if isinstance(expr, AggregateCall):
        return (expr.arg,) if expr.arg is not None else ()
    if isinstance(expr, CaseExpr):
        parts: list[Expr] = []
        if expr.operand is not None:
            parts.append(expr.operand)
        for when, then in expr.whens:
            parts.extend((when, then))
        if expr.else_ is not None:
            parts.append(expr.else_)
        return tuple(parts)
    if isinstance(expr, Cast):
        return (expr.operand,)
    if isinstance(expr, ExtractExpr):
        return (expr.source,)
    if isinstance(expr, TrimExpr):
        if expr.chars is not None:
            return (expr.chars, expr.source)
        return (expr.source,)
    if isinstance(expr, Comparison):
        return (expr.left, expr.right)
    if isinstance(expr, QuantifiedComparison):
        return (expr.left,)
    if isinstance(expr, IsNull):
        return (expr.operand,)
    if isinstance(expr, Between):
        return (expr.operand, expr.low, expr.high)
    if isinstance(expr, InList):
        return (expr.operand,) + expr.items
    if isinstance(expr, InSubquery):
        return (expr.operand,)
    if isinstance(expr, Like):
        parts = [expr.operand, expr.pattern]
        if expr.escape is not None:
            parts.append(expr.escape)
        return tuple(parts)
    if isinstance(expr, Not):
        return (expr.operand,)
    if isinstance(expr, (And, Or)):
        return (expr.left, expr.right)
    return ()


def walk(expr: Expr):
    """Yield *expr* and all nested sub-expressions, pre-order, without
    descending into subqueries (their scopes are separate contexts)."""
    yield expr
    for child in children_of(expr):
        yield from walk(child)


def subqueries_of(expr: Expr) -> tuple["Query", ...]:
    """Immediate subqueries referenced by *expr* (one level)."""
    if isinstance(expr, ScalarSubquery):
        return (expr.query,)
    if isinstance(expr, (InSubquery, Exists, QuantifiedComparison)):
        return (expr.query,)
    return ()


def contains_aggregate(expr: Expr) -> bool:
    """True if *expr* contains a set-function call at this query level."""
    return any(isinstance(node, AggregateCall) for node in walk(expr))
