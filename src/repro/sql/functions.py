"""Registry of supported SQL scalar functions and their typing rules.

The paper (section 3.5.iii): "Many SQL functions can be directly mapped to
functions in the XQuery Functions and Operators library. The translator
uses a preconfigured map of SQL and XQuery functions." The XQuery side of
that map lives in ``repro.translator.funcmap``; this module is the SQL
side: which functions exist, their arities, and their result types —
needed both for stage-two semantic validation/typing and by the reference
executor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from ..errors import SQLSemanticError
from .types import (
    DATE,
    DOUBLE,
    INTEGER,
    TIME,
    TIMESTAMP,
    VARCHAR,
    SQLType,
    is_character,
    is_numeric,
    promote,
)

#: Signature: given the argument types, return the result type (raising
#: SQLSemanticError for invalid argument types).
TypeRule = Callable[[Sequence[SQLType]], SQLType]


@dataclass(frozen=True)
class FunctionSpec:
    """Static description of a scalar function."""

    name: str
    min_args: int
    max_args: int
    result_type: TypeRule

    def check_arity(self, count: int) -> None:
        if not (self.min_args <= count <= self.max_args):
            if self.min_args == self.max_args:
                expected = str(self.min_args)
            else:
                expected = f"{self.min_args}..{self.max_args}"
            raise SQLSemanticError(
                f"function {self.name} expects {expected} argument(s), "
                f"got {count}")


def _require_numeric(name: str, args: Sequence[SQLType], index: int) -> None:
    if not is_numeric(args[index]):
        raise SQLSemanticError(
            f"argument {index + 1} of {name} must be numeric, "
            f"got {args[index]}")


def _require_character(name: str, args: Sequence[SQLType],
                       index: int) -> None:
    if not is_character(args[index]):
        raise SQLSemanticError(
            f"argument {index + 1} of {name} must be a character string, "
            f"got {args[index]}")


def _string_result(name: str, checked: Sequence[int]) -> TypeRule:
    def rule(args: Sequence[SQLType]) -> SQLType:
        for index in checked:
            if index < len(args):
                _require_character(name, args, index)
        return VARCHAR
    return rule


def _numeric_passthrough(name: str) -> TypeRule:
    def rule(args: Sequence[SQLType]) -> SQLType:
        _require_numeric(name, args, 0)
        return SQLType(args[0].kind)
    return rule


def _abs_rule(args: Sequence[SQLType]) -> SQLType:
    _require_numeric("ABS", args, 0)
    return SQLType(args[0].kind)


def _mod_rule(args: Sequence[SQLType]) -> SQLType:
    _require_numeric("MOD", args, 0)
    _require_numeric("MOD", args, 1)
    return promote(args[0], args[1])


def _round_rule(args: Sequence[SQLType]) -> SQLType:
    _require_numeric("ROUND", args, 0)
    if len(args) == 2:
        _require_numeric("ROUND", args, 1)
    return SQLType(args[0].kind)


def _sqrt_rule(args: Sequence[SQLType]) -> SQLType:
    _require_numeric("SQRT", args, 0)
    return DOUBLE


def _length_rule(args: Sequence[SQLType]) -> SQLType:
    _require_character("CHAR_LENGTH", args, 0)
    return INTEGER


def _position_rule(args: Sequence[SQLType]) -> SQLType:
    _require_character("POSITION", args, 0)
    _require_character("POSITION", args, 1)
    return INTEGER


def _substring_rule(args: Sequence[SQLType]) -> SQLType:
    _require_character("SUBSTRING", args, 0)
    _require_numeric("SUBSTRING", args, 1)
    if len(args) == 3:
        _require_numeric("SUBSTRING", args, 2)
    return VARCHAR


def _coalesce_rule(args: Sequence[SQLType]) -> SQLType:
    result = args[0]
    for arg in args[1:]:
        if is_numeric(result) and is_numeric(arg):
            result = promote(result, arg)
        elif result.kind != arg.kind and not (
                is_character(result) and is_character(arg)):
            raise SQLSemanticError(
                f"COALESCE arguments have incompatible types "
                f"{result} and {arg}")
    return result


def _nullif_rule(args: Sequence[SQLType]) -> SQLType:
    return args[0]


def _const_type(t: SQLType) -> TypeRule:
    def rule(args: Sequence[SQLType]) -> SQLType:
        return t
    return rule


_SPECS = [
    FunctionSpec("UPPER", 1, 1, _string_result("UPPER", [0])),
    FunctionSpec("LOWER", 1, 1, _string_result("LOWER", [0])),
    FunctionSpec("CONCAT", 2, 2, _string_result("CONCAT", [0, 1])),
    FunctionSpec("SUBSTRING", 2, 3, _substring_rule),
    FunctionSpec("CHAR_LENGTH", 1, 1, _length_rule),
    FunctionSpec("CHARACTER_LENGTH", 1, 1, _length_rule),
    FunctionSpec("LENGTH", 1, 1, _length_rule),
    FunctionSpec("POSITION", 2, 2, _position_rule),
    FunctionSpec("ABS", 1, 1, _abs_rule),
    FunctionSpec("MOD", 2, 2, _mod_rule),
    FunctionSpec("ROUND", 1, 2, _round_rule),
    FunctionSpec("FLOOR", 1, 1, _numeric_passthrough("FLOOR")),
    FunctionSpec("CEILING", 1, 1, _numeric_passthrough("CEILING")),
    FunctionSpec("SQRT", 1, 1, _sqrt_rule),
    FunctionSpec("COALESCE", 1, 64, _coalesce_rule),
    FunctionSpec("NULLIF", 2, 2, _nullif_rule),
    FunctionSpec("CURRENT_DATE", 0, 0, _const_type(DATE)),
    FunctionSpec("CURRENT_TIME", 0, 0, _const_type(TIME)),
    FunctionSpec("CURRENT_TIMESTAMP", 0, 0, _const_type(TIMESTAMP)),
]

REGISTRY: dict[str, FunctionSpec] = {spec.name: spec for spec in _SPECS}


def lookup(name: str) -> FunctionSpec:
    """Find the spec for *name*, raising SQLSemanticError if unknown."""
    try:
        return REGISTRY[name.upper()]
    except KeyError:
        raise SQLSemanticError(f"unknown function {name}") from None
