"""The SQL-92 type system used for expression datatype computation.

The paper (section 3.5.v): "The datatypes of expressions are computed using
a leaf-to-root, bottom-up approach on the abstract syntax tree ... the
resulting datatype is inferred by applying the SQL rules of promotion and
casting."

We model the SQL-92 predefined types the JDBC driver surfaces, plus BOOLEAN
for predicate results (internal; SQL-92 predicates are not first-class
values but the type computation needs a name for them).
"""

from __future__ import annotations

from dataclasses import dataclass
from decimal import Decimal

from ..errors import SQLSemanticError


@dataclass(frozen=True)
class SQLType:
    """A SQL datatype: a kind name plus optional precision/scale/length."""

    kind: str
    precision: int | None = None
    scale: int | None = None
    length: int | None = None

    def __str__(self) -> str:
        if self.kind == "DECIMAL" and self.precision is not None:
            if self.scale is not None:
                return f"DECIMAL({self.precision},{self.scale})"
            return f"DECIMAL({self.precision})"
        if self.kind in ("CHAR", "VARCHAR") and self.length is not None:
            return f"{self.kind}({self.length})"
        return self.kind


SMALLINT = SQLType("SMALLINT")
INTEGER = SQLType("INTEGER")
BIGINT = SQLType("BIGINT")
DECIMAL = SQLType("DECIMAL")
REAL = SQLType("REAL")
DOUBLE = SQLType("DOUBLE")
CHAR = SQLType("CHAR")
VARCHAR = SQLType("VARCHAR")
DATE = SQLType("DATE")
TIME = SQLType("TIME")
TIMESTAMP = SQLType("TIMESTAMP")
BOOLEAN = SQLType("BOOLEAN")

#: Numeric kinds ordered by promotion rank (lower promotes to higher).
_NUMERIC_RANK = {
    "SMALLINT": 0,
    "INTEGER": 1,
    "BIGINT": 2,
    "DECIMAL": 3,
    "REAL": 4,
    "DOUBLE": 5,
}

_CHARACTER_KINDS = frozenset({"CHAR", "VARCHAR"})
_DATETIME_KINDS = frozenset({"DATE", "TIME", "TIMESTAMP"})
_EXACT_NUMERIC = frozenset({"SMALLINT", "INTEGER", "BIGINT", "DECIMAL"})


def is_numeric(t: SQLType) -> bool:
    return t.kind in _NUMERIC_RANK


def is_exact_numeric(t: SQLType) -> bool:
    return t.kind in _EXACT_NUMERIC


def is_character(t: SQLType) -> bool:
    return t.kind in _CHARACTER_KINDS


def is_datetime(t: SQLType) -> bool:
    return t.kind in _DATETIME_KINDS


def comparable(a: SQLType, b: SQLType) -> bool:
    """True when values of the two types may be compared in SQL-92."""
    if is_numeric(a) and is_numeric(b):
        return True
    if is_character(a) and is_character(b):
        return True
    if a.kind in _DATETIME_KINDS:
        return a.kind == b.kind
    return a.kind == b.kind


def promote(a: SQLType, b: SQLType) -> SQLType:
    """Result type of a dyadic arithmetic operation per SQL-92 promotion.

    Numeric operands promote to the higher-ranked kind. Non-numeric
    operands raise SQLSemanticError: the validator routes character
    concatenation through ``||`` which has its own rule.
    """
    if not (is_numeric(a) and is_numeric(b)):
        raise SQLSemanticError(
            f"arithmetic requires numeric operands, got {a} and {b}")
    if _NUMERIC_RANK[a.kind] >= _NUMERIC_RANK[b.kind]:
        return SQLType(a.kind)
    return SQLType(b.kind)


def divide_type(a: SQLType, b: SQLType) -> SQLType:
    """Result type of division: exact/exact stays exact (DECIMAL) but
    single-kind integer division yields INTEGER truncation semantics in
    most SQL-92 implementations; we follow that convention (documented in
    DESIGN.md) so the reference executor and translator agree."""
    result = promote(a, b)
    return result


def literal_type(value: object) -> SQLType:
    """SQL type of a Python literal value captured by the parser."""
    if isinstance(value, bool):
        return BOOLEAN
    if isinstance(value, int):
        return INTEGER
    if isinstance(value, Decimal):
        return DECIMAL
    if isinstance(value, float):
        return DOUBLE
    if isinstance(value, str):
        return VARCHAR
    raise TypeError(f"no SQL type for literal {value!r}")


_TYPE_NAME_ALIASES = {
    "INT": "INTEGER",
    "INTEGER": "INTEGER",
    "SMALLINT": "SMALLINT",
    "BIGINT": "BIGINT",
    "DEC": "DECIMAL",
    "DECIMAL": "DECIMAL",
    "NUMERIC": "DECIMAL",
    "REAL": "REAL",
    "FLOAT": "DOUBLE",
    "DOUBLE": "DOUBLE",
    "CHAR": "CHAR",
    "CHARACTER": "CHAR",
    "VARCHAR": "VARCHAR",
    "DATE": "DATE",
    "TIME": "TIME",
    "TIMESTAMP": "TIMESTAMP",
}


def type_from_name(name: str, precision: int | None = None,
                   scale: int | None = None,
                   length: int | None = None) -> SQLType:
    """Build a SQLType from a (possibly aliased) SQL type name."""
    try:
        kind = _TYPE_NAME_ALIASES[name.upper()]
    except KeyError:
        raise SQLSemanticError(f"unknown SQL type name {name!r}") from None
    if kind == "DECIMAL":
        return SQLType(kind, precision=precision, scale=scale)
    if kind in _CHARACTER_KINDS:
        return SQLType(kind, length=length)
    return SQLType(kind)
