"""SQL-92 lexer: the lexical-analysis half of the translator's stage one.

The paper (section 3.5): "Stage-one of the query translation process
performs lexical analysis on the SQL statement, parses the tokens generated
by the lexical analysis, and creates an AST".

Lexical conventions implemented:

* regular identifiers are case-insensitive and normalized to upper case;
* delimited identifiers (``"Mixed/Case.Name"``) preserve case and may
  contain any character except an unescaped double quote (doubled quotes
  escape); they are how DSP's path-like schema names are spelled in SQL;
* character string literals use single quotes with ``''`` escaping;
* exact numerics without a fraction are INTEGER tokens, with a fraction
  DECIMAL tokens, and E-notation numerics are APPROX (double) tokens;
* ``--`` starts a comment running to end of line, ``/* */`` is a block
  comment;
* ``?`` is a positional parameter marker (JDBC prepared statements).
"""

from __future__ import annotations

from ..errors import SQLSyntaxError
from .tokens import (
    MULTI_CHAR_SYMBOLS,
    RESERVED_WORDS,
    SINGLE_CHAR_SYMBOLS,
    Token,
    TokenType,
)

_IDENT_START = frozenset(
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz_")
_IDENT_CONT = _IDENT_START | frozenset("0123456789$")
_DIGITS = frozenset("0123456789")
_WHITESPACE = frozenset(" \t\r\n")


class Lexer:
    """Converts SQL text into a token list (EOF-terminated)."""

    def __init__(self, text: str):
        self._text = text
        self._pos = 0
        self._line = 1
        self._col = 1

    def tokenize(self) -> list[Token]:
        tokens: list[Token] = []
        while True:
            token = self._next_token()
            tokens.append(token)
            if token.type is TokenType.EOF:
                return tokens

    # -- internals ----------------------------------------------------

    def _error(self, message: str) -> SQLSyntaxError:
        return SQLSyntaxError(message, self._line, self._col)

    def _peek(self, offset: int = 0) -> str:
        index = self._pos + offset
        if index < len(self._text):
            return self._text[index]
        return ""

    def _advance(self, n: int = 1) -> str:
        chunk = self._text[self._pos:self._pos + n]
        for ch in chunk:
            if ch == "\n":
                self._line += 1
                self._col = 1
            else:
                self._col += 1
        self._pos += n
        return chunk

    def _skip_trivia(self) -> None:
        while True:
            ch = self._peek()
            if ch in _WHITESPACE and ch:
                self._advance()
            elif ch == "-" and self._peek(1) == "-":
                while self._peek() and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start_line, start_col = self._line, self._col
                self._advance(2)
                while not (self._peek() == "*" and self._peek(1) == "/"):
                    if not self._peek():
                        raise SQLSyntaxError("unterminated block comment",
                                             start_line, start_col)
                    self._advance()
                self._advance(2)
            else:
                return

    def _next_token(self) -> Token:
        self._skip_trivia()
        line, col = self._line, self._col
        ch = self._peek()
        if not ch:
            return Token(TokenType.EOF, "", line, col)
        if ch in _IDENT_START:
            return self._lex_word(line, col)
        if ch in _DIGITS or (ch == "." and self._peek(1) in _DIGITS):
            return self._lex_number(line, col)
        if ch == "'":
            return self._lex_string(line, col)
        if ch == '"':
            return self._lex_quoted_ident(line, col)
        if ch == "?":
            self._advance()
            return Token(TokenType.PARAM, "?", line, col)
        for symbol in MULTI_CHAR_SYMBOLS:
            if self._text.startswith(symbol, self._pos):
                self._advance(len(symbol))
                return Token(TokenType.SYMBOL, symbol, line, col)
        if ch in SINGLE_CHAR_SYMBOLS:
            self._advance()
            return Token(TokenType.SYMBOL, ch, line, col)
        raise self._error(f"unexpected character {ch!r}")

    def _lex_word(self, line: int, col: int) -> Token:
        start = self._pos
        while self._peek() in _IDENT_CONT and self._peek():
            self._advance()
        word = self._text[start:self._pos].upper()
        if word in RESERVED_WORDS:
            return Token(TokenType.KEYWORD, word, line, col)
        return Token(TokenType.IDENT, word, line, col)

    def _lex_number(self, line: int, col: int) -> Token:
        start = self._pos
        seen_dot = False
        while self._peek() in _DIGITS and self._peek():
            self._advance()
        if self._peek() == ".":
            seen_dot = True
            self._advance()
            while self._peek() in _DIGITS and self._peek():
                self._advance()
        if self._peek() in ("e", "E"):
            mark = self._pos
            self._advance()
            if self._peek() in ("+", "-"):
                self._advance()
            if self._peek() not in _DIGITS:
                # Not an exponent after all (e.g. "1e" followed by a name);
                # SQL-92 does not allow that adjacency, so report it.
                self._pos = mark
                raise self._error("malformed numeric literal")
            while self._peek() in _DIGITS and self._peek():
                self._advance()
            return Token(TokenType.APPROX, self._text[start:self._pos],
                         line, col)
        text = self._text[start:self._pos]
        if seen_dot:
            return Token(TokenType.DECIMAL, text, line, col)
        return Token(TokenType.INTEGER, text, line, col)

    def _lex_string(self, line: int, col: int) -> Token:
        self._advance()  # opening quote
        parts: list[str] = []
        while True:
            ch = self._peek()
            if not ch:
                raise SQLSyntaxError("unterminated string literal", line, col)
            if ch == "'":
                if self._peek(1) == "'":
                    parts.append("'")
                    self._advance(2)
                    continue
                self._advance()
                return Token(TokenType.STRING, "".join(parts), line, col)
            parts.append(self._advance())

    def _lex_quoted_ident(self, line: int, col: int) -> Token:
        self._advance()  # opening quote
        parts: list[str] = []
        while True:
            ch = self._peek()
            if not ch:
                raise SQLSyntaxError("unterminated delimited identifier",
                                     line, col)
            if ch == '"':
                if self._peek(1) == '"':
                    parts.append('"')
                    self._advance(2)
                    continue
                self._advance()
                if not parts:
                    raise SQLSyntaxError("empty delimited identifier",
                                         line, col)
                return Token(TokenType.QUOTED_IDENT, "".join(parts),
                             line, col)
            parts.append(self._advance())


def tokenize(text: str) -> list[Token]:
    """Tokenize *text*, returning an EOF-terminated token list."""
    return Lexer(text).tokenize()
