"""Named counters and histograms behind ``Connection.stats()``.

A ``MetricsRegistry`` creates metrics on first use, so instrument code
never has to pre-declare names. Counters are monotonically increasing
integers; histograms keep running count/sum/min/max plus a bounded
window of recent observations for quantiles, so per-stage latency
distributions stay O(1) in memory under sustained load.

Everything is guarded by locks: a shared ``Connection`` hammered from
many threads must not lose updates (tests/obs/test_thread_safety.py).
"""

from __future__ import annotations

import threading
from collections import deque

#: Observations retained per histogram for quantile estimation.
DEFAULT_WINDOW = 1024


class Counter:
    """A thread-safe monotonically increasing counter."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str):
        self.name = name
        self._lock = threading.Lock()
        self._value = 0

    def add(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    def increment(self) -> None:
        self.add(1)

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Counter({self.name}={self.value})"


class Histogram:
    """A thread-safe histogram of float observations (seconds).

    Keeps exact count/sum/min/max over the full lifetime and a bounded
    window of the most recent ``DEFAULT_WINDOW`` observations over
    which quantiles are computed.
    """

    __slots__ = ("name", "_lock", "_count", "_sum", "_min", "_max",
                 "_window")

    def __init__(self, name: str, window: int = DEFAULT_WINDOW):
        self.name = name
        self._lock = threading.Lock()
        self._count = 0
        self._sum = 0.0
        self._min: float | None = None
        self._max: float | None = None
        self._window: deque[float] = deque(maxlen=window)

    def observe(self, value: float) -> None:
        with self._lock:
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value
            self._window.append(value)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def quantile(self, q: float) -> float | None:
        """The *q*-quantile (0 <= q <= 1) of the retained window, by
        nearest-rank; None before the first observation."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        with self._lock:
            if not self._window:
                return None
            ordered = sorted(self._window)
        rank = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
        return ordered[rank]

    def summary(self) -> dict:
        """A snapshot dict: count, sum, min, max, mean, p50, p95, p99."""
        with self._lock:
            if self._count == 0:
                return {"count": 0}
            ordered = sorted(self._window)
            count, total = self._count, self._sum
            low, high = self._min, self._max

        def rank(q: float) -> float:
            index = min(len(ordered) - 1,
                        max(0, round(q * (len(ordered) - 1))))
            return ordered[index]

        return {
            "count": count,
            "sum": total,
            "min": low,
            "max": high,
            "mean": total / count,
            "p50": rank(0.50),
            "p95": rank(0.95),
            "p99": rank(0.99),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Histogram({self.name}, n={self.count})"


class MetricsRegistry:
    """A create-on-first-use registry of named counters and histograms."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                metric = self._counters[name] = Counter(name)
            return metric

    def histogram(self, name: str,
                  window: int = DEFAULT_WINDOW) -> Histogram:
        with self._lock:
            metric = self._histograms.get(name)
            if metric is None:
                metric = self._histograms[name] = Histogram(name, window)
            return metric

    def snapshot(self) -> dict:
        """All metric values at one moment: ``{"counters": {name: int},
        "histograms": {name: summary-dict}}``."""
        with self._lock:
            counters = list(self._counters.values())
            histograms = list(self._histograms.values())
        return {
            "counters": {c.name: c.value for c in counters},
            "histograms": {h.name: h.summary() for h in histograms},
        }

    def section(self, prefix: str) -> dict:
        """A snapshot of just the metrics whose names start with
        *prefix*, with the prefix stripped — e.g. ``section("server.")``
        yields the ``server`` section of a stats document without the
        caller enumerating counter names."""
        snapshot = self.snapshot()
        cut = len(prefix)
        return {
            "counters": {
                name[cut:]: value
                for name, value in snapshot["counters"].items()
                if name.startswith(prefix)
            },
            "histograms": {
                name[cut:]: summary
                for name, summary in snapshot["histograms"].items()
                if name.startswith(prefix)
            },
        }

    def reset(self) -> None:
        """Zero every metric in place. Instrumented code caches Counter
        and Histogram references, so the objects must survive a reset."""
        with self._lock:
            counters = list(self._counters.values())
            histograms = list(self._histograms.values())
        for counter in counters:
            with counter._lock:
                counter._value = 0
        for histogram in histograms:
            with histogram._lock:
                histogram._count = 0
                histogram._sum = 0.0
                histogram._min = None
                histogram._max = None
                histogram._window.clear()
