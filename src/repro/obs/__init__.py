"""Driver-wide observability (S9): tracing, metrics, and bounded caches.

The paper's translator is explicitly staged (section 3.4: parse →
validate/restructure → generate) and its driver caches fetched table
metadata (section 3.5); this package makes both observable and safe to
share across threads:

* ``Tracer``/``Span`` — nested spans with monotonic timings
  (``translate`` → ``stage1``/``stage2``/``stage3`` → per-table
  ``metadata.fetch``; ``execute`` → ``translate``/``evaluate``/
  ``materialize``). A disabled tracer is the default and costs one
  attribute check per instrumentation point.
* ``MetricsRegistry`` — named ``Counter``s and ``Histogram``s (cache
  hits/misses/evictions, queries translated, rows materialized,
  per-stage latency quantiles).
* ``LRUCache`` — the bounded, thread-safe, single-flight LRU behind the
  driver's statement cache, the metadata cache, and the runtime's
  compiled-module cache.

Everything here is dependency-free standard library.
"""

from .lru import LRUCache
from .metrics import Counter, Histogram, MetricsRegistry
from .trace import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "Counter",
    "Histogram",
    "LRUCache",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
]
