"""A bounded, thread-safe, single-flight LRU cache.

Replaces the driver's three formerly unbounded, unlocked dicts (the
statement cache, the metadata cache, and the runtime's compiled-module
cache). Design points:

* **Bounded** — ``capacity`` entries, least-recently-used eviction,
  with an eviction counter so operators can see a too-small cache.
  ``capacity=0`` disables caching entirely (every lookup is a miss and
  nothing is stored); that knob is how tests and benchmarks measure
  the uncached path.
* **Thread-safe** — one ``threading.Lock`` guards the ordered dict; a
  shared ``Connection`` may be hammered from many threads.
* **Single-flight** — ``get_or_load(key, loader)`` guarantees that
  concurrent misses on the same key run *loader* once: the first
  caller loads while the rest wait on an event and then reuse the
  loaded value. That is what makes "one metadata fetch per distinct
  table" hold under concurrency (tests/obs/test_thread_safety.py).

Stats (hits/misses/evictions) are always kept locally; pass a
``MetricsRegistry`` and a ``prefix`` to additionally publish them as
``{prefix}.hits`` / ``{prefix}.misses`` / ``{prefix}.evictions``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Hashable, Optional

from .metrics import MetricsRegistry


class _Flight:
    """One in-progress load that concurrent callers can wait on."""

    __slots__ = ("event", "value", "success")

    def __init__(self):
        self.event = threading.Event()
        self.value = None
        self.success = False


_MISSING = object()


class LRUCache:
    """A bounded thread-safe LRU map with single-flight loading."""

    def __init__(self, capacity: int,
                 registry: Optional[MetricsRegistry] = None,
                 prefix: str = "cache"):
        if capacity < 0:
            raise ValueError(f"cache capacity must be >= 0, got {capacity}")
        self._capacity = capacity
        self._lock = threading.Lock()
        self._data: OrderedDict = OrderedDict()
        self._inflight: dict = {}
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        if registry is not None:
            self._hit_counter = registry.counter(f"{prefix}.hits")
            self._miss_counter = registry.counter(f"{prefix}.misses")
            self._eviction_counter = registry.counter(f"{prefix}.evictions")
        else:
            self._hit_counter = None
            self._miss_counter = None
            self._eviction_counter = None

    # -- locked internals --------------------------------------------------

    def _record_hit_locked(self) -> None:
        self._hits += 1
        if self._hit_counter is not None:
            self._hit_counter.increment()

    def _record_miss_locked(self) -> None:
        self._misses += 1
        if self._miss_counter is not None:
            self._miss_counter.increment()

    def _store_locked(self, key: Hashable, value) -> None:
        if self._capacity == 0:
            return
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        while len(self._data) > self._capacity:
            self._data.popitem(last=False)
            self._evictions += 1
            if self._eviction_counter is not None:
                self._eviction_counter.increment()

    # -- mapping surface ---------------------------------------------------

    def get(self, key: Hashable, default=None):
        """Look *key* up, counting a hit or miss and refreshing recency."""
        with self._lock:
            value = self._data.get(key, _MISSING)
            if value is _MISSING:
                self._record_miss_locked()
                return default
            self._data.move_to_end(key)
            self._record_hit_locked()
            return value

    def put(self, key: Hashable, value) -> None:
        """Insert or update *key* (no hit/miss accounting)."""
        with self._lock:
            self._store_locked(key, value)

    def get_or_load(self, key: Hashable, loader: Callable[[], object]):
        """Return the cached value for *key*, loading it (once, even
        under concurrency) on a miss."""
        if self._capacity == 0:
            with self._lock:
                self._record_miss_locked()
            return loader()
        while True:
            with self._lock:
                value = self._data.get(key, _MISSING)
                if value is not _MISSING:
                    self._data.move_to_end(key)
                    self._record_hit_locked()
                    return value
                flight = self._inflight.get(key)
                if flight is None:
                    flight = self._inflight[key] = _Flight()
                    owner = True
                else:
                    owner = False
            if not owner:
                # Another thread is loading this key: wait, then reuse
                # its value (a hit — this call fetched nothing).
                flight.event.wait()
                if flight.success:
                    with self._lock:
                        if key in self._data:
                            self._data.move_to_end(key)
                        self._record_hit_locked()
                    return flight.value
                continue  # the load failed; retry (maybe as owner)
            try:
                value = loader()
            except BaseException:
                with self._lock:
                    self._inflight.pop(key, None)
                flight.event.set()
                raise
            with self._lock:
                self._record_miss_locked()
                self._store_locked(key, value)
                self._inflight.pop(key, None)
            flight.value = value
            flight.success = True
            flight.event.set()
            return value

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    # -- inspection --------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        """Membership without touching recency or stats."""
        with self._lock:
            return key in self._data

    def keys(self) -> set:
        """A snapshot of the cached keys."""
        with self._lock:
            return set(self._data)

    def copy(self) -> dict:
        """A shallow dict snapshot, eviction order preserved."""
        with self._lock:
            return dict(self._data)

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def hits(self) -> int:
        with self._lock:
            return self._hits

    @property
    def misses(self) -> int:
        with self._lock:
            return self._misses

    @property
    def evictions(self) -> int:
        with self._lock:
            return self._evictions

    def stats(self) -> dict:
        """One consistent snapshot of the cache's counters and size."""
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "size": len(self._data),
                "capacity": self._capacity,
            }
