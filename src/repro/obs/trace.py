"""Nested-span tracing with monotonic timings.

A ``Tracer`` hands out context-managed ``Span``s; spans opened while
another span is active on the same thread become its children, so one
traced ``Cursor.execute`` yields a tree::

    execute
      translate
        stage1
        stage2
          metadata.fetch (table=CUSTOMERS)
          metadata.fetch (table=PAYMENTS)
        stage3
      evaluate
        xquery.evaluate
      materialize

Span stacks are thread-local: threads sharing one ``Tracer`` (and one
``Connection``) each build their own trees. Completed root spans are
kept in a bounded deque guarded by a lock.

Timings come from :func:`repro.clock.monotonic` so tests can install a
deterministic tick source.
"""

from __future__ import annotations

import threading
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field

from .. import clock


@dataclass
class Span:
    """One timed operation, possibly with children."""

    name: str
    attributes: dict = field(default_factory=dict)
    start: float = 0.0
    end: float | None = None
    children: list["Span"] = field(default_factory=list)
    #: Point-in-time annotations (name, offset-seconds, attributes)
    #: attached via :meth:`Tracer.event` — e.g. a query cancellation
    #: observed mid-span.
    events: list[tuple] = field(default_factory=list)

    @property
    def duration(self) -> float:
        """Elapsed seconds (up to now if the span is still open)."""
        end = clock.monotonic() if self.end is None else self.end
        return end - self.start

    def find(self, name: str) -> list["Span"]:
        """All descendant spans (self included) named *name*, preorder."""
        found = [self] if self.name == name else []
        for child in self.children:
            found.extend(child.find(name))
        return found

    def render(self, indent: int = 0) -> str:
        """An indented text tree with millisecond durations."""
        pad = "  " * indent
        attrs = ""
        if self.attributes:
            inner = ", ".join(f"{k}={v}" for k, v in
                              self.attributes.items())
            attrs = f"  ({inner})"
        lines = [f"{pad}{self.name}  {self.duration * 1000:.3f} ms{attrs}"]
        for name, offset, attributes in self.events:
            detail = ""
            if attributes:
                inner = ", ".join(f"{k}={v}" for k, v in
                                  attributes.items())
                detail = f"  ({inner})"
            lines.append(f"{pad}  @ {name}  +{offset * 1000:.3f} ms"
                         f"{detail}")
        for child in self.children:
            lines.append(child.render(indent + 1))
        return "\n".join(lines)


class _NullContext:
    """A reusable no-op context manager — the cost of tracing-off."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc_info):
        return False


_NULL_CONTEXT = _NullContext()


class Tracer:
    """Produces nested spans; collects completed root spans.

    Disabled by default-constructed driver objects: ``span()`` then
    returns a shared no-op context manager, so instrumentation points
    cost one attribute check.
    """

    def __init__(self, enabled: bool = True, max_roots: int = 64):
        self.enabled = enabled
        self._lock = threading.Lock()
        self._local = threading.local()
        self._roots: deque[Span] = deque(maxlen=max_roots)

    # -- switching ---------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    # -- recording ---------------------------------------------------------

    def span(self, name: str, /, **attributes):
        """Open a span; a context manager yielding the Span (or None
        when tracing is off)."""
        if not self.enabled:
            return _NULL_CONTEXT
        return self._record(name, attributes)

    def event(self, name: str, /, **attributes) -> None:
        """Attach a point-in-time event to the innermost open span on
        this thread — or, when none is open (e.g. an error handler
        running after its span closed), to the most recent completed
        root. A no-op when tracing is off or no span exists, so
        instrumentation points never need to guard the call."""
        if not self.enabled:
            return
        stack = getattr(self._local, "stack", None)
        if stack:
            span = stack[-1]
        else:
            with self._lock:
                span = self._roots[-1] if self._roots else None
            if span is None:
                return
        span.events.append(
            (name, clock.monotonic() - span.start, attributes))

    @contextmanager
    def _record(self, name: str, attributes: dict):
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        span = Span(name=name, attributes=attributes,
                    start=clock.monotonic())
        parent = stack[-1] if stack else None
        if parent is not None:
            parent.children.append(span)
        stack.append(span)
        try:
            yield span
        finally:
            span.end = clock.monotonic()
            stack.pop()
            if parent is None:
                with self._lock:
                    self._roots.append(span)

    # -- inspection --------------------------------------------------------

    def roots(self) -> list[Span]:
        """Completed root spans, oldest first."""
        with self._lock:
            return list(self._roots)

    def last_root(self) -> Span | None:
        with self._lock:
            return self._roots[-1] if self._roots else None

    def clear(self) -> None:
        with self._lock:
            self._roots.clear()


class NullTracer(Tracer):
    """The always-off tracer components fall back to when none is
    given; ``enable()`` is a no-op so the shared singleton can never be
    switched on by accident."""

    def __init__(self):
        super().__init__(enabled=False, max_roots=1)

    def enable(self) -> None:  # pragma: no cover - guard
        pass

    def span(self, name: str, /, **attributes):
        return _NULL_CONTEXT


NULL_TRACER = NullTracer()
