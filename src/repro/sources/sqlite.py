"""SQLite-backed relational source with predicate/projection pushdown.

The closest thing the reproduction has to the paper's "relational
source behind a physical data service": rows live in a SQLite database
(file or ``:memory:``) and the engine's sargable conjuncts are
translated back into SQLite SQL so filtering happens inside the store.

Storage representation
----------------------
SQLite's type affinity would silently reshape some of our SQL-92
values, so column declarations are chosen to defeat it:

* ``DECIMAL(p,s)`` columns are declared ``DECIMAL_TEXT(p,s)`` — the
  ``TEXT`` substring (with no ``INT``) forces TEXT affinity, so
  ``Decimal("2500.50")`` round-trips byte-exact instead of collapsing
  to the REAL ``2500.5``. The decltype parser maps it back to DECIMAL.
* ``DATE``/``TIME``/``TIMESTAMP`` are stored as ISO-8601 text (their
  NUMERIC affinity leaves non-numeric-looking text alone). ISO text
  compares lexicographically in chronological order, so datetime
  predicates remain pushable.

Pushdown gate
-------------
``supports_predicate`` refuses any conjunct whose native SQLite
comparison could disagree with the engine's XQuery semantics:
values must match the column's type category exactly (no bool-as-int,
no datetime-as-date), and DECIMAL/REAL/DOUBLE comparisons are never
pushed (DECIMAL is stored as text; float equality is a trap). Refused
conjuncts simply fall back to a full scan plus the engine's residual
filter — pushdown is advisory, so correctness never depends on it.

Write path
----------
Since PR 9 the source accepts mutations natively: each statement's
batch runs inside a ``SAVEPOINT`` (statement atomicity), and the
transaction surface (:meth:`~SQLiteSource.begin_txn` et al.) nests an
outer savepoint around them, so multi-statement rollback undoes every
row exactly. Engine row ordinals are mapped onto physical rows through
``SELECT rowid ... ORDER BY rowid`` — the same canonical order every
scan yields.
"""

from __future__ import annotations

import datetime
import sqlite3
import threading
from decimal import Decimal
from typing import Optional, Sequence

from ..errors import CatalogError, OperationalError, \
    SourceUnavailableError, UnknownArtifactError
from ..sql.types import (
    BIGINT,
    DOUBLE,
    INTEGER,
    REAL,
    SMALLINT,
    SQLType,
    VARCHAR,
)
from .spi import (
    COMPARISON_OPS,
    ColumnStats,
    DataSource,
    MutationResult,
    PartitionSpec,
    Predicate,
    Scan,
    ScanBatches,
    ScanRequest,
    SourceCapabilities,
    TableStatistics,
)

_OP_SQL = {"eq": "=", "ne": "<>", "lt": "<", "le": "<=",
           "gt": ">", "ge": ">="}

#: Column type kinds whose comparisons are safe to evaluate in SQLite
#: (given a value of the matching Python type; see _value_matches).
_PUSHABLE_KINDS = frozenset({"SMALLINT", "INTEGER", "BIGINT",
                             "CHAR", "VARCHAR",
                             "DATE", "TIME", "TIMESTAMP"})

_INT_KINDS = frozenset({"SMALLINT", "INTEGER", "BIGINT"})


def _quote(identifier: str) -> str:
    return '"' + identifier.replace('"', '""') + '"'


def _decltype_for(sql_type: SQLType) -> str:
    """The SQLite column declaration that preserves our value model."""
    kind = sql_type.kind
    if kind == "DECIMAL":
        if sql_type.precision is not None and sql_type.scale is not None:
            return f"DECIMAL_TEXT({sql_type.precision},{sql_type.scale})"
        if sql_type.precision is not None:
            return f"DECIMAL_TEXT({sql_type.precision})"
        return "DECIMAL_TEXT"
    if kind in ("CHAR", "VARCHAR") and sql_type.length is not None:
        return f"{kind}({sql_type.length})"
    return kind


def _type_from_decltype(decl: Optional[str]) -> SQLType:
    """Recover a SQLType from a SQLite column declaration.

    Understands our own ``_decltype_for`` output plus the common SQLite
    spellings of external databases; anything unrecognized degrades to
    VARCHAR (always safe: values pass through as text).
    """
    if not decl:
        return VARCHAR
    text = decl.strip().upper()
    base, _sep, arg_text = text.partition("(")
    base = base.strip()
    args: list[int] = []
    for part in arg_text.rstrip(")").split(","):
        part = part.strip()
        if part.isdigit():
            args.append(int(part))
    if base in ("DECIMAL_TEXT", "DECIMAL", "DEC", "NUMERIC"):
        return SQLType("DECIMAL",
                       precision=args[0] if args else None,
                       scale=args[1] if len(args) > 1 else None)
    if "INT" in base:
        if base == "SMALLINT":
            return SMALLINT
        if base == "BIGINT":
            return BIGINT
        return INTEGER
    if base == "DATE":
        return SQLType("DATE")
    if base == "TIME":
        return SQLType("TIME")
    if base in ("TIMESTAMP", "DATETIME"):
        return SQLType("TIMESTAMP")
    if "CHAR" in base or "CLOB" in base or base == "TEXT":
        kind = "CHAR" if base in ("CHAR", "CHARACTER") else "VARCHAR"
        return SQLType(kind, length=args[0] if args else None)
    if "REAL" in base:
        return REAL
    if "FLOA" in base or "DOUB" in base:
        return DOUBLE
    return VARCHAR


def _encode(value: object, sql_type: SQLType) -> object:
    """Python value -> its SQLite storage representation."""
    if value is None:
        return None
    kind = sql_type.kind
    if kind == "DECIMAL":
        return str(value)
    if kind in ("DATE", "TIME", "TIMESTAMP"):
        return value.isoformat()
    return value


def _decode(value: object, sql_type: SQLType) -> object:
    """SQLite storage representation -> Python value."""
    if value is None:
        return None
    kind = sql_type.kind
    if kind in _INT_KINDS:
        return int(value)
    if kind == "DECIMAL":
        return Decimal(str(value))
    if kind in ("REAL", "DOUBLE"):
        return float(value)
    if kind == "DATE":
        return datetime.date.fromisoformat(str(value))
    if kind == "TIME":
        return datetime.time.fromisoformat(str(value))
    if kind == "TIMESTAMP":
        return datetime.datetime.fromisoformat(str(value))
    return str(value)


def _value_matches(value: object, sql_type: SQLType) -> bool:
    """True when comparing *value* against a *sql_type* column in
    SQLite agrees with the engine's comparison semantics."""
    kind = sql_type.kind
    if kind in _INT_KINDS:
        return isinstance(value, int) and not isinstance(value, bool)
    if kind in ("CHAR", "VARCHAR"):
        # SQLite's BINARY collation compares UTF-8 bytes, which orders
        # identically to codepoint comparison.
        return isinstance(value, str)
    if kind == "DATE":
        return (isinstance(value, datetime.date)
                and not isinstance(value, datetime.datetime))
    if kind == "TIME":
        return isinstance(value, datetime.time)
    if kind == "TIMESTAMP":
        return isinstance(value, datetime.datetime)
    return False


class SQLiteSource(DataSource):
    """A :class:`DataSource` over a SQLite database.

    One shared connection guarded by a lock (``check_same_thread`` off
    so any thread may scan); rows stream in ``fetchmany`` batches with
    the lock released between batches. Scan order is pinned with
    ``ORDER BY rowid`` so repeated scans are stable.
    """

    def __init__(self, path: str = ":memory:", name: str = "sqlite",
                 batch_size: int = 256):
        super().__init__(name)
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.path = path
        self.batch_size = batch_size
        self._lock = threading.RLock()
        self._connection = sqlite3.connect(path, check_same_thread=False)
        # Autocommit at the sqlite3-module level: the write path manages
        # atomicity itself with SAVEPOINTs (which work identically inside
        # and outside an explicit transaction), so the module's implicit
        # BEGIN-before-DML would only fight it.
        self._connection.isolation_level = None
        self._columns_cache: dict[str, list[tuple[str, SQLType]]] = {}
        self._in_txn = False
        #: Bumped on every transaction rollback; part of the version
        #: token (see :meth:`version`) because ``total_changes`` alone
        #: cannot distinguish the restored state from the undone one.
        self._mutation_epoch = 0

    @classmethod
    def from_storage(cls, storage, path: str = ":memory:",
                     name: str = "sqlite",
                     batch_size: int = 256) -> "SQLiteSource":
        """Materialize an in-memory :class:`Storage` into SQLite."""
        source = cls(path=path, name=name, batch_size=batch_size)
        for table_name in storage.table_names():
            table = storage.table(table_name)
            source.create_table(table_name, table.columns)
            source.insert_rows(table_name, table.rows)
        return source

    # -- loading -----------------------------------------------------------

    def create_table(self, table: str,
                     columns: Sequence[tuple[str, SQLType]]) -> None:
        decls = ", ".join(f"{_quote(n)} {_decltype_for(t)}"
                          for n, t in columns)
        with self._lock:
            self._check_open()
            try:
                self._connection.execute(
                    f"CREATE TABLE {_quote(table)} ({decls})")
            except sqlite3.OperationalError as exc:
                raise CatalogError(str(exc)) from None
            self._connection.commit()
            self._columns_cache.pop(table, None)

    def insert_rows(self, table: str, rows) -> None:
        columns = self.columns(table)
        placeholders = ", ".join("?" for _ in columns)
        sql = f"INSERT INTO {_quote(table)} VALUES ({placeholders})"
        types = [t for _n, t in columns]
        encoded = [tuple(_encode(v, t) for v, t in zip(row, types))
                   for row in rows]
        with self._lock:
            self._check_open()
            self._connection.executemany(sql, encoded)
            self._connection.commit()

    # -- metadata ----------------------------------------------------------

    def tables(self) -> list[str]:
        with self._lock:
            self._check_open()
            cursor = self._connection.execute(
                "SELECT name FROM sqlite_master WHERE type = 'table' "
                "AND name NOT LIKE 'sqlite_%' ORDER BY name")
            return [row[0] for row in cursor.fetchall()]

    def columns(self, table: str) -> list[tuple[str, SQLType]]:
        with self._lock:
            self._check_open()
            cached = self._columns_cache.get(table)
            if cached is not None:
                return list(cached)
            cursor = self._connection.execute(
                f"PRAGMA table_info({_quote(table)})")
            info = cursor.fetchall()
            if not info:
                raise UnknownArtifactError(
                    f"no table {table} in source {self.name!r}")
            columns = [(row[1], _type_from_decltype(row[2]))
                       for row in info]
            self._columns_cache[table] = columns
            return list(columns)

    def version(self, table: str) -> object:
        """Connection-global change token: ``PRAGMA data_version``
        (bumped when *another* connection commits), ``total_changes``
        (bumped by this connection's own writes), and the rollback
        epoch. The epoch is what keeps tokens *unique across distinct
        visible states*: ``ROLLBACK TO`` does not advance
        ``total_changes``, so without it the post-rollback state would
        carry the same token as the mid-transaction state it undid —
        and any token-guarded cache would happily serve the rolled-back
        rows."""
        with self._lock:
            self._check_open()
            data_version = self._connection.execute(
                "PRAGMA data_version").fetchone()[0]
            return (data_version, self._connection.total_changes,
                    self._mutation_epoch)

    def statistics(self, table: str) -> Optional[TableStatistics]:
        """Exact statistics via native SQL aggregates (one pass per
        column inside SQLite, no rows shipped to Python).

        ``low``/``high`` are omitted for DECIMAL columns — they are
        stored as text and MIN/MAX would compare lexicographically.
        """
        columns = self.columns(table)
        with self._lock:
            self._check_open()
            row_count = self._connection.execute(
                f"SELECT COUNT(*) FROM {_quote(table)}").fetchone()[0]
            stats: dict[str, ColumnStats] = {}
            for name, sql_type in columns:
                quoted = _quote(name)
                ranged = sql_type.kind != "DECIMAL"
                extrema = f", MIN({quoted}), MAX({quoted})" if ranged \
                    else ""
                non_null, ndv, *bounds = self._connection.execute(
                    f"SELECT COUNT({quoted}), COUNT(DISTINCT {quoted})"
                    f"{extrema} FROM {_quote(table)}").fetchone()
                low = _decode(bounds[0], sql_type) if ranged else None
                high = _decode(bounds[1], sql_type) if ranged else None
                null_fraction = ((row_count - non_null) / row_count
                                 if row_count else 0.0)
                stats[name] = ColumnStats(ndv=ndv, low=low, high=high,
                                          null_fraction=null_fraction)
        return TableStatistics(row_count=row_count, columns=stats,
                               sampled=False)

    # -- capabilities ------------------------------------------------------

    def capabilities(self) -> SourceCapabilities:
        return SourceCapabilities(
            predicate_pushdown=True,
            projection_pushdown=True,
            predicate_ops=COMPARISON_OPS | {"in", "isnull", "notnull"})

    def supports_predicate(self, table: str, predicate: Predicate) -> bool:
        try:
            columns = dict(self.columns(table))
        except UnknownArtifactError:
            return False
        sql_type = columns.get(predicate.column)
        if sql_type is None:
            return False
        if predicate.unary:
            return True
        if sql_type.kind not in _PUSHABLE_KINDS:
            return False
        if predicate.op == "in":
            if (not isinstance(predicate.value, (tuple, list))
                    or not predicate.value):
                return False
            return all(_value_matches(v, sql_type)
                       for v in predicate.value)
        return _value_matches(predicate.value, sql_type)

    # -- scanning ----------------------------------------------------------

    def _scan_sql(self, table: str, request: Optional[ScanRequest],
                  carving: Optional[tuple[int, int]] = None):
        """Build the scan SELECT. *carving* is an inclusive rowid range
        appended as an extra WHERE conjunct; it never counts toward
        ``pushed`` (partition carving is exact by contract, while
        ``pushed`` reports only the advisory request predicates)."""
        all_columns = self.columns(table)
        by_name = dict(all_columns)
        out_columns = all_columns
        predicates: tuple[Predicate, ...] = ()
        if request is not None:
            if request.columns:
                wanted = [c for c in request.columns if c in by_name]
                if wanted:
                    out_columns = [(c, by_name[c]) for c in wanted]
            predicates = tuple(
                p for p in request.predicates
                if self.supports_predicate(table, p))
        select_list = ", ".join(_quote(n) for n, _t in out_columns)
        sql = f"SELECT {select_list} FROM {_quote(table)}"
        params: list[object] = []
        clauses = []
        for p in predicates:
            if p.op == "isnull":
                clauses.append(f"{_quote(p.column)} IS NULL")
            elif p.op == "notnull":
                clauses.append(f"{_quote(p.column)} IS NOT NULL")
            elif p.op == "in":
                marks = ", ".join("?" for _ in p.value)
                clauses.append(f"{_quote(p.column)} IN ({marks})")
                params.extend(_encode(v, by_name[p.column])
                              for v in p.value)
            else:
                clauses.append(f"{_quote(p.column)} {_OP_SQL[p.op]} ?")
                params.append(_encode(p.value, by_name[p.column]))
        if carving is not None:
            clauses.append("rowid >= ? AND rowid <= ?")
            params.extend(carving)
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY rowid"
        return sql, params, out_columns, bool(predicates)

    def scan(self, table: str, request: Optional[ScanRequest] = None,
             context=None) -> Scan:
        self._check_open()
        sql, params, out_columns, pushed = self._scan_sql(table, request)
        out_types = [t for _n, t in out_columns]
        return Scan(columns=list(out_columns),
                    rows=self._iter_rows(sql, params, out_types, context),
                    pushed=pushed)

    def scan_batches(self, table: str,
                     request: Optional[ScanRequest] = None,
                     context=None, batch_size: int = 1024) -> ScanBatches:
        """Batched scan: same SQL/decode path as :meth:`scan`, but rows
        are transposed into column lists and the lifecycle tick runs
        once per batch (``tick_rows``) instead of once per row."""
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        result = self.scan(table, request, None)

        def batches(rows=result.rows):
            block: list[tuple] = []
            for row in rows:
                block.append(row)
                if len(block) >= batch_size:
                    if context is not None:
                        context.tick_rows(len(block))
                    yield [list(col) for col in zip(*block)]
                    block = []
            if block:
                if context is not None:
                    context.tick_rows(len(block))
                yield [list(col) for col in zip(*block)]

        return ScanBatches(columns=result.columns, batches=batches(),
                           pushed=result.pushed)

    # -- writing -----------------------------------------------------------

    def supports_write(self, table: str) -> bool:
        try:
            self.columns(table)
        except UnknownArtifactError:
            return False
        return True

    def _rowids(self, table: str) -> list[int]:
        """Rowids in canonical scan order (ORDER BY rowid — the same
        order every scan yields), for mapping engine ordinals onto
        physical rows."""
        cursor = self._connection.execute(
            f"SELECT rowid FROM {_quote(table)} ORDER BY rowid")
        return [row[0] for row in cursor.fetchall()]

    def apply_mutations(self, mutations, expected_version=None
                        ) -> MutationResult:
        """Apply one statement's mutations inside a ``SAVEPOINT``:
        released on success, rolled back to on any failure, so the
        statement is atomic whether or not an explicit transaction
        (:meth:`begin_txn`) is open around it."""
        with self._lock:
            self._check_open()
            if expected_version is not None and mutations:
                current = self.version(mutations[0].table)
                if expected_version != current:
                    raise OperationalError(
                        f"table {mutations[0].table!r} changed under the "
                        f"statement (version {expected_version!r} -> "
                        f"{current!r}); re-plan and retry")
            rowcount = 0
            lastrowid: Optional[int] = None
            self._connection.execute("SAVEPOINT repro_stmt")
            try:
                for mutation in mutations:
                    table = mutation.table
                    types = [t for _n, t in self.columns(table)]
                    if mutation.kind == "insert":
                        marks = ", ".join("?" for _ in types)
                        sql = (f"INSERT INTO {_quote(table)} "
                               f"VALUES ({marks})")
                        for values in mutation.rows:
                            cursor = self._connection.execute(
                                sql, tuple(_encode(v, t) for v, t
                                           in zip(values, types)))
                            lastrowid = cursor.lastrowid
                            rowcount += 1
                    elif mutation.kind == "update":
                        rowids = self._rowids(table)
                        names = [n for n, _t in self.columns(table)]
                        sets = ", ".join(f"{_quote(n)} = ?"
                                         for n in names)
                        sql = (f"UPDATE {_quote(table)} SET {sets} "
                               f"WHERE rowid = ?")
                        for ordinal, new_row in mutation.changes:
                            if not 0 <= ordinal < len(rowids):
                                raise OperationalError(
                                    f"row ordinal {ordinal} out of range "
                                    f"for table {table!r} (stale plan?)")
                            params = [_encode(v, t) for v, t
                                      in zip(new_row, types)]
                            params.append(rowids[ordinal])
                            self._connection.execute(sql, params)
                            rowcount += 1
                    else:  # delete
                        rowids = self._rowids(table)
                        doomed = []
                        for ordinal in set(mutation.ordinals):
                            if not 0 <= ordinal < len(rowids):
                                raise OperationalError(
                                    f"row ordinal {ordinal} out of range "
                                    f"for table {table!r} (stale plan?)")
                            doomed.append(rowids[ordinal])
                        if doomed:
                            marks = ", ".join("?" for _ in doomed)
                            self._connection.execute(
                                f"DELETE FROM {_quote(table)} "
                                f"WHERE rowid IN ({marks})", doomed)
                        rowcount += len(doomed)
            except sqlite3.Error as exc:
                self._connection.execute("ROLLBACK TO repro_stmt")
                self._connection.execute("RELEASE repro_stmt")
                raise OperationalError(str(exc)) from None
            except Exception:
                self._connection.execute("ROLLBACK TO repro_stmt")
                self._connection.execute("RELEASE repro_stmt")
                raise
            self._connection.execute("RELEASE repro_stmt")
            return MutationResult(rowcount=rowcount, lastrowid=lastrowid)

    def begin_txn(self) -> None:
        with self._lock:
            self._check_open()
            if self._in_txn:
                raise OperationalError(
                    f"source {self.name!r} already has an open "
                    f"transaction")
            self._connection.execute("SAVEPOINT repro_txn")
            self._in_txn = True

    def commit_txn(self) -> None:
        with self._lock:
            self._check_open()
            if not self._in_txn:
                raise OperationalError(
                    f"source {self.name!r} has no open transaction")
            # Releasing the outermost savepoint commits.
            self._connection.execute("RELEASE repro_txn")
            self._in_txn = False

    def rollback_txn(self) -> None:
        """Undo the open transaction. Rows are restored exactly; the
        version token is *not* restored — it moves forward (the
        rollback epoch bumps), which is the safe direction: caches
        keyed on in-transaction tokens die, caches keyed on
        pre-transaction tokens rebuild spuriously at worst, and a stale
        read is impossible either way."""
        with self._lock:
            self._check_open()
            if not self._in_txn:
                raise OperationalError(
                    f"source {self.name!r} has no open transaction")
            self._connection.execute("ROLLBACK TO repro_txn")
            self._connection.execute("RELEASE repro_txn")
            self._in_txn = False
            self._mutation_epoch += 1

    # -- partitioning ------------------------------------------------------

    def partitions(self, table: str,
                   request: Optional[ScanRequest] = None,
                   target: int = 2) -> Optional[list[PartitionSpec]]:
        """Inclusive rowid ranges carved from the table's rowid span.

        Rowid gaps (from deletes) only skew partition sizes, never
        correctness: the ranges tile [MIN(rowid), MAX(rowid)] exactly,
        and every scan — full or partitioned — orders by rowid, so the
        concatenation contract holds.
        """
        self._check_open()
        if target < 2:
            return None
        with self._lock:
            self._check_open()
            low, high, count = self._connection.execute(
                f"SELECT MIN(rowid), MAX(rowid), COUNT(*) "
                f"FROM {_quote(table)}").fetchone()
        if count < 2 or low is None:
            return None
        pieces = min(target, count, high - low + 1)
        if pieces < 2:
            return None
        span = high - low + 1
        step = span / pieces
        bounds = [low + round(i * step) for i in range(pieces)]
        bounds.append(high + 1)
        return [PartitionSpec(table=table, index=i, count=pieces,
                              kind="rowid", lower=bounds[i],
                              upper=bounds[i + 1] - 1)
                for i in range(pieces)]

    def scan_partition(self, spec: PartitionSpec,
                       request: Optional[ScanRequest] = None,
                       context=None) -> Scan:
        self._check_open()
        if spec.kind != "rowid":
            raise ValueError(f"unsupported partition kind {spec.kind!r}")
        sql, params, out_columns, pushed = self._scan_sql(
            spec.table, request,
            carving=(int(spec.lower), int(spec.upper)))
        out_types = [t for _n, t in out_columns]
        return Scan(columns=list(out_columns),
                    rows=self._iter_rows(sql, params, out_types, context),
                    pushed=pushed)

    def scan_partition_batches(self, spec: PartitionSpec,
                               request: Optional[ScanRequest] = None,
                               context=None,
                               batch_size: int = 1024) -> ScanBatches:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        result = self.scan_partition(spec, request, None)

        def batches(rows=result.rows):
            block: list[tuple] = []
            for row in rows:
                block.append(row)
                if len(block) >= batch_size:
                    if context is not None:
                        context.tick_rows(len(block))
                    yield [list(col) for col in zip(*block)]
                    block = []
            if block:
                if context is not None:
                    context.tick_rows(len(block))
                yield [list(col) for col in zip(*block)]

        return ScanBatches(columns=result.columns, batches=batches(),
                           pushed=result.pushed)

    def _iter_rows(self, sql, params, out_types, context):
        with self._lock:
            self._check_open()
            cursor = self._connection.execute(sql, params)
        try:
            while True:
                with self._lock:
                    if self._closed:
                        raise SourceUnavailableError(
                            f"source {self.name!r} is closed")
                    batch = cursor.fetchmany(self.batch_size)
                if not batch:
                    return
                for raw in batch:
                    if context is not None:
                        context.tick()
                    yield tuple(_decode(v, t)
                                for v, t in zip(raw, out_types))
        finally:
            try:
                cursor.close()
            except sqlite3.ProgrammingError:
                pass  # connection already closed

    # -- lifecycle ---------------------------------------------------------

    def reset_after_fork(self) -> None:
        """Make the forked copy safe to scan from a worker process.

        The inherited lock may have been held mid-fork, so it is
        replaced outright. File-backed databases get a fresh connection
        (SQLite file handles must never be shared across a fork); the
        inherited handle is abandoned, not closed — closing it could
        flush shared journal state out from under the parent. For
        ``:memory:`` the forked pages *are* the database — a fresh
        connection would be empty — so the copy-on-write snapshot is
        kept; workers are read-only and staleness is caught by version
        tokens.
        """
        self._lock = threading.RLock()
        if self.path != ":memory:" and not self._closed:
            self._connection = sqlite3.connect(
                self.path, check_same_thread=False)
            self._connection.isolation_level = None

    def close(self) -> None:
        with self._lock:
            if not self._closed:
                self._connection.close()
            super().close()
