"""In-memory table source: the original backend, refactored onto the SPI.

Wraps :class:`repro.engine.table.Storage` so the runtime's scan path is
uniform across backends. The ``version`` token is the table's
``generation`` counter, bumped by every mutation (insert, and the write
path's copy-on-write row swaps).

Since PR 5 the source supports *secondary hash indexes*: equality and
IN-list predicates may be pushed down, answered by a lazily-built
``{value: [row_index, ...]}`` map per (table, column). Index use follows
the SPI's "sources only shrink scans" contract — pushed predicates stay
in the compiled plan as residual filters, the index only narrows which
rows are streamed. Two guards keep this strictly a win:

* **type exactness** — a probe value is only accepted when Python's
  hash/``==`` agree with the engine's comparison semantics for the
  column's declared type (int against INTEGER kinds, str against
  CHAR/VARCHAR, exact date/time/datetime matches, int/Decimal against
  DECIMAL). Anything else (floats, bools, cross-type probes) is
  declined so the residual filter — and its type errors — behave
  exactly as without pushdown.
* **access-path selection** — when the source's own statistics estimate
  the probe would match more than ``index_max_fraction`` of the table,
  the predicate is declined and the engine keeps its cached
  element-tree full scan, which is faster for unselective predicates.

Indexes and statistics are version-guarded: a stale token drops the
cached structure and it is rebuilt from current rows on next use.

Since PR 9 the source is *writable*: :meth:`~TableSource.apply_mutations`
applies one statement's inserts/updates/deletes copy-on-write — a new
row list is built and swapped in via :meth:`Table.replace_rows`, so
in-flight scans keep reading the snapshot they started on. Transactions
(:meth:`~TableSource.begin_txn` et al.) snapshot each touched table's
``(rows, generation)`` pair at first write; rollback restores both, so
the version token provably returns to its pre-transaction value.
"""

from __future__ import annotations

import datetime
from decimal import Decimal
from typing import Optional

from ..engine.table import Storage, coerce_value
from ..errors import OperationalError
from ..sql.types import SQLType
from .spi import (
    DataSource,
    MutationResult,
    PartitionSpec,
    Predicate,
    Scan,
    ScanBatches,
    ScanRequest,
    SourceCapabilities,
    TableStatistics,
    compute_statistics,
)

_INT_KINDS = frozenset({"SMALLINT", "INTEGER", "BIGINT"})
_CHAR_KINDS = frozenset({"CHAR", "VARCHAR"})


def _probe_value_ok(value: object, sql_type: SQLType) -> bool:
    """True when hashing/comparing *value* against stored values of
    *sql_type* matches the engine's equality semantics exactly."""
    if isinstance(value, bool):  # bool is an int subclass; engine treats
        return False             # it as a distinct category
    kind = sql_type.kind
    if kind in _INT_KINDS:
        return isinstance(value, int)
    if kind in _CHAR_KINDS:
        return isinstance(value, str)
    if kind == "DECIMAL":
        # int/Decimal hash and compare exactly in Python, matching the
        # engine's exact-numeric equality; floats do not.
        return isinstance(value, (int, Decimal))
    if kind == "DATE":
        return (isinstance(value, datetime.date)
                and not isinstance(value, datetime.datetime))
    if kind == "TIME":
        return isinstance(value, datetime.time)
    if kind == "TIMESTAMP":
        return isinstance(value, datetime.datetime)
    return False  # REAL/DOUBLE/BOOLEAN: no exact hash-equality story


class TableSource(DataSource):
    """A :class:`DataSource` over an in-process :class:`Storage`."""

    #: Tables smaller than this are never indexed — the engine's cached
    #: element trees beat an index build + per-query element rebuild on
    #: small tables (and the demo benchmarks pin that path's speed).
    index_min_rows: int = 256
    #: Decline probes estimated to match more than this fraction of the
    #: table; a wide scan through the index is slower than the cached
    #: full scan.
    index_max_fraction: float = 0.25

    def __init__(self, storage: Storage, name: str = "memory",
                 index_min_rows: Optional[int] = None,
                 index_max_fraction: Optional[float] = None):
        super().__init__(name)
        self.storage = storage
        if index_min_rows is not None:
            self.index_min_rows = index_min_rows
        if index_max_fraction is not None:
            self.index_max_fraction = index_max_fraction
        # (table, column) -> (version_token, {value: [row_index, ...]})
        self._indexes: dict[tuple[str, str], tuple[object, dict]] = {}
        # table -> (version_token, TableStatistics)
        self._statistics: dict[str, tuple[object, TableStatistics]] = {}
        # table -> (rows list ref, generation) pre-transaction snapshots;
        # None when no transaction is open.
        self._txn: Optional[dict[str, tuple[list, int]]] = None

    def tables(self) -> list[str]:
        self._check_open()
        return self.storage.table_names()

    def columns(self, table: str) -> list[tuple[str, SQLType]]:
        self._check_open()
        return list(self.storage.table(table).columns)

    def version(self, table: str) -> object:
        # The generation counter moves on every mutation — unlike the
        # old row-count token, UPDATE cannot slip past it.
        return self.storage.table(table).generation

    def statistics(self, table: str) -> Optional[TableStatistics]:
        self._check_open()
        physical = self.storage.table(table)
        token = physical.generation
        cached = self._statistics.get(table)
        if cached is not None and cached[0] == token:
            return cached[1]
        stats = compute_statistics(physical.columns, physical.rows)
        self._statistics[table] = (token, stats)
        return stats

    def capabilities(self) -> SourceCapabilities:
        return SourceCapabilities(
            predicate_pushdown=True,
            predicate_ops=frozenset({"eq", "in"}))

    def supports_predicate(self, table: str, predicate: Predicate) -> bool:
        if predicate.op not in ("eq", "in"):
            return False
        physical = self.storage.table(table)
        sql_type = dict(physical.columns).get(predicate.column)
        if sql_type is None:
            return False
        if predicate.op == "in":
            if (not isinstance(predicate.value, (tuple, list))
                    or not predicate.value):
                return False
            values = tuple(predicate.value)
        else:
            values = (predicate.value,)
        if not all(_probe_value_ok(v, sql_type) for v in values):
            return False
        if len(physical.rows) < self.index_min_rows:
            return False
        stats = self.statistics(table)
        column = stats.column(predicate.column) if stats else None
        if column is not None and column.ndv:
            estimated = stats.row_count / column.ndv * len(values)
            if estimated > self.index_max_fraction * stats.row_count:
                return False
        return True

    def scan(self, table: str, request: Optional[ScanRequest] = None,
             context=None) -> Scan:
        self._check_open()
        physical = self.storage.table(table)
        predicates = tuple(
            p for p in (request.predicates if request is not None else ())
            if self.supports_predicate(table, p))
        if not predicates:
            return Scan(columns=list(physical.columns),
                        rows=self._iter_rows(physical, context),
                        pushed=False)
        # Probe the index on the most selective conjunct; apply the rest
        # inline (all accepted conjuncts are exact-typed eq/in, so plain
        # Python comparison matches engine semantics).
        probe = self._most_selective(table, predicates)
        index, built = self._index(table, probe.column, physical)
        if probe.op == "eq":
            indices = list(index.get(probe.value, ()))
        else:
            hit: set[int] = set()
            for value in probe.value:
                hit.update(index.get(value, ()))
            indices = sorted(hit)  # restore physical scan order
        remaining = tuple(p for p in predicates if p is not probe)
        positions = {name: i for i, (name, _) in enumerate(physical.columns)}
        return Scan(columns=list(physical.columns),
                    rows=self._iter_indexed(physical, indices, remaining,
                                            positions, context),
                    pushed=True, index_used=True, index_built=built)

    def scan_batches(self, table: str,
                     request: Optional[ScanRequest] = None,
                     context=None, batch_size: int = 1024) -> ScanBatches:
        """Columnar fast path: slice the stored row list directly.

        Only the no-pushdown shape is specialized — an indexed scan
        already narrows the row set, so the generic adapter's transpose
        costs little there. Ticks run at batch granularity via
        ``tick_rows``; staleness (``close()`` mid-scan) is re-checked
        per batch, matching the row path's per-row ``_check_open``.
        """
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self._check_open()
        physical = self.storage.table(table)
        predicates = tuple(
            p for p in (request.predicates if request is not None else ())
            if self.supports_predicate(table, p))
        if predicates:
            return super().scan_batches(table, request, context, batch_size)

        def batches(rows=physical.rows):
            for start in range(0, len(rows), batch_size):
                self._check_open()
                block = rows[start:start + batch_size]
                if context is not None:
                    context.tick_rows(len(block))
                yield [list(col) for col in zip(*block)]

        return ScanBatches(columns=list(physical.columns),
                           batches=batches(), pushed=False)

    # -- writing -----------------------------------------------------------

    def supports_write(self, table: str) -> bool:
        return table in self.storage

    def apply_mutations(self, mutations, expected_version=None
                        ) -> MutationResult:
        """Copy-on-write: build each touched table's new row list in
        full, then swap them all in. A failure part-way through building
        leaves every table untouched — statement-level atomicity falls
        out of never mutating a visible list in place."""
        self._check_open()
        if expected_version is not None and mutations:
            current = self.storage.table(mutations[0].table).generation
            if expected_version != current:
                raise OperationalError(
                    f"table {mutations[0].table!r} changed under the "
                    f"statement (version {expected_version!r} -> "
                    f"{current!r}); re-plan and retry")
        staged: dict[str, list] = {}
        rowcount = 0
        lastrowid: Optional[int] = None
        for mutation in mutations:
            physical = self.storage.table(mutation.table)
            rows = staged.get(mutation.table)
            if rows is None:
                rows = staged[mutation.table] = list(physical.rows)
            if mutation.kind == "insert":
                for values in mutation.rows:
                    rows.append(tuple(
                        coerce_value(v, t) for v, (_n, t)
                        in zip(values, physical.columns)))
                    rowcount += 1
                lastrowid = len(rows)
            elif mutation.kind == "update":
                for ordinal, new_row in mutation.changes:
                    if not 0 <= ordinal < len(rows):
                        raise OperationalError(
                            f"row ordinal {ordinal} out of range for "
                            f"table {mutation.table!r} (stale plan?)")
                    rows[ordinal] = tuple(
                        coerce_value(v, t) for v, (_n, t)
                        in zip(new_row, physical.columns))
                    rowcount += 1
            else:  # delete
                doomed = set(mutation.ordinals)
                for ordinal in doomed:
                    if not 0 <= ordinal < len(rows):
                        raise OperationalError(
                            f"row ordinal {ordinal} out of range for "
                            f"table {mutation.table!r} (stale plan?)")
                staged[mutation.table] = [
                    row for i, row in enumerate(rows) if i not in doomed]
                rowcount += len(doomed)
        for table, rows in staged.items():
            physical = self.storage.table(table)
            if self._txn is not None and table not in self._txn:
                self._txn[table] = (physical.rows, physical.generation)
            physical.replace_rows(rows)
        return MutationResult(rowcount=rowcount, lastrowid=lastrowid)

    def begin_txn(self) -> None:
        self._check_open()
        if self._txn is not None:
            raise OperationalError(
                f"source {self.name!r} already has an open transaction")
        self._txn = {}

    def commit_txn(self) -> None:
        self._check_open()
        if self._txn is None:
            raise OperationalError(
                f"source {self.name!r} has no open transaction")
        self._txn = None

    def rollback_txn(self) -> None:
        self._check_open()
        if self._txn is None:
            raise OperationalError(
                f"source {self.name!r} has no open transaction")
        snapshots, self._txn = self._txn, None
        for table, (rows, generation) in snapshots.items():
            physical = self.storage.table(table)
            # Restore the row list *and* the generation: the rows are
            # byte-identical to the pre-transaction snapshot (COW never
            # edits a visible list), so caches keyed on the old token
            # are valid again and the token must say so. Generations
            # consumed inside the transaction are never re-issued
            # (Table's allocator is monotonic), so cache entries
            # recorded mid-transaction can never be matched again.
            physical.rows = rows
            physical.generation = generation

    # -- partitioning ------------------------------------------------------

    def partitions(self, table: str,
                   request: Optional[ScanRequest] = None,
                   target: int = 2) -> Optional[list[PartitionSpec]]:
        """Contiguous row-index ranges: [lower, upper) over the stored
        row list. Concatenated in index order they replay the physical
        scan order exactly (copy-on-write mutation keeps a captured row
        list — and so the positions — stable for one version token)."""
        self._check_open()
        if target < 2:
            return None
        total = len(self.storage.table(table).rows)
        if total < 2:
            return None
        count = min(target, total)
        step = total / count
        bounds = [round(i * step) for i in range(count + 1)]
        bounds[-1] = total
        return [PartitionSpec(table=table, index=i, count=count,
                              kind="rows", lower=bounds[i],
                              upper=bounds[i + 1])
                for i in range(count)]

    def scan_partition(self, spec: PartitionSpec,
                       request: Optional[ScanRequest] = None,
                       context=None) -> Scan:
        self._check_open()
        if spec.kind != "rows":
            raise ValueError(f"unsupported partition kind {spec.kind!r}")
        physical = self.storage.table(spec.table)
        lower, upper = int(spec.lower), int(spec.upper)
        predicates = tuple(
            p for p in (request.predicates if request is not None else ())
            if self.supports_predicate(spec.table, p))
        if not predicates:
            return Scan(columns=list(physical.columns),
                        rows=self._iter_range(physical, lower, upper,
                                              context),
                        pushed=False)
        probe = self._most_selective(spec.table, predicates)
        index, built = self._index(spec.table, probe.column, physical)
        if probe.op == "eq":
            hits = index.get(probe.value, ())
        else:
            merged: set[int] = set()
            for value in probe.value:
                merged.update(index.get(value, ()))
            hits = sorted(merged)
        indices = [i for i in hits if lower <= i < upper]
        remaining = tuple(p for p in predicates if p is not probe)
        positions = {name: i for i, (name, _) in enumerate(physical.columns)}
        return Scan(columns=list(physical.columns),
                    rows=self._iter_indexed(physical, indices, remaining,
                                            positions, context),
                    pushed=True, index_used=True, index_built=built)

    def scan_partition_batches(self, spec: PartitionSpec,
                               request: Optional[ScanRequest] = None,
                               context=None,
                               batch_size: int = 1024) -> ScanBatches:
        """Columnar fast path over a row range, mirroring
        :meth:`scan_batches`' no-pushdown specialization."""
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self._check_open()
        if spec.kind != "rows":
            raise ValueError(f"unsupported partition kind {spec.kind!r}")
        physical = self.storage.table(spec.table)
        predicates = tuple(
            p for p in (request.predicates if request is not None else ())
            if self.supports_predicate(spec.table, p))
        if predicates:
            return super().scan_partition_batches(spec, request, context,
                                                  batch_size)
        lower, upper = int(spec.lower), int(spec.upper)

        def batches(rows=physical.rows):
            for start in range(lower, upper, batch_size):
                self._check_open()
                block = rows[start:min(start + batch_size, upper)]
                if context is not None:
                    context.tick_rows(len(block))
                yield [list(col) for col in zip(*block)]

        return ScanBatches(columns=list(physical.columns),
                           batches=batches(), pushed=False)

    def _iter_range(self, physical, lower, upper, context):
        for row in physical.rows[lower:upper]:
            self._check_open()
            if context is not None:
                context.tick()
            yield row

    def _most_selective(self, table: str,
                        predicates: tuple[Predicate, ...]) -> Predicate:
        stats = self.statistics(table)

        def rank(predicate: Predicate) -> float:
            column = stats.column(predicate.column) if stats else None
            ndv = column.ndv if column is not None else 0
            if not ndv:
                return 1.0
            width = (len(predicate.value)
                     if predicate.op == "in" else 1)
            return min(1.0, width / ndv)

        return min(predicates, key=rank)

    def _index(self, table: str, column: str, physical):
        """Return (value -> sorted row indices, built_now) for *column*,
        rebuilding when the version token moved."""
        token = physical.generation
        key = (table, column)
        cached = self._indexes.get(key)
        if cached is not None and cached[0] == token:
            return cached[1], False
        position = {name: i
                    for i, (name, _) in enumerate(physical.columns)}[column]
        index: dict = {}
        for row_index, row in enumerate(physical.rows):
            value = row[position]
            if value is None:
                continue  # NULL never matches an equality probe
            index.setdefault(value, []).append(row_index)
        self._indexes[key] = (token, index)
        return index, True

    def _iter_rows(self, physical, context):
        for row in physical.rows:
            self._check_open()
            if context is not None:
                context.tick()
            yield row

    def _iter_indexed(self, physical, indices, remaining, positions,
                      context):
        rows = physical.rows
        for row_index in indices:
            self._check_open()
            if context is not None:
                context.tick()
            row = rows[row_index]
            ok = True
            for predicate in remaining:
                value = row[positions[predicate.column]]
                if value is None:
                    ok = False
                    break
                if predicate.op == "eq":
                    if value != predicate.value:
                        ok = False
                        break
                else:  # in
                    if value not in predicate.value:
                        ok = False
                        break
            if ok:
                yield row
