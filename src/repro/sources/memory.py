"""In-memory table source: the original backend, refactored onto the SPI.

Wraps :class:`repro.engine.table.Storage` so the runtime's scan path is
uniform across backends. Declares no pushdown — in-memory rows are
already as close as data gets, so the engine's cached element trees stay
the fast path (the ``version`` token is the row count, which only ever
grows through ``Table.insert``).
"""

from __future__ import annotations

from typing import Optional

from ..engine.table import Storage
from ..sql.types import SQLType
from .spi import DataSource, Scan, ScanRequest, SourceCapabilities


class TableSource(DataSource):
    """A :class:`DataSource` over an in-process :class:`Storage`."""

    def __init__(self, storage: Storage, name: str = "memory"):
        super().__init__(name)
        self.storage = storage

    def tables(self) -> list[str]:
        self._check_open()
        return self.storage.table_names()

    def columns(self, table: str) -> list[tuple[str, SQLType]]:
        self._check_open()
        return list(self.storage.table(table).columns)

    def version(self, table: str) -> object:
        # Tables are append-only (Table.insert); the row count is a
        # sufficient staleness token.
        return len(self.storage.table(table).rows)

    def capabilities(self) -> SourceCapabilities:
        return SourceCapabilities()

    def scan(self, table: str, request: Optional[ScanRequest] = None,
             context=None) -> Scan:
        self._check_open()
        physical = self.storage.table(table)
        return Scan(columns=list(physical.columns),
                    rows=self._iter_rows(physical, context),
                    pushed=False)

    def _iter_rows(self, physical, context):
        for row in physical.rows:
            self._check_open()
            if context is not None:
                context.tick()
            yield row
