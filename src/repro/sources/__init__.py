"""Pluggable physical data sources (the federation layer's SPI).

The SPI types (:class:`DataSource`, :class:`ScanRequest`, ...) are
imported eagerly — they depend only on ``errors`` and ``sql.types`` so
lower layers (the planner, the compiler) may import them freely. The
concrete backends are exposed lazily through module ``__getattr__``:
they pull in the engine, the XML model, and the XQuery atomics, and an
eager import here would close a cycle (planner -> sources -> engine ->
compile -> planner).
"""

from .spi import (
    COMPARISON_OPS,
    MUTATION_KINDS,
    PREDICATE_OPS,
    ColumnStats,
    DataSource,
    Mutation,
    MutationResult,
    PartitionSpec,
    Predicate,
    Scan,
    ScanBatches,
    ScanRequest,
    SourceCapabilities,
    TableStatistics,
    compute_statistics,
    filter_request,
)

__all__ = [
    "COMPARISON_OPS",
    "MUTATION_KINDS",
    "PREDICATE_OPS",
    "ColumnStats",
    "DataSource",
    "Mutation",
    "MutationResult",
    "PartitionSpec",
    "Predicate",
    "Scan",
    "ScanBatches",
    "ScanRequest",
    "SourceCapabilities",
    "TableStatistics",
    "compute_statistics",
    "filter_request",
    "TableSource",
    "SQLiteSource",
    "XMLFileSource",
]

_LAZY_BACKENDS = {
    "TableSource": "memory",
    "SQLiteSource": "sqlite",
    "XMLFileSource": "xmlfile",
}


def __getattr__(name: str):
    module_name = _LAZY_BACKENDS.get(name)
    if module_name is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value  # cache for subsequent lookups
    return value
