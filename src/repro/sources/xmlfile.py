"""Read-only XML file/directory source.

The paper's data services also wrap file-based sources; this backend
exposes XML documents on disk as flat tables. A file maps to one table
(named after the file's stem); a directory maps each ``*.xml`` file it
contains to a table. Document shape::

    <CUSTOMERS>                      <!-- root: the table -->
      <CUSTOMER>                     <!-- child element: one row -->
        <CUSTOMERID>55</CUSTOMERID>  <!-- grandchild: one column -->
        <CREDITLIMIT/>               <!-- empty element = SQL NULL -->
      </CUSTOMER>
      ...
    </CUSTOMERS>

Column types may be declared up front (``columns={"T": [...]}``); when
they are not, every column is inferred as VARCHAR from the first row.
Declared types are enforced through ``repro.xquery.atomic``'s lexical
parsing (the same validation CSV-backed services get), so a bad cell
raises ``FORG0001`` instead of leaking a mistyped value.

Documents are parsed through :mod:`repro.xmlmodel` lazily, once per
scan generation: the ``version`` token is the file's ``(mtime_ns,
size)``, so an edited file invalidates both this source's row cache
and the engine's element-tree cache. No pushdown — the whole file must
be read anyway.

The source is deliberately **read-only**: it keeps the SPI's default
write surface, so ``supports_write`` answers False for every table and
DML routed here raises ``NotSupportedError`` — the documents on disk
are someone else's files, not ours to rewrite.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Sequence

from ..catalog.schema import sql_to_xs
from ..errors import UnknownArtifactError, XMLError
from ..sql.types import SQLType, VARCHAR
from ..xmlmodel import parse_document
from ..xquery.atomic import parse_lexical
from .spi import (
    DataSource,
    PartitionSpec,
    Scan,
    ScanRequest,
    SourceCapabilities,
    TableStatistics,
    compute_statistics,
)


class XMLFileSource(DataSource):
    """A :class:`DataSource` over XML documents on disk."""

    def __init__(self, path, name: str = "xml",
                 columns: Optional[dict[str,
                                        Sequence[tuple[str,
                                                       SQLType]]]] = None):
        super().__init__(name)
        self.path = Path(path)
        self._declared = {t: list(cols)
                          for t, cols in (columns or {}).items()}
        #: table -> (version token, columns, rows) parse cache.
        self._cache: dict[str, tuple[object, list, list]] = {}

    # -- file mapping ------------------------------------------------------

    def _table_files(self) -> dict[str, Path]:
        if self.path.is_dir():
            return {p.stem: p for p in sorted(self.path.glob("*.xml"))}
        if self.path.is_file():
            return {self.path.stem: self.path}
        return {}

    def _file_for(self, table: str) -> Path:
        path = self._table_files().get(table)
        if path is None:
            raise UnknownArtifactError(
                f"no table {table} in source {self.name!r}")
        return path

    # -- metadata ----------------------------------------------------------

    def tables(self) -> list[str]:
        self._check_open()
        return sorted(self._table_files())

    def columns(self, table: str) -> list[tuple[str, SQLType]]:
        self._check_open()
        _version, columns, _rows = self._load(table)
        return list(columns)

    def version(self, table: str) -> object:
        stat = self._file_for(table).stat()
        return (stat.st_mtime_ns, stat.st_size)

    def statistics(self, table: str) -> Optional[TableStatistics]:
        # The parse cache already holds the materialized rows (version
        # guarded by the file token), so statistics cost one Python
        # pass over at most the SPI sample limit.
        self._check_open()
        _version, columns, rows = self._load(table)
        return compute_statistics(columns, rows)

    # -- capabilities ------------------------------------------------------

    def capabilities(self) -> SourceCapabilities:
        return SourceCapabilities()

    # -- scanning ----------------------------------------------------------

    def scan(self, table: str, request: Optional[ScanRequest] = None,
             context=None) -> Scan:
        self._check_open()
        _version, columns, rows = self._load(table)
        return Scan(columns=list(columns),
                    rows=self._iter_rows(rows, context),
                    pushed=False)

    def _iter_rows(self, rows, context):
        for row in rows:
            self._check_open()
            if context is not None:
                context.tick()
            yield row

    # -- partitioning ------------------------------------------------------

    def partitions(self, table: str,
                   request: Optional[ScanRequest] = None,
                   target: int = 2) -> Optional[list[PartitionSpec]]:
        """Row-index ranges over the materialized parse cache. The
        whole file is parsed either way, so partitioning buys only
        downstream (filter/encode) parallelism — still worth it for
        large documents."""
        self._check_open()
        if target < 2:
            return None
        _version, _columns, rows = self._load(table)
        total = len(rows)
        if total < 2:
            return None
        count = min(target, total)
        step = total / count
        bounds = [round(i * step) for i in range(count + 1)]
        bounds[-1] = total
        return [PartitionSpec(table=table, index=i, count=count,
                              kind="rows", lower=bounds[i],
                              upper=bounds[i + 1])
                for i in range(count)]

    def scan_partition(self, spec: PartitionSpec,
                       request: Optional[ScanRequest] = None,
                       context=None) -> Scan:
        self._check_open()
        if spec.kind != "rows":
            raise ValueError(f"unsupported partition kind {spec.kind!r}")
        _version, columns, rows = self._load(spec.table)
        window = rows[int(spec.lower):int(spec.upper)]
        return Scan(columns=list(columns),
                    rows=self._iter_rows(window, context),
                    pushed=False)

    # -- parsing -----------------------------------------------------------

    def _load(self, table: str):
        path = self._file_for(table)
        token = self.version(table)
        cached = self._cache.get(table)
        if cached is not None and cached[0] == token:
            return cached
        try:
            document = parse_document(path.read_text(encoding="utf-8"))
            root = document.root()
        except (OSError, ValueError, XMLError) as exc:
            raise XMLError(
                f"cannot read table {table} from {path}: {exc}") from exc
        declared = self._declared.get(table)
        columns = list(declared) if declared is not None else None
        rows = []
        for row_element in root.child_elements():
            if columns is None:
                # Infer the schema from the first row: one VARCHAR
                # column per child element, in document order.
                columns = [(cell.name.local, VARCHAR)
                           for cell in row_element.child_elements()]
            cells = {cell.name.local: cell
                     for cell in row_element.child_elements()}
            row = []
            for column_name, sql_type in columns:
                cell = cells.get(column_name)
                if cell is None or cell.is_empty():
                    row.append(None)
                else:
                    row.append(parse_lexical(sql_to_xs(sql_type),
                                             cell.string_value()))
            rows.append(tuple(row))
        if columns is None:
            columns = []
        loaded = (token, columns, rows)
        self._cache[table] = loaded
        return loaded
