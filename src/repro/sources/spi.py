"""The physical data-source SPI.

The paper's DSP is a federation layer: data services wrap heterogeneous
enterprise sources (relational databases, web services, files) and the
JDBC driver's SQL-to-XQuery translation is only useful because those
sources exist underneath (sections 2 and 3.1). This module defines the
contract every physical source implements so the runtime can treat an
in-memory table, a SQLite database, and an XML directory uniformly:

* :class:`DataSource` — the provider interface: table discovery,
  column metadata, batch row scans honoring ``QueryContext`` deadlines
  and cancellation, and a staleness token for result caching.
* :class:`SourceCapabilities` — what the source can evaluate natively.
  Pushdown is strictly capability-gated: the engine never hands a
  source a request it has not advertised support for.
* :class:`ScanRequest` — a projection (column subset) plus sargable
  conjunctive predicates the engine would like evaluated at the source.
* :class:`Scan` — the result: the columns actually returned, an
  iterable of rows, and whether the predicates were applied (``pushed``)
  or the caller must still filter.

The pushdown contract is *advisory*: pushed predicates always remain in
the compiled plan as residual filters, so a source may return a superset
of the matching rows (e.g. by ignoring part of the request) without
affecting correctness — it must only never *drop* a row the residual
filter would keep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional, Sequence

from ..errors import SourceUnavailableError
from ..sql.types import SQLType

#: Comparison operators a predicate may carry. ``isnull``/``notnull``
#: are unary (``value`` is ignored); the rest compare against ``value``.
PREDICATE_OPS = frozenset(
    {"eq", "ne", "lt", "le", "gt", "ge", "isnull", "notnull"})

#: Operator subset every comparison-capable source should consider; kept
#: here so capability declarations and the planner agree on spelling.
COMPARISON_OPS = frozenset({"eq", "ne", "lt", "le", "gt", "ge"})


@dataclass(frozen=True)
class Predicate:
    """One sargable conjunct: ``column OP value``.

    ``value`` is a plain Python value (int, str, Decimal, date, ...)
    already decoded from the query literal; sources compare it against
    their stored representation of the column.
    """

    column: str
    op: str
    value: object = None

    def __post_init__(self) -> None:
        if self.op not in PREDICATE_OPS:
            raise ValueError(f"unknown predicate op {self.op!r}")

    @property
    def unary(self) -> bool:
        return self.op in ("isnull", "notnull")


@dataclass(frozen=True)
class ScanRequest:
    """What the engine would like the source to do natively.

    ``columns`` is the projection in source schema order (None = all
    columns); ``predicates`` are conjuncts (AND semantics). Both are
    advisory — see the module docstring for the superset rule.
    """

    columns: Optional[tuple[str, ...]] = None
    predicates: tuple[Predicate, ...] = ()

    @property
    def is_trivial(self) -> bool:
        """True when the request asks for a plain full scan."""
        return self.columns is None and not self.predicates


@dataclass
class Scan:
    """A scan result: the schema actually produced plus the row stream.

    ``columns`` names (and types) the values in each row, positionally.
    ``pushed`` is True when the source applied the request's predicates
    itself; False means the caller's residual filter does all the work.
    """

    columns: list[tuple[str, SQLType]]
    rows: Iterable[tuple]
    pushed: bool = False

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)


@dataclass(frozen=True)
class SourceCapabilities:
    """What a source can evaluate natively.

    ``predicate_ops`` lists the operator spellings the source accepts;
    an empty set with ``predicate_pushdown=True`` is contradictory and
    treated as no pushdown.
    """

    predicate_pushdown: bool = False
    projection_pushdown: bool = False
    predicate_ops: frozenset[str] = field(default_factory=frozenset)

    def accepts_op(self, op: str) -> bool:
        return self.predicate_pushdown and op in self.predicate_ops


class DataSource:
    """Abstract base for physical sources.

    Concrete sources implement :meth:`tables`, :meth:`columns`, and
    :meth:`scan`; the capability and lifecycle methods have safe
    defaults (no pushdown, idempotent close).

    Scans must call ``context.tick()`` per yielded row so deadlines and
    cancellation abort an in-flight scan within one check batch.
    """

    #: Registry name; used by catalog bindings to address the source.
    name: str = "source"

    def __init__(self, name: Optional[str] = None):
        if name is not None:
            self.name = name
        self._closed = False

    # -- metadata ----------------------------------------------------------

    def tables(self) -> list[str]:
        """Sorted names of the tables this source exposes."""
        raise NotImplementedError

    def columns(self, table: str) -> list[tuple[str, SQLType]]:
        """Ordered (name, type) pairs for *table*.

        Raises ``UnknownArtifactError`` for a table the source does not
        have.
        """
        raise NotImplementedError

    def version(self, table: str) -> object:
        """A staleness token: equal tokens mean the table's rows are
        unchanged, so cached derivations (e.g. element trees) may be
        reused. ``None`` disables caching for the table."""
        return None

    # -- capabilities ------------------------------------------------------

    def capabilities(self) -> SourceCapabilities:
        return SourceCapabilities()

    def supports_predicate(self, table: str, predicate: Predicate) -> bool:
        """Fine-grained gate: may *predicate* be pushed for *table*?

        Called only for operators the capability set already accepts;
        lets a source refuse specific (column type, value type) pairs
        whose native comparison semantics differ from the engine's.
        """
        return False

    # -- scanning ----------------------------------------------------------

    def scan(self, table: str, request: Optional[ScanRequest] = None,
             context=None) -> Scan:
        """Stream *table*'s rows (stable order across repeated scans).

        *request* is advisory (see module docstring); *context* is an
        optional ``QueryContext`` whose ``tick()`` must run per row.
        """
        raise NotImplementedError

    # -- lifecycle ---------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Release handles; idempotent. Scans after close fail."""
        self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise SourceUnavailableError(f"source {self.name!r} is closed")

    def __enter__(self) -> "DataSource":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else "open"
        return f"<{type(self).__name__} {self.name!r} ({state})>"


def filter_request(source: DataSource, table: str,
                   request: Optional[ScanRequest],
                   all_columns: Sequence[str]) -> Optional[ScanRequest]:
    """Reduce *request* to what *source* advertises it can handle.

    Predicates are kept only when the capability set accepts the
    operator **and** ``supports_predicate`` approves the specific
    conjunct. The projection is kept only under projection pushdown,
    restricted to known columns, and dropped entirely when it covers
    the whole table (a full-width scan needs no projection request).
    Returns None when nothing survives — the caller should run a plain
    cached scan instead.
    """
    if request is None:
        return None
    caps = source.capabilities()
    predicates = tuple(
        p for p in request.predicates
        if caps.accepts_op(p.op) and source.supports_predicate(table, p))
    columns = None
    if caps.projection_pushdown and request.columns is not None:
        requested = set(request.columns)
        # Keep source schema order so projected rows line up with a
        # same-order projected row schema.
        wanted = tuple(c for c in all_columns if c in requested)
        if wanted and len(wanted) < len(all_columns):
            columns = wanted
    reduced = ScanRequest(columns=columns, predicates=predicates)
    return None if reduced.is_trivial else reduced
