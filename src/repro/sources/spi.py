"""The physical data-source SPI.

The paper's DSP is a federation layer: data services wrap heterogeneous
enterprise sources (relational databases, web services, files) and the
JDBC driver's SQL-to-XQuery translation is only useful because those
sources exist underneath (sections 2 and 3.1). This module defines the
contract every physical source implements so the runtime can treat an
in-memory table, a SQLite database, and an XML directory uniformly:

* :class:`DataSource` — the provider interface: table discovery,
  column metadata, batch row scans honoring ``QueryContext`` deadlines
  and cancellation, and a staleness token for result caching.
* :class:`SourceCapabilities` — what the source can evaluate natively.
  Pushdown is strictly capability-gated: the engine never hands a
  source a request it has not advertised support for.
* :class:`ScanRequest` — a projection (column subset) plus sargable
  conjunctive predicates the engine would like evaluated at the source.
* :class:`Scan` — the result: the columns actually returned, an
  iterable of rows, and whether the predicates were applied (``pushed``)
  or the caller must still filter.

The pushdown contract is *advisory*: pushed predicates always remain in
the compiled plan as residual filters, so a source may return a superset
of the matching rows (e.g. by ignoring part of the request) without
affecting correctness — it must only never *drop* a row the residual
filter would keep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional, Sequence

from ..errors import NotSupportedError, SourceUnavailableError
from ..sql.types import SQLType

#: Comparison operators a predicate may carry. ``isnull``/``notnull``
#: are unary (``value`` is ignored); ``in`` carries a tuple of values
#: (membership); the rest compare against ``value``.
PREDICATE_OPS = frozenset(
    {"eq", "ne", "lt", "le", "gt", "ge", "in", "isnull", "notnull"})

#: Operator subset every comparison-capable source should consider; kept
#: here so capability declarations and the planner agree on spelling.
COMPARISON_OPS = frozenset({"eq", "ne", "lt", "le", "gt", "ge"})


@dataclass(frozen=True)
class Predicate:
    """One sargable conjunct: ``column OP value``.

    ``value`` is a plain Python value (int, str, Decimal, date, ...)
    already decoded from the query literal; sources compare it against
    their stored representation of the column.
    """

    column: str
    op: str
    value: object = None

    def __post_init__(self) -> None:
        if self.op not in PREDICATE_OPS:
            raise ValueError(f"unknown predicate op {self.op!r}")

    @property
    def unary(self) -> bool:
        return self.op in ("isnull", "notnull")


@dataclass(frozen=True)
class ScanRequest:
    """What the engine would like the source to do natively.

    ``columns`` is the projection in source schema order (None = all
    columns); ``predicates`` are conjuncts (AND semantics). Both are
    advisory — see the module docstring for the superset rule.
    """

    columns: Optional[tuple[str, ...]] = None
    predicates: tuple[Predicate, ...] = ()

    @property
    def is_trivial(self) -> bool:
        """True when the request asks for a plain full scan."""
        return self.columns is None and not self.predicates


@dataclass
class Scan:
    """A scan result: the schema actually produced plus the row stream.

    ``columns`` names (and types) the values in each row, positionally.
    ``pushed`` is True when the source applied the request's predicates
    itself; False means the caller's residual filter does all the work.
    ``index_used``/``index_built`` report whether a secondary hash
    index answered the scan (and whether it was built for this scan),
    so the engine can publish index metrics without reaching into
    source internals.
    """

    columns: list[tuple[str, SQLType]]
    rows: Iterable[tuple]
    pushed: bool = False
    index_used: bool = False
    index_built: bool = False

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)


@dataclass
class ScanBatches:
    """A columnar scan result: the schema plus a stream of batches.

    Each batch is a list of column value-lists, one list per entry in
    ``columns`` (positionally aligned), all the same length — the batch
    row count. ``pushed``/``index_used``/``index_built`` carry the same
    meaning as on :class:`Scan`.
    """

    columns: list[tuple[str, SQLType]]
    batches: Iterable[list[list]]
    pushed: bool = False
    index_used: bool = False
    index_built: bool = False

    def __iter__(self) -> Iterator[list[list]]:
        return iter(self.batches)


@dataclass(frozen=True)
class PartitionSpec:
    """One horizontal slice of a table, for scatter/gather execution.

    The contract binding all partitions of one ``partitions()`` answer:
    concatenating ``scan_partition(spec)`` row streams in ``index``
    order yields exactly the rows of a full :meth:`DataSource.scan`
    with the same request, in the same order, each row exactly once.
    That makes the parallel gather's order restoration a pure offset
    computation — no re-sort is needed for the scan's physical order.

    ``kind`` names the carving scheme (``"rows"`` for positional row
    ranges over materialized tables, ``"rowid"`` for SQLite rowid
    ranges); ``lower``/``upper`` are the scheme-specific bounds
    (half-open ``[lower, upper)`` for ``"rows"``, inclusive for
    ``"rowid"``). Instances must pickle — they are shipped to worker
    processes verbatim.
    """

    table: str
    index: int
    count: int
    kind: str = "rows"
    lower: object = None
    upper: object = None


@dataclass(frozen=True)
class ColumnStats:
    """Summary statistics for one column, for the planner's cost model.

    ``ndv`` is the number of distinct non-NULL values; ``low``/``high``
    bound the non-NULL domain (None when the type has no usable order,
    e.g. DECIMAL stored as text in SQLite); ``null_fraction`` is the
    NULL share of the row count (0.0 for an empty table).
    """

    ndv: int = 0
    low: object = None
    high: object = None
    null_fraction: float = 0.0


@dataclass(frozen=True)
class TableStatistics:
    """Statistics for one table: row count plus per-column summaries.

    ``sampled`` is True when the numbers come from a bounded row sample
    rather than a full pass — estimates, not ground truth, either way.
    Instances are immutable; staleness is governed by the source's
    ``version`` token (the runtime caches statistics under it).
    """

    row_count: int = 0
    columns: "dict[str, ColumnStats]" = field(default_factory=dict)
    sampled: bool = False

    def column(self, name: str) -> Optional[ColumnStats]:
        return self.columns.get(name)


#: Row-sample bound for sources that compute statistics in Python: big
#: enough to rank selectivities usefully, small enough that the first
#: costed query does not pay a second full scan of a huge table.
STATISTICS_SAMPLE_LIMIT = 10_000


def compute_statistics(columns: Sequence[tuple[str, SQLType]],
                       rows: Sequence[tuple],
                       total_rows: Optional[int] = None,
                       sample_limit: int = STATISTICS_SAMPLE_LIMIT) \
        -> TableStatistics:
    """Statistics from materialized *rows* (shared by the in-memory and
    XML-file backends). When *rows* exceeds *sample_limit* only the
    leading sample is summarized and per-column NDV/null counts are
    scaled to *total_rows* (defaults to ``len(rows)``)."""
    if total_rows is None:
        total_rows = len(rows)
    sampled = len(rows) > sample_limit
    sample = rows[:sample_limit] if sampled else rows
    scale = (total_rows / len(sample)) if (sampled and sample) else 1.0
    stats: dict[str, ColumnStats] = {}
    for position, (name, _sql_type) in enumerate(columns):
        distinct: set = set()
        nulls = 0
        low = high = None
        for row in sample:
            value = row[position]
            if value is None:
                nulls += 1
                continue
            try:
                distinct.add(value)
            except TypeError:  # unhashable value: no usable NDV
                distinct = set()
                break
            try:
                if low is None or value < low:
                    low = value
                if high is None or value > high:
                    high = value
            except TypeError:
                low = high = None
        # ndv == 0 means "unknown or no non-NULL values"; the planner
        # falls back to default selectivities for it either way.
        ndv = min(total_rows, int(len(distinct) * scale)) if distinct else 0
        null_fraction = (nulls / len(sample)) if sample else 0.0
        stats[name] = ColumnStats(ndv=ndv, low=low, high=high,
                                  null_fraction=null_fraction)
    return TableStatistics(row_count=total_rows, columns=stats,
                           sampled=sampled)


#: Kinds a :class:`Mutation` may carry.
MUTATION_KINDS = frozenset({"insert", "update", "delete"})


@dataclass(frozen=True)
class Mutation:
    """One row-level mutation batch against a single table.

    The engine does all SQL evaluation (victim selection, SET/VALUES
    expressions) and hands sources plain data:

    * ``insert`` — ``rows`` holds fully coerced value tuples to append.
    * ``update`` — ``changes`` holds ``(ordinal, new_row)`` pairs.
    * ``delete`` — ``ordinals`` holds row positions to remove.

    Ordinals are 0-based positions in the source's canonical full-scan
    order (the order an unfiltered :meth:`DataSource.scan` yields) as of
    the version token the engine selected victims under; callers pass
    that token as ``expected_version`` so a source can refuse a stale
    plan instead of corrupting rows.
    """

    kind: str
    table: str
    rows: tuple = ()
    changes: tuple = ()
    ordinals: tuple = ()

    def __post_init__(self) -> None:
        if self.kind not in MUTATION_KINDS:
            raise ValueError(f"unknown mutation kind {self.kind!r}")


@dataclass(frozen=True)
class MutationResult:
    """What a statement's mutations did: rows affected, and the
    source-defined id of the last inserted row (None unless the
    statement inserted rows and the source can name one)."""

    rowcount: int = 0
    lastrowid: Optional[int] = None


@dataclass(frozen=True)
class SourceCapabilities:
    """What a source can evaluate natively.

    ``predicate_ops`` lists the operator spellings the source accepts;
    an empty set with ``predicate_pushdown=True`` is contradictory and
    treated as no pushdown.
    """

    predicate_pushdown: bool = False
    projection_pushdown: bool = False
    predicate_ops: frozenset[str] = field(default_factory=frozenset)

    def accepts_op(self, op: str) -> bool:
        return self.predicate_pushdown and op in self.predicate_ops


class DataSource:
    """Abstract base for physical sources.

    Concrete sources implement :meth:`tables`, :meth:`columns`, and
    :meth:`scan`; the capability and lifecycle methods have safe
    defaults (no pushdown, idempotent close).

    Scans must call ``context.tick()`` per yielded row so deadlines and
    cancellation abort an in-flight scan within one check batch.
    """

    #: Registry name; used by catalog bindings to address the source.
    name: str = "source"

    def __init__(self, name: Optional[str] = None):
        if name is not None:
            self.name = name
        self._closed = False

    # -- metadata ----------------------------------------------------------

    def tables(self) -> list[str]:
        """Sorted names of the tables this source exposes."""
        raise NotImplementedError

    def columns(self, table: str) -> list[tuple[str, SQLType]]:
        """Ordered (name, type) pairs for *table*.

        Raises ``UnknownArtifactError`` for a table the source does not
        have.
        """
        raise NotImplementedError

    def version(self, table: str) -> object:
        """A staleness token: equal tokens mean the table's rows are
        unchanged, so cached derivations (e.g. element trees) may be
        reused. ``None`` disables caching for the table."""
        return None

    def statistics(self, table: str) -> Optional[TableStatistics]:
        """Optional summary statistics for the planner's cost model.

        None (the default) means the source offers none and the planner
        plans blind for its tables. Callers must cache the result under
        :meth:`version` — statistics describe the table as of one
        staleness token and must never outlive a data change.
        """
        return None

    # -- capabilities ------------------------------------------------------

    def capabilities(self) -> SourceCapabilities:
        return SourceCapabilities()

    def supports_predicate(self, table: str, predicate: Predicate) -> bool:
        """Fine-grained gate: may *predicate* be pushed for *table*?

        Called only for operators the capability set already accepts;
        lets a source refuse specific (column type, value type) pairs
        whose native comparison semantics differ from the engine's.
        """
        return False

    # -- scanning ----------------------------------------------------------

    def scan(self, table: str, request: Optional[ScanRequest] = None,
             context=None) -> Scan:
        """Stream *table*'s rows (stable order across repeated scans).

        *request* is advisory (see module docstring); *context* is an
        optional ``QueryContext`` whose ``tick()`` must run per row.
        """
        raise NotImplementedError

    def scan_batches(self, table: str,
                     request: Optional[ScanRequest] = None,
                     context=None, batch_size: int = 1024) -> ScanBatches:
        """Stream *table* as column-oriented batches of *batch_size* rows.

        The default adapter transposes :meth:`scan`'s row stream, so
        every source gets a batch surface for free; sources with a
        columnar fast path (e.g. in-memory lists) override it. The
        row-level ``tick()`` contract still applies — the adapter relies
        on :meth:`scan` ticking per row, and overrides must call
        ``context.tick_rows(n)`` per emitted batch instead.
        """
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        result = self.scan(table, request, context)

        def batches(rows=result.rows):
            block: list[tuple] = []
            for row in rows:
                block.append(row)
                if len(block) >= batch_size:
                    yield [list(col) for col in zip(*block)]
                    block = []
            if block:
                yield [list(col) for col in zip(*block)]

        return ScanBatches(columns=result.columns, batches=batches(),
                           pushed=result.pushed,
                           index_used=result.index_used,
                           index_built=result.index_built)

    # -- writing -----------------------------------------------------------

    def supports_write(self, table: str) -> bool:
        """May *table* be mutated through this source? Default False —
        sources opt in to the write capability explicitly."""
        return False

    def apply_mutations(self, mutations: Sequence[Mutation],
                        expected_version: object = None) -> MutationResult:
        """Apply one statement's mutations **atomically**.

        All mutations in the sequence target tables of this source and
        either all apply or none do (statement-level atomicity); on
        failure the source's visible rows must be unchanged. Version
        tokens obey the uniqueness rule — one token never identifies
        two different row-sets — so a failed statement may move the
        token forward (caches rebuild spuriously; SQLite's
        ``total_changes`` cannot be rewound) but must never leave a
        token that misrepresents the rows. When *expected_version* is
        given it is the token of the (single) target table the caller
        planned under; a source must raise ``OperationalError`` instead
        of applying a plan made against different rows.

        Read-only sources keep the default, which raises
        ``NotSupportedError``.
        """
        raise NotSupportedError(
            f"source {self.name!r} is read-only and does not accept "
            f"mutations")

    def begin_txn(self) -> None:
        """Open a multi-statement transaction on this source.

        Called by the transaction manager the first time a transaction
        writes through this source; subsequent ``apply_mutations`` calls
        accumulate into it until :meth:`commit_txn` or
        :meth:`rollback_txn`. Writable sources must override all three.
        """
        raise NotSupportedError(
            f"source {self.name!r} does not support transactions")

    def commit_txn(self) -> None:
        """Make the open transaction's mutations durable."""
        raise NotSupportedError(
            f"source {self.name!r} does not support transactions")

    def rollback_txn(self) -> None:
        """Undo every mutation of the open transaction, restoring each
        touched table's rows **and version token** to their
        pre-transaction values (so cached plans/statistics keyed on the
        token become valid again)."""
        raise NotSupportedError(
            f"source {self.name!r} does not support transactions")

    # -- partitioning ------------------------------------------------------

    def partitions(self, table: str,
                   request: Optional[ScanRequest] = None,
                   target: int = 2) -> Optional[list[PartitionSpec]]:
        """Split *table* into up to *target* disjoint partitions.

        Returns None (the default) when the source cannot partition the
        table — the engine then runs the scan serially. A non-None
        answer must satisfy the :class:`PartitionSpec` concatenation
        contract for the given *request*; sources should return None
        rather than a single-element list when splitting is pointless.
        """
        return None

    def scan_partition(self, spec: PartitionSpec,
                       request: Optional[ScanRequest] = None,
                       context=None) -> Scan:
        """Scan one partition produced by :meth:`partitions`.

        *request* carries the same advisory semantics as :meth:`scan`;
        ``pushed`` on the result refers to the request's predicates
        only, never to the partition carving itself (carving is exact
        by contract, not advisory).
        """
        raise NotImplementedError(
            f"source {self.name!r} does not support partitioned scans")

    def scan_partition_batches(self, spec: PartitionSpec,
                               request: Optional[ScanRequest] = None,
                               context=None,
                               batch_size: int = 1024) -> ScanBatches:
        """Stream one partition as column-oriented batches.

        Default adapter transposes :meth:`scan_partition`, mirroring
        :meth:`scan_batches` over :meth:`scan`.
        """
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        result = self.scan_partition(spec, request, context)

        def batches(rows=result.rows):
            block: list[tuple] = []
            for row in rows:
                block.append(row)
                if len(block) >= batch_size:
                    yield [list(col) for col in zip(*block)]
                    block = []
            if block:
                yield [list(col) for col in zip(*block)]

        return ScanBatches(columns=result.columns, batches=batches(),
                           pushed=result.pushed,
                           index_used=result.index_used,
                           index_built=result.index_built)

    # -- lifecycle ---------------------------------------------------------

    def reset_after_fork(self) -> None:
        """Re-initialize process-local state in a forked worker.

        Called once in each pool worker before it serves partition
        scans. The default is a no-op; sources holding locks, file
        handles, or socket/database connections that must not be shared
        across a fork boundary override it.
        """

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Release handles; idempotent. Scans after close fail."""
        self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise SourceUnavailableError(f"source {self.name!r} is closed")

    def __enter__(self) -> "DataSource":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else "open"
        return f"<{type(self).__name__} {self.name!r} ({state})>"


def filter_request(source: DataSource, table: str,
                   request: Optional[ScanRequest],
                   all_columns: Sequence[str]) -> Optional[ScanRequest]:
    """Reduce *request* to what *source* advertises it can handle.

    Predicates are kept only when the capability set accepts the
    operator **and** ``supports_predicate`` approves the specific
    conjunct. The projection is kept only under projection pushdown,
    restricted to known columns, and dropped entirely when it covers
    the whole table (a full-width scan needs no projection request).
    Returns None when nothing survives — the caller should run a plain
    cached scan instead.
    """
    if request is None:
        return None
    caps = source.capabilities()
    predicates = tuple(
        p for p in request.predicates
        if caps.accepts_op(p.op) and source.supports_predicate(table, p))
    columns = None
    if caps.projection_pushdown and request.columns is not None:
        requested = set(request.columns)
        # Keep source schema order so projected rows line up with a
        # same-order projected row schema.
        wanted = tuple(c for c in all_columns if c in requested)
        if wanted and len(wanted) < len(all_columns):
            columns = wanted
    reduced = ScanRequest(columns=columns, predicates=predicates)
    return None if reduced.is_trivial else reduced
