"""Client-side result decoding: the two result paths of section 4.

``decode_delimited`` parses the text stream produced by the wrapper query
(see repro.translator.wrapper for the encoding), converting each cell by
its column's SQL type. This is the fast path the paper adopted after
"initial prototyping" showed XML materialization was slow.

``decode_xml`` is the baseline path the paper measured against: the
server's ``<RECORDSET>`` tree is serialized to text (the wire format),
re-parsed client-side, and converted row by row. Benchmarks compare the
two (experiment E6 in DESIGN.md).
"""

from __future__ import annotations

import datetime
from decimal import Decimal, InvalidOperation

from ..errors import DataError
from ..sql.types import SQLType
from ..translator import NULL_MARK, VALUE_MARK, ResultColumn
from ..xmlmodel import Element, parse_document, unescape


def convert_cell(text: str, sql_type: SQLType) -> object:
    """Convert one serialized cell to its Python value by SQL type."""
    kind = sql_type.kind
    try:
        if kind in ("SMALLINT", "INTEGER", "BIGINT"):
            return int(text)
        if kind == "DECIMAL":
            return Decimal(text)
        if kind in ("REAL", "DOUBLE"):
            return float(text)
        if kind in ("CHAR", "VARCHAR"):
            return text
        if kind == "DATE":
            return datetime.date.fromisoformat(text)
        if kind == "TIME":
            return datetime.time.fromisoformat(text)
        if kind == "TIMESTAMP":
            return datetime.datetime.fromisoformat(text)
    except (ValueError, InvalidOperation) as exc:
        raise DataError(
            f"cannot convert cell {text!r} to {sql_type}") from exc
    raise DataError(f"unsupported result column type {sql_type}")


def iter_decode_delimited(chunks,
                          columns: list[ResultColumn],
                          context=None):
    """Incrementally parse a delimited result stream into typed rows.

    Each cell is ``>`` + xml-escaped value, or ``<`` for NULL; the column
    count comes from the result schema, so rows need no separator.

    *chunks* is any iterable of text pieces (the streaming executor
    yields one piece per wrapper cell); rows are yielded as soon as
    their last cell's end is known, so a lazily-consumed cursor decodes
    only what it fetches. A value cell ends at the next cell marker —
    or at end of stream, which is only known once *chunks* is exhausted,
    so the final value cell is held back until then. Error offsets are
    absolute positions in the concatenated stream, identical to what a
    whole-string parse reports.

    *context* is an optional ``repro.engine.lifecycle.QueryContext``;
    the decoder ticks it once per decoded row, so cancellation and
    deadlines abort a fetch loop even when the upstream pipeline is
    between check points.
    """
    if not columns:
        raise DataError("result schema has no columns")
    column_count = len(columns)
    row: list[object] = []
    tail = ""  # unconsumed text, starting at absolute offset `base`
    base = 0
    for chunk in chunks:
        if not chunk:
            continue
        tail += chunk
        length = len(tail)
        pos = 0
        while pos < length:
            mark = tail[pos]
            if mark == NULL_MARK:
                row.append(None)
                pos += 1
            elif mark == VALUE_MARK:
                next_value = tail.find(VALUE_MARK, pos + 1)
                next_null = tail.find(NULL_MARK, pos + 1)
                if next_value < 0:
                    end_value = next_null
                elif next_null < 0:
                    end_value = next_value
                else:
                    end_value = min(next_value, next_null)
                if end_value < 0:
                    break  # the value may continue in the next chunk
                raw = unescape(tail[pos + 1:end_value])
                row.append(convert_cell(raw, columns[len(row)].sql_type))
                pos = end_value
            else:
                raise DataError(
                    f"malformed delimited stream at offset {base + pos}: "
                    f"expected a cell marker, got {mark!r}")
            if len(row) == column_count:
                if context is not None:
                    context.tick()
                    context.rows_emitted += 1
                yield tuple(row)
                row = []
        base += pos
        tail = tail[pos:]
    if tail:
        # Only an unterminated value cell can be left pending; end of
        # stream terminates it.
        raw = unescape(tail[1:])
        row.append(convert_cell(raw, columns[len(row)].sql_type))
        if len(row) == column_count:
            if context is not None:
                context.tick()
                context.rows_emitted += 1
            yield tuple(row)
            row = []
    if row:
        raise DataError(
            f"truncated delimited stream: {len(row)} trailing cell(s)")


def decode_delimited(stream: str,
                     columns: list[ResultColumn]) -> list[tuple]:
    """Parse a complete delimited result stream into typed rows (the
    one-shot form of :func:`iter_decode_delimited`)."""
    return list(iter_decode_delimited((stream,), columns))


def decode_xml(document_text: str,
               columns: list[ResultColumn]) -> list[tuple]:
    """Parse a serialized ``<RECORDSET>`` document into typed rows.

    RECORD children are read positionally (element names were uniquified
    by the translator, values decode by schema position); an empty child
    element is SQL NULL.
    """
    document = parse_document(document_text)
    root = document.root()
    if root.name.local != "RECORDSET":
        raise DataError(
            f"expected a RECORDSET document, got <{root.name.local}>")
    rows: list[tuple] = []
    for record in root.child_elements("RECORD"):
        cells = [child for child in record.child_elements()]
        if len(cells) != len(columns):
            raise DataError(
                f"RECORD has {len(cells)} columns, schema has "
                f"{len(columns)}")
        row = []
        for cell, column in zip(cells, columns):
            assert isinstance(cell, Element)
            if cell.is_empty():
                row.append(None)
            else:
                row.append(convert_cell(cell.string_value(),
                                        column.sql_type))
        rows.append(tuple(row))
    return rows
