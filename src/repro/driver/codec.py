"""Client-side result decoding: the two result paths of section 4.

``decode_delimited`` parses the text stream produced by the wrapper query
(see repro.translator.wrapper for the encoding), converting each cell by
its column's SQL type. This is the fast path the paper adopted after
"initial prototyping" showed XML materialization was slow.

``decode_xml`` is the baseline path the paper measured against: the
server's ``<RECORDSET>`` tree is serialized to text (the wire format),
re-parsed client-side, and converted row by row. Benchmarks compare the
two (experiment E6 in DESIGN.md).
"""

from __future__ import annotations

import datetime
from decimal import Decimal, InvalidOperation

from ..errors import DataError
from ..sql.types import SQLType
from ..translator import NULL_MARK, VALUE_MARK, ResultColumn
from ..xmlmodel import Element, parse_document, unescape


def convert_cell(text: str, sql_type: SQLType) -> object:
    """Convert one serialized cell to its Python value by SQL type."""
    kind = sql_type.kind
    try:
        if kind in ("SMALLINT", "INTEGER", "BIGINT"):
            return int(text)
        if kind == "DECIMAL":
            return Decimal(text)
        if kind in ("REAL", "DOUBLE"):
            return float(text)
        if kind in ("CHAR", "VARCHAR"):
            return text
        if kind == "DATE":
            return datetime.date.fromisoformat(text)
        if kind == "TIME":
            return datetime.time.fromisoformat(text)
        if kind == "TIMESTAMP":
            return datetime.datetime.fromisoformat(text)
    except (ValueError, InvalidOperation) as exc:
        raise DataError(
            f"cannot convert cell {text!r} to {sql_type}") from exc
    raise DataError(f"unsupported result column type {sql_type}")


def decode_delimited(stream: str,
                     columns: list[ResultColumn]) -> list[tuple]:
    """Parse a delimited result stream into typed rows.

    Each cell is ``>`` + xml-escaped value, or ``<`` for NULL; the column
    count comes from the result schema, so rows need no separator.
    """
    if not columns:
        raise DataError("result schema has no columns")
    rows: list[tuple] = []
    row: list[object] = []
    pos = 0
    length = len(stream)
    while pos < length:
        mark = stream[pos]
        pos += 1
        if mark == NULL_MARK:
            value: object = None
        elif mark == VALUE_MARK:
            end_value = pos
            while end_value < length and \
                    stream[end_value] not in (VALUE_MARK, NULL_MARK):
                end_value += 1
            raw = unescape(stream[pos:end_value])
            value = convert_cell(raw, columns[len(row)].sql_type)
            pos = end_value
        else:
            raise DataError(
                f"malformed delimited stream at offset {pos - 1}: "
                f"expected a cell marker, got {mark!r}")
        row.append(value)
        if len(row) == len(columns):
            rows.append(tuple(row))
            row = []
    if row:
        raise DataError(
            f"truncated delimited stream: {len(row)} trailing cell(s)")
    return rows


def decode_xml(document_text: str,
               columns: list[ResultColumn]) -> list[tuple]:
    """Parse a serialized ``<RECORDSET>`` document into typed rows.

    RECORD children are read positionally (element names were uniquified
    by the translator, values decode by schema position); an empty child
    element is SQL NULL.
    """
    document = parse_document(document_text)
    root = document.root()
    if root.name.local != "RECORDSET":
        raise DataError(
            f"expected a RECORDSET document, got <{root.name.local}>")
    rows: list[tuple] = []
    for record in root.child_elements("RECORD"):
        cells = [child for child in record.child_elements()]
        if len(cells) != len(columns):
            raise DataError(
                f"RECORD has {len(cells)} columns, schema has "
                f"{len(columns)}")
        row = []
        for cell, column in zip(cells, columns):
            assert isinstance(cell, Element)
            if cell.is_empty():
                row.append(None)
            else:
                row.append(convert_cell(cell.string_value(),
                                        column.sql_type))
        rows.append(tuple(row))
    return rows
