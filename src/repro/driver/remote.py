"""The remote PEP 249 driver: the embedded surface over a TCP wire.

``repro.connect("repro+tcp://host:port/app/project?token=...")`` lands
here. The contract is symmetry: a :class:`RemoteConnection` behaves like
the embedded :class:`repro.driver.dbapi.Connection` — same cursor
semantics (``arraysize`` paging, ``rowcount`` -1 until a streamed result
is exhausted, ``description``, per-execute ``timeout``, cross-thread
``cancel()``), same exception classes, same transaction surface (``autocommit``,
``begin``/``commit``/``rollback`` travel as protocol-v2 verbs and
demarcate a transaction on the server's per-session embedded
connection) — so application code cannot tell (and need not care) which
side of the network boundary the engine is on.

Transport notes:

* One blocking socket per connection, one request in flight at a time
  (a lock serializes callers — ``threadsafety`` stays 2 at module
  level: share the connection, use one cursor per thread).
* ``Cursor.cancel()`` must work *while* the socket is blocked in an
  execute/fetch, so it opens a fresh short-lived connection and sends
  an out-of-band ``cancel`` frame proving the session secret — the
  Postgres wire-protocol pattern.
* Rows arrive as tagged lexical values (``repro.server.protocol``), so
  fetches return exactly the Python objects the embedded cursor would.
"""

from __future__ import annotations

import socket
import threading
from typing import Iterable, Iterator, Optional, Sequence

from .. import clock
from ..config import RuntimeConfig
from ..errors import (
    DataError,
    DatabaseError,
    Error,
    IntegrityError,
    InterfaceError,
    InternalError,
    NotSupportedError,
    OperationalError,
    ProgrammingError,
    Warning,
)
from ..obs import MetricsRegistry, Tracer
from ..server.protocol import (
    MAX_FRAME,
    PROTOCOL_VERSION,
    decode_row,
    encode_row,
    raise_error,
    recv_frame,
    send_frame,
)
from .dbapi import FORMATS, _type_object_for
from .dsn import DSN

#: Rows requested per ``fetch`` frame when the caller gives no better
#: granularity (``fetchall``/iteration with a small ``arraysize``).
DEFAULT_FETCH_PAGE = 1024


class RemoteConnection:
    """A PEP 249 connection to a ``repro.server`` tenant."""

    Warning = Warning
    Error = Error
    InterfaceError = InterfaceError
    DatabaseError = DatabaseError
    DataError = DataError
    OperationalError = OperationalError
    IntegrityError = IntegrityError
    InternalError = InternalError
    ProgrammingError = ProgrammingError
    NotSupportedError = NotSupportedError

    def __init__(self, dsn: DSN, config: Optional[RuntimeConfig] = None,
                 *, tracer: Optional[Tracer] = None,
                 metrics: Optional[MetricsRegistry] = None):
        config = config if config is not None else RuntimeConfig()
        if config.format not in FORMATS:
            raise InterfaceError(
                f"unknown result format {config.format!r}; expected one "
                f"of {FORMATS}")
        self.dsn = dsn
        self.config = config
        self.format = config.format
        self.default_timeout = config.default_timeout
        self.tracer = Tracer(enabled=False) if tracer is None else tracer
        self.metrics = MetricsRegistry() if metrics is None else metrics
        self._queries_executed = self.metrics.counter("queries.executed")
        self._rows_fetched = self.metrics.counter("rows.fetched")
        self._roundtrips = self.metrics.counter("wire.roundtrips")
        self._roundtrip_seconds = self.metrics.histogram(
            "wire.roundtrip_seconds")
        self._lock = threading.Lock()
        self._request_ids = iter(range(1, 1 << 62))
        self._closed = False
        self._session: Optional[str] = None
        self._secret: Optional[str] = None
        # Client-side mirror of the server session's transaction state;
        # every txn verb reply and every execute reply refreshes it.
        self._autocommit = True
        self._in_transaction = False
        host, port = dsn.address
        try:
            self._sock = socket.create_connection(
                (host, port), timeout=config.remote_connect_timeout)
        except OSError as exc:
            raise OperationalError(
                f"cannot connect to {host}:{port}: {exc}") from exc
        try:
            # The handshake stays under the connect timeout; established
            # traffic is bounded by server-side deadlines instead.
            reply = self._request({
                "op": "hello",
                "protocol": PROTOCOL_VERSION,
                "tenant": dsn.application,
                "project": dsn.project,
                "token": dsn.token,
                "format": config.format,
            })
            self._session = reply["session"]
            self._secret = reply["secret"]
            self._sock.settimeout(None)
        except BaseException:
            self._sock.close()
            raise

    # -- wire ----------------------------------------------------------------

    def _request(self, message: dict) -> dict:
        """One request/response round trip (serialized)."""
        with self._lock:
            if self._closed:
                raise InterfaceError("connection is closed")
            message["id"] = next(self._request_ids)
            started = clock.monotonic()
            with self.tracer.span("wire.request", op=message["op"]):
                try:
                    send_frame(self._sock, message)
                    reply = recv_frame(self._sock, MAX_FRAME)
                except InterfaceError:
                    self._abandon()
                    raise
                except OSError as exc:
                    self._abandon()
                    raise OperationalError(
                        f"connection to {self.dsn.display()} lost: "
                        f"{exc}") from exc
            self._roundtrips.increment()
            self._roundtrip_seconds.observe(clock.monotonic() - started)
        if reply.get("id") != message["id"]:
            with self._lock:
                self._abandon()
            raise InterfaceError(
                f"protocol desync: sent request {message['id']}, "
                f"got reply for {reply.get('id')!r}")
        if not reply.get("ok"):
            raise_error(reply.get("error"))
        return reply

    def _abandon(self) -> None:
        """The socket state is unknown (IO error, desync): the
        connection is unusable from here on. Caller holds the lock."""
        self._closed = True
        try:
            self._sock.close()
        except OSError:
            pass

    # -- PEP 249 surface -----------------------------------------------------

    def cursor(self) -> "RemoteCursor":
        self._check_open()
        return RemoteCursor(self)

    @property
    def autocommit(self) -> bool:
        """Whether statements commit immediately (the driver default).
        Assigning sends the ``autocommit`` verb; switching it on with a
        transaction open commits that transaction first, matching the
        embedded connection."""
        return self._autocommit

    @autocommit.setter
    def autocommit(self, enabled: bool) -> None:
        self._check_open()
        self._txn_verb({"op": "autocommit", "enabled": bool(enabled)})

    @property
    def in_transaction(self) -> bool:
        """True while the server session has an explicit (or implicit)
        transaction open for this connection."""
        return self._in_transaction

    def begin(self) -> None:
        """Open an explicit transaction on the server session."""
        self._check_open()
        self._txn_verb({"op": "begin"})

    def commit(self) -> None:
        """Commit the open transaction; a no-op without one."""
        self._check_open()
        self._txn_verb({"op": "commit"})

    def rollback(self) -> None:
        """Roll back the open transaction; a no-op without one."""
        self._check_open()
        self._txn_verb({"op": "rollback"})

    def _txn_verb(self, message: dict) -> None:
        reply = self._request(message)
        self._adopt_txn_state(reply)

    def _adopt_txn_state(self, reply: dict) -> None:
        if "autocommit" in reply:
            self._autocommit = bool(reply["autocommit"])
        if "in_transaction" in reply:
            self._in_transaction = bool(reply["in_transaction"])

    def close(self) -> None:
        """Send a best-effort goodbye and close the socket. Idempotent;
        the server releases the session's cursors, admission slots, and
        tenant-quota holds either way (a vanished client must never pin
        server resources)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            try:
                self._sock.settimeout(2.0)
                send_frame(self._sock, {"op": "close", "id": 0})
                recv_frame(self._sock, MAX_FRAME)
            except (OSError, InterfaceError):
                pass
            finally:
                try:
                    self._sock.close()
                except OSError:
                    pass

    def __enter__(self) -> "RemoteConnection":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- driver extensions ---------------------------------------------------

    @property
    def metadata(self) -> "RemoteMetaData":
        """The ``DatabaseMetaData`` analogue, proxied over the wire."""
        self._check_open()
        return RemoteMetaData(self)

    def stats(self) -> dict:
        """The server-side session stats document (the same shape as an
        embedded ``Connection.stats()``, plus a ``server`` section) with
        this side's wire metrics under ``client``."""
        self._check_open()
        snapshot = self._request({"op": "stats"})["stats"]
        snapshot["client"] = self.metrics.snapshot()
        return snapshot

    def server_health(self) -> dict:
        """The server's unauthenticated ``health`` document."""
        self._check_open()
        reply = self._request({"op": "health"})
        return {key: value for key, value in reply.items()
                if key not in ("id", "ok")}

    def _cancel_out_of_band(self, cursor_id: Optional[int]) -> None:
        """Open a fresh connection and cancel a statement on this
        session; never raises (cancellation is advisory)."""
        if self._session is None:
            return
        try:
            host, port = self.dsn.address
            with socket.create_connection(
                    (host, port),
                    timeout=self.config.remote_connect_timeout) as sock:
                send_frame(sock, {"op": "cancel", "id": 1,
                                  "session": self._session,
                                  "secret": self._secret,
                                  "cursor": cursor_id})
                recv_frame(sock, MAX_FRAME)
        except (OSError, InterfaceError, Error):
            pass

    def _check_open(self) -> None:
        if self._closed:
            raise InterfaceError("connection is closed")


class RemoteMetaData:
    """Metadata discovery over the wire (``conn.metadata.tables()``),
    mirroring :class:`repro.driver.metadata.DatabaseMetaData` including
    its callable-instance and ``get_`` aliases."""

    def __init__(self, connection: RemoteConnection):
        self._connection = connection

    def __call__(self) -> "RemoteMetaData":
        return self

    def _fetch(self, kind: str, **args) -> list:
        reply = self._connection._request(
            {"op": "metadata", "kind": kind, **args})
        return [tuple(item) if isinstance(item, list) else item
                for item in reply["result"]]

    def catalogs(self) -> list:
        return self._fetch("catalogs")

    def schemas(self) -> list:
        return self._fetch("schemas")

    def tables(self, schema: Optional[str] = None) -> list:
        return self._fetch("tables", schema=schema)

    def procedures(self, schema: Optional[str] = None) -> list:
        return self._fetch("procedures", schema=schema)

    def columns(self, table: str, schema: Optional[str] = None) -> list:
        return self._fetch("columns", table=table, schema=schema)

    def procedure_columns(self, name: str) -> list:
        return self._fetch("procedure_columns", name=name)

    get_catalogs = catalogs
    get_schemas = schemas
    get_tables = tables
    get_procedures = procedures
    get_columns = columns
    get_procedure_columns = procedure_columns


def _decode_description(wire) -> Optional[list[tuple]]:
    if wire is None:
        return None
    description = []
    for label, kind, precision, scale, nullable in wire:
        description.append(
            (label, _type_object_for(kind), None, None, precision,
             scale, nullable))
    return description


class RemoteCursor:
    """A PEP 249 cursor whose result set lives server-side.

    ``execute()`` runs the statement on the server (which starts the
    lazy stream there); fetches pull pages of at most
    ``max(arraysize, requested)`` rows per round trip, buffering
    client-side, so both sides stay O(page) and ``arraysize`` tunes the
    wire granularity the way it tunes embedded batch decoding.
    """

    arraysize = 1

    def __init__(self, connection: RemoteConnection):
        self.connection = connection
        self._cursor_id: Optional[int] = None
        self._buffer: list[tuple] = []
        self._exhausted = True
        self._description: Optional[list[tuple]] = None
        self._closed = False
        self.rowcount = -1
        self.lastrowid = None

    # -- metadata ------------------------------------------------------------

    @property
    def description(self) -> Optional[list[tuple]]:
        return self._description

    # -- execution -----------------------------------------------------------

    def execute(self, operation: str, parameters: Sequence = (), *,
                timeout: Optional[float] = None) -> "RemoteCursor":
        return self._execute_op({
            "op": "execute",
            "sql": operation,
            "params": encode_row(parameters),
        }, timeout)

    def executemany(self, operation: str,
                    seq_of_parameters: Iterable[Sequence], *,
                    timeout: Optional[float] = None) -> "RemoteCursor":
        return self._execute_op({
            "op": "executemany",
            "sql": operation,
            "param_sets": [encode_row(parameters)
                           for parameters in seq_of_parameters],
        }, timeout)

    def callproc(self, procname: str,
                 parameters: Sequence = ()) -> Sequence:
        """Call a parameterized data service function; the server routes
        the JDBC escape form through its embedded ``callproc``."""
        markers = ", ".join(["?"] * len(parameters))
        self.execute(f"{{call {procname}({markers})}}", parameters)
        return parameters

    def _execute_op(self, message: dict,
                    timeout: Optional[float]) -> "RemoteCursor":
        self._check_open()
        connection = self.connection
        if timeout is None:
            timeout = connection.default_timeout
        message["timeout"] = timeout
        if self._cursor_id is not None:
            message["cursor"] = self._cursor_id
        with connection.tracer.span("execute", sql=message["sql"]):
            reply = connection._request(message)
        connection._queries_executed.increment()
        self._cursor_id = reply["cursor"]
        self._description = _decode_description(reply["description"])
        self.rowcount = reply["rowcount"]
        self.lastrowid = reply.get("lastrowid")
        connection._adopt_txn_state(reply)
        self._buffer = []
        self._exhausted = False
        return self

    def cancel(self) -> None:
        """Cancel the statement in flight (safe from any thread, even
        while this cursor's connection is blocked inside a fetch): the
        cancel frame travels out-of-band on its own connection."""
        if self._cursor_id is not None:
            self.connection._cancel_out_of_band(self._cursor_id)

    # -- fetching ------------------------------------------------------------

    def _pull(self, rows: int) -> None:
        """One fetch round trip for up to *rows* more rows."""
        reply = self.connection._request({
            "op": "fetch",
            "cursor": self._cursor_id,
            "rows": rows,
        })
        page = [decode_row(row) for row in reply["rows"]]
        self._buffer.extend(page)
        self.connection._rows_fetched.add(len(page))
        # Adopt the server-side count whenever it is known, not only on
        # the exhausted frame — the embedded cursor learns its rowcount
        # the moment its stream drains, which can happen one frame
        # before the server reports exhaustion on older paging logic;
        # adopting eagerly keeps remote rowcount == embedded rowcount
        # after identical fetch sequences.
        if reply["rowcount"] >= 0:
            self.rowcount = reply["rowcount"]
        if reply["exhausted"]:
            self._exhausted = True

    def fetchone(self) -> Optional[tuple]:
        self._check_results()
        if not self._buffer and not self._exhausted:
            self._pull(max(1, self.arraysize))
        if self._buffer:
            return self._buffer.pop(0)
        return None

    def fetchmany(self, size: Optional[int] = None) -> list[tuple]:
        self._check_results()
        if size is None:
            size = self.arraysize
        while len(self._buffer) < size and not self._exhausted:
            self._pull(max(size - len(self._buffer), 1))
        chunk = self._buffer[:size]
        del self._buffer[:size]
        return chunk

    def fetchall(self) -> list[tuple]:
        self._check_results()
        while not self._exhausted:
            self._pull(max(self.arraysize, DEFAULT_FETCH_PAGE))
        chunk = self._buffer
        self._buffer = []
        return chunk

    def __iter__(self) -> Iterator[tuple]:
        while True:
            chunk = self.fetchmany(self.arraysize)
            if not chunk:
                return
            yield from chunk

    # -- lifecycle -----------------------------------------------------------

    def __enter__(self) -> "RemoteCursor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def setinputsizes(self, sizes) -> None:
        self._check_open()

    def setoutputsize(self, size, column=None) -> None:
        self._check_open()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        cursor_id, self._cursor_id = self._cursor_id, None
        self._buffer = []
        self._description = None
        if cursor_id is not None and not self.connection._closed:
            try:
                self.connection._request({"op": "close_cursor",
                                          "cursor": cursor_id})
            except (Error, OSError):
                pass  # best effort: the session teardown also releases

    def _check_open(self) -> None:
        if self._closed:
            raise InterfaceError("cursor is closed")
        self.connection._check_open()

    def _check_results(self) -> None:
        self._check_open()
        if self._description is None:
            raise ProgrammingError("no query has been executed")
