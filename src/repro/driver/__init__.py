"""The JDBC-analog DB-API 2.0 driver (S8 in DESIGN.md).

``connect(runtime_or_dsn)`` gives legacy SQL applications access to the
XML data services world through the SQL-to-XQuery translator, with the
section-4 delimited-text result path (default) or the XML
materialization path. Connections carry per-statement deadlines,
cross-thread ``Cursor.cancel()``, and runtime admission control (see
DESIGN.md "Query lifecycle").
"""

from ..errors import (
    DataError,
    DatabaseError,
    Error,
    IntegrityError,
    InterfaceError,
    InternalError,
    NotSupportedError,
    OperationalError,
    ProgrammingError,
    Warning,
)
from .codec import convert_cell, decode_delimited, decode_xml
from .dbapi import (
    BINARY,
    DATETIME,
    NUMBER,
    ROWID,
    STATS_SCHEMA_VERSION,
    STRING,
    Connection,
    Cursor,
    apilevel,
    connect,
    paramstyle,
    register_runtime,
    threadsafety,
    unregister_runtime,
)
from .dsn import DEFAULT_PORT, DSN, parse_dsn
from .metadata import DatabaseMetaData

__all__ = [
    "BINARY",
    "Connection",
    "Cursor",
    "DATETIME",
    "DEFAULT_PORT",
    "DSN",
    "DataError",
    "DatabaseError",
    "DatabaseMetaData",
    "Error",
    "IntegrityError",
    "InterfaceError",
    "InternalError",
    "NUMBER",
    "NotSupportedError",
    "OperationalError",
    "ProgrammingError",
    "ROWID",
    "STATS_SCHEMA_VERSION",
    "STRING",
    "Warning",
    "apilevel",
    "connect",
    "convert_cell",
    "decode_delimited",
    "decode_xml",
    "paramstyle",
    "parse_dsn",
    "register_runtime",
    "threadsafety",
    "unregister_runtime",
]
