"""PEP 249 (DB-API 2.0) driver over the DSP runtime — the JDBC analogue.

``connect(runtime)`` opens a connection whose cursors accept SQL-92
SELECT statements, translate them to XQuery (section 3), execute them on
the DSP runtime, and decode results through either of the two section-4
result paths (``format="delimited"`` — the paper's optimized text
encoding — or ``format="xml"`` — materialize and re-parse XML).

INSERT/UPDATE/DELETE never reach the XQuery generator: they compile to
source-level mutation plans (``repro.engine.dml``) and run through the
connection's transaction manager (``repro.engine.txn``) — autocommit by
default, with ``begin()``/``commit()``/``rollback()`` and
``autocommit = False`` for multi-statement transactions.

Stored procedures (parameterized data service functions, Figure 2) are
reachable via ``Cursor.callproc``.
"""

from __future__ import annotations

import re
import threading
from typing import Iterable, Iterator, Optional, Sequence, Union

from .. import clock, errors
from ..catalog import MetadataCache, ProcedureMetadata
from ..config import DRIVER_FIELDS, RuntimeConfig, merge_legacy_kwargs
from ..engine.dml import mutation_parameter_count, plan_mutation
from ..engine.dsp import DSPRuntime
from ..engine.lifecycle import AdmissionSlot, QueryContext
from ..engine.txn import TransactionManager
from ..obs import LRUCache, MetricsRegistry, Tracer
from ..errors import (
    AdmissionRejectedError,
    DataError,
    DatabaseError,
    Error,
    IntegrityError,
    InterfaceError,
    InternalError,
    NotSupportedError,
    OperationalError,
    ProgrammingError,
    QueryCancelledError,
    QueryLifecycleError,
    QueryTimeoutError,
    ReproError,
    Warning,
    to_driver_error,
)
from ..sql import is_mutation, parse_mutation
from ..translator import (
    ResultColumn,
    SQLToXQueryTranslator,
    TranslationResult,
)
from ..xmlmodel import Element, serialize
from .codec import decode_delimited, decode_xml, iter_decode_delimited
from .dsn import DSN, parse_dsn
from .metadata import DatabaseMetaData

apilevel = "2.0"
#: Threads may share the module and connections (each thread should
#: still use its own cursor): the statement and metadata caches are
#: thread-safe single-flight LRUs (repro.obs).
threadsafety = 2
paramstyle = "qmark"

FORMATS = ("delimited", "xml")

#: Default bound on cached translations per connection.
DEFAULT_STATEMENT_CACHE_CAPACITY = 256

#: Version of the ``Connection.stats()`` document shape. Bump on any
#: breaking change to its sections so dashboards can detect drift.
#: v2 added the ``transactions`` section (the write path); v3 added the
#: grouped-aggregation runtime counters (``vector.agg_queries``,
#: ``vector.agg_groups``, ``parallel.partial_aggs``) to the ``runtime``
#: section's counter set.
STATS_SCHEMA_VERSION = 3

#: PEP 249 type objects.


class _TypeObject:
    def __init__(self, name: str, *kinds: str):
        self.name = name
        self._kinds = frozenset(kinds)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, _TypeObject):
            return self._kinds == other._kinds
        return other in self._kinds

    def __hash__(self) -> int:
        return hash(self._kinds)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return self.name


STRING = _TypeObject("STRING", "CHAR", "VARCHAR")
NUMBER = _TypeObject("NUMBER", "SMALLINT", "INTEGER", "BIGINT", "DECIMAL",
                     "REAL", "DOUBLE")
DATETIME = _TypeObject("DATETIME", "DATE", "TIME", "TIMESTAMP")
BINARY = _TypeObject("BINARY")
ROWID = _TypeObject("ROWID")


def _type_object_for(kind: str) -> _TypeObject:
    for candidate in (STRING, NUMBER, DATETIME):
        if kind == candidate:
            return candidate
    return STRING


#: Registered runtimes addressable by DSN application name.
_runtime_registry: dict[str, DSPRuntime] = {}
_registry_lock = threading.Lock()


def register_runtime(application: str, runtime: DSPRuntime) -> None:
    """Make *runtime* addressable as ``repro://<application>/...`` DSNs.

    Registration is process-wide (the analogue of a JDBC driver
    manager's URL table); re-registering a name replaces the previous
    runtime.
    """
    with _registry_lock:
        _runtime_registry[application] = runtime


def unregister_runtime(application: str) -> None:
    with _registry_lock:
        _runtime_registry.pop(application, None)


def _resolve_embedded(dsn: DSN) -> DSPRuntime:
    """Resolve an embedded (``repro://``) DSN against the registry."""
    application = dsn.application
    with _registry_lock:
        runtime = _runtime_registry.get(application)
    if runtime is None:
        # The demo application connects without prior registration, the
        # way a sample DSN works out of the box in most drivers.
        from ..workloads import APPLICATION, build_runtime
        if application == APPLICATION:
            runtime = build_runtime()
            register_runtime(application, runtime)
        else:
            raise InterfaceError(
                f"no runtime registered for application "
                f"{application!r}; call "
                f"repro.driver.register_runtime({application!r}, runtime) "
                f"first")
    if dsn.project and dsn.project not in runtime.application.projects:
        raise InterfaceError(
            f"application {application!r} has no project "
            f"{dsn.project!r}")
    return runtime


def connect(target: Union[DSPRuntime, str], *,
            format: Optional[str] = None,
            config: Optional[RuntimeConfig] = None,
            tracer: Optional[Tracer] = None,
            metrics: Optional[MetricsRegistry] = None,
            **legacy):
    """Open a connection to a DSP (the JDBC ``getConnection``).

    *target* selects both the destination and the transport:

    * a :class:`DSPRuntime` instance — embedded, in-process;
    * ``repro://<application>/<project>?format=xml&timeout=5`` —
      embedded, resolved through :func:`register_runtime` (the demo
      application ``RTLApp`` resolves without registration);
    * ``repro+tcp://<host>:<port>/<application>/<project>?token=...`` —
      remote: the same PEP 249 surface served by a ``repro.server``
      instance over the wire (cursor semantics, exception classes, and
      ``stats()`` shape are identical).

    Tuning lives in *config* (a :class:`repro.RuntimeConfig`);
    precedence, lowest to highest, is config defaults → ``config=`` →
    DSN query parameters → keyword overrides. ``format`` stays a
    first-class keyword because callers switch it constantly; the
    remaining pre-1.1 keyword arguments (``default_timeout``,
    ``metadata_latency``, the cache capacities) still work for one
    release and raise a ``DeprecationWarning``.
    ``config.default_timeout`` (seconds) bounds every statement executed
    on the connection unless ``Cursor.execute(..., timeout=...)``
    overrides it.
    """
    parsed: Optional[DSN] = None
    if isinstance(target, str):
        parsed = parse_dsn(target)
        runtime = None if parsed.remote else _resolve_embedded(parsed)
    elif isinstance(target, DSPRuntime):
        runtime = target
    else:
        raise InterfaceError(
            f"connect() takes a DSPRuntime, a repro:// DSN, or a "
            f"repro+tcp:// DSN string, got {type(target).__name__}")
    merged = (config or RuntimeConfig())
    if parsed is not None and parsed.options:
        merged = merged.replace(**parsed.options)
    merged = merge_legacy_kwargs(merged, legacy, "connect()",
                                 allowed=DRIVER_FIELDS, ignore_none=True)
    if format is not None:
        merged = merged.replace(format=format)
    if parsed is not None and parsed.remote:
        from .remote import RemoteConnection
        return RemoteConnection(parsed, config=merged, tracer=tracer,
                                metrics=metrics)
    return Connection(runtime, config=merged, tracer=tracer,
                      metrics=metrics)


class Connection:
    """A PEP 249 connection bound to one DSP application."""

    #: The full PEP 249 exception set as connection attributes (the
    #: optional "Connection.Error" extension), so multi-connection code
    #: can catch errors without importing the driver module.
    Warning = Warning
    Error = Error
    InterfaceError = InterfaceError
    DatabaseError = DatabaseError
    DataError = DataError
    OperationalError = OperationalError
    IntegrityError = IntegrityError
    InternalError = InternalError
    ProgrammingError = ProgrammingError
    NotSupportedError = NotSupportedError

    def __init__(self, runtime: DSPRuntime,
                 config: Optional[RuntimeConfig] = None, *,
                 tracer: Optional[Tracer] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 **legacy):
        config = merge_legacy_kwargs(
            config or RuntimeConfig(), legacy, "Connection()",
            allowed=DRIVER_FIELDS, ignore_none=True)
        if config.format not in FORMATS:
            raise InterfaceError(
                f"unknown result format {config.format!r}; expected one "
                f"of {FORMATS}")
        self._runtime = runtime
        #: The resolved driver configuration (read-only).
        self.config = config
        self.format = config.format
        #: Per-connection observability: a tracer (off by default — the
        #: no-op path is one attribute check) and a metrics registry
        #: shared by the translator, both caches, and every cursor.
        self.tracer = Tracer(enabled=False) if tracer is None else tracer
        self.metrics = MetricsRegistry() if metrics is None else metrics
        self._metadata_api = runtime.metadata_api(
            latency=config.metadata_latency)
        self._metadata_cache = MetadataCache(
            self._metadata_api, capacity=config.metadata_cache_capacity,
            tracer=self.tracer, registry=self.metrics)
        self._metadata = DatabaseMetaData(self._metadata_api)
        self._translator = SQLToXQueryTranslator(
            self._metadata_cache, tracer=self.tracer,
            registry=self.metrics)
        self._statement_cache: LRUCache = LRUCache(
            config.statement_cache_capacity, registry=self.metrics,
            prefix="statement.cache")
        self._queries_executed = self.metrics.counter("queries.executed")
        self._rows_materialized = self.metrics.counter("rows.materialized")
        self._rows_streamed = self.metrics.counter("rows.streamed")
        self._execute_seconds = self.metrics.histogram("execute.seconds")
        #: Lifecycle outcome counters (ISSUE 3): how often queries on
        #: this connection timed out, were cancelled, or were refused
        #: admission.
        self._queries_timeout = self.metrics.counter("queries.timeout")
        self._queries_cancelled = self.metrics.counter("queries.cancelled")
        self._queries_rejected = self.metrics.counter("queries.rejected")
        #: Default per-statement deadline in seconds (None = unbounded);
        #: ``Cursor.execute(..., timeout=...)`` overrides per query.
        self.default_timeout = config.default_timeout
        #: Transaction demarcation and write serialization (the write
        #: path). Autocommit is the driver default: DML statements are
        #: durable on return until ``autocommit = False`` or an explicit
        #: ``begin()``.
        self._txn = TransactionManager(runtime)
        self._autocommit = True
        self._closed = False

    # -- PEP 249 surface ---------------------------------------------------

    def cursor(self) -> "Cursor":
        self._check_open()
        return Cursor(self)

    @property
    def autocommit(self) -> bool:
        """Whether DML statements commit on return (the default).

        Setting False makes the next write open an implicit
        transaction, closed only by :meth:`commit`/:meth:`rollback`.
        Setting True with a transaction open commits it first (the
        conventional driver behavior)."""
        return self._autocommit

    @autocommit.setter
    def autocommit(self, value: bool) -> None:
        self._check_open()
        value = bool(value)
        if value and self._txn.in_transaction:
            self._txn.commit()
        self._autocommit = value

    @property
    def in_transaction(self) -> bool:
        """True while an explicit or implicit transaction is open
        (driver extension, mirrors ``sqlite3.Connection``)."""
        return self._txn.in_transaction

    def begin(self) -> None:
        """Open an explicit transaction (driver extension). Raises
        ``ProgrammingError`` if one is already open."""
        self._check_open()
        self._txn.begin()

    def commit(self) -> None:
        """Commit the open transaction; a no-op without one (so
        PEP 249's commit-on-a-fresh-connection idiom stays cheap)."""
        self._check_open()
        self._txn.commit()

    def rollback(self) -> None:
        """Roll back the open transaction — every enlisted source
        restores its pre-transaction rows; a no-op without one."""
        self._check_open()
        self._txn.rollback()

    def close(self) -> None:
        """Close the connection and release the memory its caches hold:
        cached translations are dropped and the metadata cache is
        invalidated. A pending transaction is rolled back (PEP 249).
        Idempotent."""
        if not self._closed:
            self._txn.close()
        self._closed = True
        self._statement_cache.clear()
        self._metadata_cache.invalidate()

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- driver extensions ------------------------------------------------------

    @property
    def metadata(self) -> DatabaseMetaData:
        """The java.sql.DatabaseMetaData analogue. The instance is
        callable (returning itself), so ``conn.metadata.tables()`` and
        the JDBC-flavored ``conn.metadata().tables()`` both work."""
        self._check_open()
        return self._metadata

    @property
    def translator(self) -> SQLToXQueryTranslator:
        return self._translator

    def translate(self, sql: str) -> TranslationResult:
        """Translate *sql* (with statement caching) without executing.

        The cache key includes the translation format, so a connection
        whose ``format`` changes never serves a ``delimited`` wrapper
        query where a ``recordset`` one is expected (or vice versa).
        Concurrent first translations of the same statement run once
        (single-flight).
        """
        self._check_open()
        fmt = "delimited" if self.format == "delimited" else "recordset"
        return self._statement_cache.get_or_load(
            (fmt, sql),
            lambda: self._translator.translate(sql, format=fmt))

    def _parse_mutation(self, sql: str):
        """Parse a DML statement (with statement caching): returns the
        AST plus its ``?`` marker count. DML shares the SELECT path's
        statement cache under a distinct key space — there is no
        XQuery to cache, but re-parsing hot statements would still be
        waste."""
        self._check_open()
        return self._statement_cache.get_or_load(
            ("dml", sql), lambda: self._load_mutation(sql))

    def _load_mutation(self, sql: str):
        statement = parse_mutation(sql)
        return statement, mutation_parameter_count(statement)

    def stats(self) -> dict:
        """A point-in-time observability snapshot: every named counter
        and histogram, both caches' hit/miss/eviction/size stats, the
        runtime's admission-controller state, and the runtime-side
        metrics (plan cache, ``source.retries``/``source.failures``).

        The document's shape is a versioned contract
        (``stats_schema_version``, currently :data:`STATS_SCHEMA_VERSION`
        = 3); dashboard consumers should pin on it, and any PR that
        renames or removes a section must bump it (README "Connection
        stats schema" documents every section). v2 added the
        ``transactions`` section: begun/committed/rolled_back counts,
        autocommitted and total DML statements, and rows written. v3
        added the grouped-aggregation counters (``vector.agg_queries``,
        ``vector.agg_groups``, ``parallel.partial_aggs``) under
        ``runtime.counters`` — same sections as v2."""
        snapshot = self.metrics.snapshot()
        snapshot["stats_schema_version"] = STATS_SCHEMA_VERSION
        snapshot["statement_cache"] = self._statement_cache.stats()
        snapshot["metadata_cache"] = self._metadata_cache.stats_dict()
        snapshot["plan_cache"] = self._runtime.plan_cache.stats()
        snapshot["admission"] = self._runtime.admission.stats()
        snapshot["runtime"] = self._runtime.metrics.snapshot()
        snapshot["transactions"] = self._txn.stats()
        return snapshot

    def _check_open(self) -> None:
        if self._closed:
            raise InterfaceError("connection is closed")


def _emit_plan_events(tracer: Tracer, plan, actuals: dict) -> None:
    """Attach one estimated-vs-actual event per cost-planned node to
    the current trace (``\\trace`` renders them under the execute
    span)."""
    for report in plan.plan_reports:
        for node in report["nodes"]:
            estimate = node["estimate"]
            tracer.event(
                "plan.node",
                label=node["label"],
                estimated="?" if estimate is None
                else f"{estimate:.1f}",
                actual=actuals.get(node["id"], 0))


def _chunks_then_plan_events(chunks: Iterator[str], tracer: Tracer,
                             plan, actuals: dict) -> Iterator[str]:
    """Pass the streamed text through; once the stream drains (so the
    per-node actual counts are final), emit the plan events — the
    tracer parents them on the completed execute root."""
    yield from chunks
    _emit_plan_events(tracer, plan, actuals)


class Cursor:
    """A PEP 249 cursor: execute SQL, fetch typed rows.

    With the default ``delimited`` format, ``execute()`` starts a
    **streaming** result: the compiled query pipeline and the delimited
    decoder are both lazy, so ``fetchone()``/``fetchmany()`` pull rows
    on demand and ``rowcount`` stays -1 until the stream is exhausted
    (PEP 249 permits -1 when the count is not yet known). ``fetchall()``
    drains the stream and returns exactly what the eager path returned.
    The ``xml`` format and ``callproc`` still materialize at execute
    time.
    """

    arraysize = 1

    def __init__(self, connection: Connection):
        self.connection = connection
        self._rows: list[tuple] = []
        self._index = 0
        self._stream: Optional[Iterator[tuple]] = None
        self._fetched = 0
        #: Rows already charged against the admission slot's in-flight
        #: budget; with a batched pipeline this tracks rows *buffered*
        #: by the engine (a whole batch decodes ahead of the fetch
        #: position), not just rows handed to the application.
        self._charged_rows = 0
        self._description: Optional[list[tuple]] = None
        self._closed = False
        #: Lifecycle state for the statement in flight: the QueryContext
        #: (deadline + token) and the admission slot it holds.
        self._context: Optional[QueryContext] = None
        self._slot: Optional[AdmissionSlot] = None
        self.rowcount = -1
        self.lastrowid = None

    # -- metadata ------------------------------------------------------------

    @property
    def description(self) -> Optional[list[tuple]]:
        return self._description

    def _set_description(self, columns: Sequence[ResultColumn]) -> None:
        self._description = [
            (column.label, _type_object_for(column.sql_type.kind),
             None, None, column.sql_type.precision,
             column.sql_type.scale, column.nullable)
            for column in columns
        ]

    # -- execution --------------------------------------------------------------

    #: JDBC CallableStatement escape syntax: {call proc(?, ?)} — also
    #: accepted without braces as CALL proc(?, ?).
    _CALL_RE = re.compile(
        r"^\s*(?:\{\s*call\s+([A-Za-z_][\w$]*)\s*(?:\((.*)\))?\s*\}"
        r"|call\s+([A-Za-z_][\w$]*)\s*(?:\((.*)\))?)\s*;?\s*$",
        re.IGNORECASE | re.DOTALL)

    def execute(self, operation: str,
                parameters: Sequence = (), *,
                timeout: Optional[float] = None) -> "Cursor":
        """Execute a statement. *timeout* (seconds, keyword-only)
        bounds this execution — including its fetch phase for streamed
        results — overriding the connection's ``default_timeout``."""
        self._check_open()
        call = self._CALL_RE.match(operation)
        if call is not None:
            name = call.group(1) or call.group(3)
            args = call.group(2) or call.group(4) or ""
            markers = [part.strip() for part in args.split(",")
                       if part.strip()]
            if any(marker != "?" for marker in markers):
                raise ProgrammingError(
                    "CALL arguments must be ? parameter markers")
            if len(markers) != len(parameters):
                raise ProgrammingError(
                    f"procedure call has {len(markers)} markers, "
                    f"{len(parameters)} parameters given")
            self.callproc(name, parameters)
            return self
        if is_mutation(operation):
            return self._execute_mutation(operation, parameters)
        return self._execute_translated(operation, None, parameters,
                                        timeout)

    def _execute_mutation(self, operation: str,
                          parameters: Sequence) -> "Cursor":
        """Execute one INSERT/UPDATE/DELETE through the transaction
        manager. DML has no result set: ``description`` becomes None
        (so fetching raises ``ProgrammingError``), ``rowcount`` is the
        affected-row count, and ``lastrowid`` is the backend-defined id
        of the last inserted row (None for UPDATE/DELETE)."""
        connection = self.connection
        tracer = connection.tracer
        self._release_stream()
        started = clock.monotonic()
        try:
            with tracer.span("execute", sql=operation):
                statement, marker_count = \
                    connection._parse_mutation(operation)
                if len(parameters) != marker_count:
                    raise ProgrammingError(
                        f"statement has {marker_count} parameter "
                        f"markers, {len(parameters)} values given")
                metadata = connection._metadata_cache.fetch_table(
                    statement.table.name, schema=statement.table.schema,
                    catalog=statement.table.catalog)
                manager = connection._txn
                if not connection.autocommit and \
                        not manager.in_transaction:
                    manager.begin()
                result = manager.run(
                    lambda: plan_mutation(connection._runtime, statement,
                                          metadata, parameters))
        except errors.SQLError as exc:
            raise ProgrammingError(str(exc)) from exc
        except Error:
            raise
        except ReproError as exc:
            raise to_driver_error(exc) from exc
        connection._queries_executed.increment()
        connection._execute_seconds.observe(clock.monotonic() - started)
        self._rows = []
        self._index = 0
        self._fetched = 0
        self._charged_rows = 0
        self._description = None
        self.rowcount = result.rowcount
        self.lastrowid = result.lastrowid
        return self

    def _execute_translated(self, operation: str,
                            translation, parameters: Sequence,
                            timeout: Optional[float]) -> "Cursor":
        """The shared execution core: *translation* is None for a
        normal ``execute()`` (loaded through the statement cache inside
        the span) or a pre-fetched result reused by ``executemany``."""
        connection = self.connection
        tracer = connection.tracer
        self._release_stream()
        if timeout is None:
            timeout = connection.default_timeout
        # The deadline starts now: admission queueing, translation, and
        # evaluation all spend from the same budget.
        context = QueryContext(timeout=timeout)
        self._context = context
        started = clock.monotonic()
        streamed = False
        slot: Optional[AdmissionSlot] = None
        try:
            with tracer.span("execute", sql=operation):
                if translation is None:
                    # The statement cache's loader opens the nested
                    # "translate" span (with its stage children) on a
                    # miss.
                    translation = connection.translate(operation)
                variables = translation.parameter_variables(parameters)
                slot = connection._runtime.admission.acquire(context)
                try:
                    with tracer.span("evaluate"):
                        plan = connection._runtime.prepare(
                            translation.xquery, tracer=tracer)
                        translation.stage_timings.setdefault(
                            "compile", plan.compile_seconds)
                        # With tracing on, a cost-planned statement also
                        # collects actual rows per plan node; the
                        # estimated-vs-actual events land on the execute
                        # span (streamed statements attach them when
                        # the stream drains).
                        actuals = {} if (tracer.enabled
                                         and plan.plan_reports) else None
                        if connection.format == "delimited" \
                                and plan.streams_text:
                            # Streaming path: set up the lazy pipeline;
                            # rows are pulled (and decoded) at fetch
                            # time. The slot is held until the stream
                            # is exhausted or released.
                            chunks = plan.stream_chunks(
                                variables, context=context,
                                actuals=actuals)
                            if actuals is not None:
                                chunks = _chunks_then_plan_events(
                                    chunks, tracer, plan, actuals)
                            stream = iter_decode_delimited(
                                chunks, translation.columns,
                                context=context)
                            streamed = True
                        else:
                            result = plan.evaluate(variables,
                                                   context=context,
                                                   actuals=actuals)
                            if actuals is not None:
                                _emit_plan_events(tracer, plan, actuals)
                    if not streamed:
                        with tracer.span("materialize"):
                            self._rows = self._decode(
                                result, translation.columns)
                finally:
                    if not streamed and slot is not None:
                        slot.release()
                        slot = None
        except errors.SQLError as exc:
            raise ProgrammingError(str(exc)) from exc
        except Error:
            raise
        except ReproError as exc:
            if slot is not None:
                slot.release()
            self._note_lifecycle_failure(exc)
            raise to_driver_error(exc) from exc
        except BaseException:
            if slot is not None:
                slot.release()
            raise
        connection._queries_executed.increment()
        connection._execute_seconds.observe(clock.monotonic() - started)
        self._set_description(translation.columns)
        self._index = 0
        self._fetched = 0
        self._charged_rows = 0
        if streamed:
            self._stream = stream
            self._slot = slot
            self._rows = []
            self.rowcount = -1  # unknown until the stream is exhausted
        else:
            connection._rows_materialized.add(len(self._rows))
            self.rowcount = len(self._rows)
        return self

    def executemany(self, operation: str,
                    seq_of_parameters: Iterable[Sequence], *,
                    timeout: Optional[float] = None) -> "Cursor":
        """Execute *operation* once per parameter set, translating the
        statement exactly once: the cached translation is reused across
        every set instead of re-entering ``execute()``'s cache lookup."""
        self._check_open()
        if self._CALL_RE.match(operation):
            raise ProgrammingError(
                "executemany() does not accept CALL statements")
        if is_mutation(operation):
            return self._executemany_mutation(operation,
                                              seq_of_parameters)
        try:
            translation = self.connection.translate(operation)
        except errors.SQLError as exc:
            raise ProgrammingError(str(exc)) from exc
        for parameters in seq_of_parameters:
            self._execute_translated(operation, translation, parameters,
                                     timeout)
        return self

    def _executemany_mutation(self, operation: str,
                              seq_of_parameters) -> "Cursor":
        """Batched DML: the statement parses once and every parameter
        set runs as one unit — inside the open transaction when there
        is one, otherwise wrapped in an implicit transaction so a
        mid-batch failure never leaves a torn batch behind.
        ``rowcount`` is the batch total; ``lastrowid`` is the last
        statement's."""
        connection = self.connection
        self._release_stream()
        try:
            statement, marker_count = connection._parse_mutation(operation)
            sets = [tuple(parameters)
                    for parameters in seq_of_parameters]
            for parameters in sets:
                if len(parameters) != marker_count:
                    raise ProgrammingError(
                        f"statement has {marker_count} parameter "
                        f"markers, {len(parameters)} values given")
            metadata = connection._metadata_cache.fetch_table(
                statement.table.name, schema=statement.table.schema,
                catalog=statement.table.catalog)
            manager = connection._txn
            if not connection.autocommit and not manager.in_transaction:
                manager.begin()
            results = manager.run_batch([
                lambda parameters=parameters: plan_mutation(
                    connection._runtime, statement, metadata, parameters)
                for parameters in sets])
        except errors.SQLError as exc:
            raise ProgrammingError(str(exc)) from exc
        except Error:
            raise
        except ReproError as exc:
            raise to_driver_error(exc) from exc
        connection._queries_executed.add(len(sets))
        self._rows = []
        self._index = 0
        self._fetched = 0
        self._charged_rows = 0
        self._description = None
        self.rowcount = sum(result.rowcount for result in results)
        self.lastrowid = results[-1].lastrowid if results else None
        return self

    def cancel(self) -> None:
        """Cancel the statement in flight (driver extension; safe from
        any thread). The executing/fetching thread observes the token
        at its next tuple-batch check and raises ``OperationalError``;
        idle cursors ignore the call."""
        context = self._context
        if context is not None:
            context.cancel("Cursor.cancel()")

    def _note_lifecycle_failure(self, exc: ReproError) -> None:
        """Count and trace a lifecycle abort (timeout / cancel /
        admission-reject) so every outcome shows in stats()."""
        connection = self.connection
        if isinstance(exc, QueryTimeoutError):
            connection._queries_timeout.increment()
            connection.tracer.event("query.timeout", detail=str(exc))
        elif isinstance(exc, QueryCancelledError):
            connection._queries_cancelled.increment()
            connection.tracer.event("query.cancelled", detail=str(exc))
        elif isinstance(exc, AdmissionRejectedError):
            connection._queries_rejected.increment()
            connection.tracer.event("query.rejected", detail=str(exc))

    def callproc(self, procname: str,
                 parameters: Sequence = ()) -> Sequence:
        """Call a parameterized data service function (Figure 2: 'If a
        function has parameters, it becomes a callable SQL stored
        procedure')."""
        self._check_open()
        self._release_stream()
        try:
            proc = self.connection._metadata_cache.fetch_procedure(procname)
            rows = self._execute_procedure(proc, parameters)
        except Error:
            raise
        except ReproError as exc:
            raise DatabaseError(str(exc)) from exc
        self._rows = rows
        columns = [ResultColumn(label=c.name, element=c.name,
                                sql_type=c.sql_type, nullable=c.nullable)
                   for c in proc.columns]
        self._set_description(columns)
        self.rowcount = len(rows)
        self._index = 0
        return parameters

    def _execute_procedure(self, proc: ProcedureMetadata,
                           parameters: Sequence) -> list[tuple]:
        if len(parameters) != len(proc.parameters):
            raise ProgrammingError(
                f"procedure {proc.name} takes {len(proc.parameters)} "
                f"parameters, {len(parameters)} given")
        runtime = self.connection._runtime
        result = runtime.call_function(
            proc.namespace, proc.function_name,
            [[value] if value is not None else [] for value in parameters])
        rows = []
        from .codec import convert_cell
        for element in result:
            assert isinstance(element, Element)
            cells = list(element.child_elements())
            row = []
            for cell, column in zip(cells, proc.columns):
                if cell.is_empty():
                    row.append(None)
                else:
                    row.append(convert_cell(cell.string_value(),
                                            column.sql_type))
            rows.append(tuple(row))
        return rows

    def _decode(self, result: list,
                columns: list[ResultColumn]) -> list[tuple]:
        if self.connection.format == "delimited":
            stream = "".join(str(item) for item in result)
            return decode_delimited(stream, columns)
        # XML path: serialize the RECORDSET (the wire transfer) and parse
        # it back client-side — the configuration the paper found slow.
        if len(result) != 1 or not isinstance(result[0], Element):
            raise DatabaseError(
                "expected a single RECORDSET element from the server")
        return decode_xml(serialize(result[0]), columns)

    # -- fetching ------------------------------------------------------------------

    def _finish_stream(self) -> None:
        """The stream is exhausted: the row count is now known and the
        admission slot is returned."""
        self.rowcount = self._fetched
        self._stream = None
        self._release_slot()

    def _release_slot(self) -> None:
        if self._slot is not None:
            slot, self._slot = self._slot, None
            slot.release()

    def _release_stream(self) -> None:
        """Close any live pipeline (re-execute, close, abort):
        generator close propagates through the decoder into the
        executor stages, so the engine drops its frames immediately,
        and the admission slot is returned."""
        if self._stream is not None:
            stream, self._stream = self._stream, None
            close = getattr(stream, "close", None)
            if close is not None:
                close()
        self._release_slot()

    def _pull_streamed(self, limit: Optional[int]) -> list[tuple]:
        """Pull up to *limit* rows (all remaining when None) from the
        live stream, wrapping engine errors — which now surface at
        fetch time — the same way execute() wraps them. The query's
        deadline/cancellation is checked once per fetch call (in
        addition to the pipeline's per-batch ticks), and freshly pulled
        rows are charged against the admission controller's in-flight
        budget."""
        stream = self._stream
        context = self._context
        chunk: list[tuple] = []
        exhausted = False
        try:
            if context is not None:
                context.check()
            while limit is None or len(chunk) < limit:
                try:
                    chunk.append(next(stream))
                except StopIteration:
                    exhausted = True
                    break
            if self._slot is not None:
                # Charge whichever is further along: rows the engine
                # has buffered (whole batches decode ahead of the fetch
                # position) or rows actually handed out. Monotonic, so
                # each row is charged exactly once.
                buffered = (context.rows_buffered
                            if context is not None else 0)
                total = max(buffered, self._fetched + len(chunk))
                delta = total - self._charged_rows
                if delta > 0:
                    self._slot.note_rows(delta)
                    self._charged_rows = total
        except Error:
            raise
        except ReproError as exc:
            # Abort: tear the pipeline down so the engine's frames (and
            # the admission slot) are released immediately.
            self._note_lifecycle_failure(exc)
            self._release_stream()
            raise to_driver_error(exc) from exc
        finally:
            self._fetched += len(chunk)
            if chunk:
                self.connection._rows_streamed.add(len(chunk))
            if exhausted:
                self._finish_stream()
        return chunk

    def fetchone(self) -> Optional[tuple]:
        self._check_results()
        if self._stream is not None:
            chunk = self._pull_streamed(1)
            return chunk[0] if chunk else None
        if self._index >= len(self._rows):
            return None
        row = self._rows[self._index]
        self._index += 1
        return row

    def fetchmany(self, size: Optional[int] = None) -> list[tuple]:
        self._check_results()
        if size is None:
            size = self.arraysize
        if self._stream is not None:
            return self._pull_streamed(size)
        chunk = self._rows[self._index:self._index + size]
        self._index += len(chunk)
        return chunk

    def fetchall(self) -> list[tuple]:
        self._check_results()
        if self._stream is not None:
            return self._pull_streamed(None)
        chunk = self._rows[self._index:]
        self._index = len(self._rows)
        return chunk

    def __iter__(self) -> Iterator[tuple]:
        """Iterate the result set, pulling ``arraysize`` rows per batch
        (so ``cursor.arraysize`` tunes the fetch granularity of a
        ``for`` loop the same way it tunes ``fetchmany()``)."""
        while True:
            chunk = self.fetchmany(self.arraysize)
            if not chunk:
                return
            yield from chunk

    # -- lifecycle -----------------------------------------------------------------

    def __enter__(self) -> "Cursor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def setinputsizes(self, sizes) -> None:
        self._check_open()

    def setoutputsize(self, size, column=None) -> None:
        self._check_open()

    def close(self) -> None:
        self._release_stream()
        self._closed = True
        self._rows = []
        self._description = None

    def _check_open(self) -> None:
        if self._closed:
            raise InterfaceError("cursor is closed")
        self.connection._check_open()

    def _check_results(self) -> None:
        self._check_open()
        if self._description is None:
            raise ProgrammingError("no query has been executed")
