"""One DSN grammar for both connect modes (embedded and remote).

The driver historically parsed ``repro://`` URLs inline in ``connect``;
with the network server there are now two transports behind one API, so
the grammar lives here as a single parsed :class:`DSN` value:

* ``repro://<application>/<project>?format=xml&timeout=5`` — embedded:
  the application resolves against the in-process runtime registry
  (``repro.driver.register_runtime``).
* ``repro+tcp://<host>[:<port>]/<application>/<project>?token=...`` —
  remote: the application is hosted by a ``repro.server`` instance at
  *host:port* (default port :data:`DEFAULT_PORT`) and the connection
  speaks the length-prefixed JSON frame protocol.

Query parameters are scheme-checked and type-coerced here; an unknown
key is an ``InterfaceError``, never silently ignored — a typo in
``?timeuot=5`` must not become an unbounded query.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional
from urllib.parse import parse_qsl, urlsplit

from ..errors import InterfaceError

#: Default TCP port of ``repro.server`` (``python -m repro.server``).
DEFAULT_PORT = 9944

EMBEDDED_SCHEME = "repro"
REMOTE_SCHEME = "repro+tcp"
SCHEMES = (EMBEDDED_SCHEME, REMOTE_SCHEME)

#: Query parameters understood by *both* transports, with their
#: coercions and the ``RuntimeConfig`` field they map to.
_COMMON_PARAMS = {
    "format": (str, "format"),
    "timeout": (float, "default_timeout"),
}

#: Parameters that only make sense in-process (they tune caches the
#: client never sees when the statement cache lives server-side).
_EMBEDDED_PARAMS = {
    "statement_cache_capacity": (int, "statement_cache_capacity"),
    "metadata_cache_capacity": (int, "metadata_cache_capacity"),
    "metadata_latency": (float, "metadata_latency"),
}

#: Parameters that only make sense over the wire.
_REMOTE_PARAMS = {
    "token": (str, None),  # credential, not a config field
    "connect_timeout": (float, "remote_connect_timeout"),
}


@dataclass(frozen=True)
class DSN:
    """A parsed data-source name: where to connect and how.

    ``options`` holds the coerced query parameters keyed by their
    :class:`repro.RuntimeConfig` field name, ready for
    ``config.replace(**dsn.options)``; credentials (``token``) stay out
    of the config and live on the DSN itself.
    """

    scheme: str
    application: str
    project: str = ""
    host: Optional[str] = None
    port: Optional[int] = None
    options: dict = field(default_factory=dict)
    token: Optional[str] = None

    @property
    def remote(self) -> bool:
        return self.scheme == REMOTE_SCHEME

    @property
    def address(self) -> tuple[str, int]:
        """The ``(host, port)`` endpoint (remote DSNs only)."""
        if not self.remote:
            raise InterfaceError(
                f"embedded DSN repro://{self.application} has no "
                f"network address")
        return self.host, self.port if self.port is not None \
            else DEFAULT_PORT

    def display(self) -> str:
        """The DSN back as a string, with the token redacted."""
        if self.remote:
            where = f"{self.host}:{self.port or DEFAULT_PORT}"
            path = "/".join(p for p in (self.application, self.project)
                            if p)
            return f"{REMOTE_SCHEME}://{where}/{path}"
        path = self.project and f"/{self.project}" or ""
        return f"{EMBEDDED_SCHEME}://{self.application}{path}"


def parse_dsn(dsn: str) -> DSN:
    """Parse a ``repro://`` or ``repro+tcp://`` DSN string.

    Raises :class:`repro.InterfaceError` for an unknown scheme, a
    missing application/host, an unknown query key, a query key that
    belongs to the other transport, or a value that fails coercion.
    """
    parts = urlsplit(dsn)
    if parts.scheme not in SCHEMES:
        raise InterfaceError(
            f"unsupported DSN scheme {parts.scheme!r}; expected "
            f"repro://<application>/<project> or "
            f"repro+tcp://<host>:<port>/<application>/<project>")
    remote = parts.scheme == REMOTE_SCHEME
    if remote:
        host = parts.hostname
        if not host:
            raise InterfaceError(f"DSN {dsn!r} names no host")
        try:
            port = parts.port  # urlsplit validates the int
        except ValueError:
            raise InterfaceError(
                f"DSN {dsn!r} has a malformed port") from None
        segments = [s for s in parts.path.split("/") if s]
        if not segments:
            raise InterfaceError(f"DSN {dsn!r} names no application")
        if len(segments) > 2:
            raise InterfaceError(
                f"DSN {dsn!r} has extra path segments; expected "
                f"/<application>/<project>")
        application = segments[0]
        project = segments[1] if len(segments) > 1 else ""
        params = dict(_COMMON_PARAMS, **_REMOTE_PARAMS)
        wrong_side = _EMBEDDED_PARAMS
    else:
        host = port = None
        application = parts.netloc
        if not application:
            raise InterfaceError(f"DSN {dsn!r} names no application")
        project = parts.path.strip("/")
        if "/" in project:
            raise InterfaceError(
                f"DSN {dsn!r} has extra path segments; expected "
                f"repro://<application>/<project>")
        params = dict(_COMMON_PARAMS, **_EMBEDDED_PARAMS)
        wrong_side = _REMOTE_PARAMS
    options: dict = {}
    token: Optional[str] = None
    for key, raw in parse_qsl(parts.query, keep_blank_values=True):
        spec = params.get(key)
        if spec is None:
            if key in wrong_side:
                other = EMBEDDED_SCHEME if remote else REMOTE_SCHEME
                this = REMOTE_SCHEME if remote else EMBEDDED_SCHEME
                raise InterfaceError(
                    f"DSN parameter {key!r} applies to {other}:// DSNs, "
                    f"not {this}://")
            raise InterfaceError(
                f"unknown DSN parameter {key!r}; expected one of "
                f"{sorted(params)}")
        coerce, target = spec
        try:
            value = coerce(raw)
        except ValueError:
            raise InterfaceError(
                f"bad value {raw!r} for DSN parameter {key!r}") from None
        if target is None:
            token = value
        else:
            options[target] = value
    return DSN(scheme=parts.scheme, application=application,
               project=project, host=host, port=port, options=options,
               token=token)
