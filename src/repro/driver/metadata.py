"""The java.sql.DatabaseMetaData analogue.

Reporting tools discover catalogs, schemas, tables, and columns through
driver metadata before issuing queries; this class surfaces the Figure-2
artifact mapping (applications → catalogs, .ds paths → schemas,
parameterless flat functions → tables, parameterized functions →
procedures) over the remote metadata API.

``Connection.metadata`` exposes one shared instance; the instance is
callable and returns itself, so both the property style
(``conn.metadata.tables()``) and the JDBC-flavored method style
(``conn.metadata().tables()``) work. The original ``get_``-prefixed
names remain as aliases.
"""

from __future__ import annotations

from ..catalog import MetadataAPI


class DatabaseMetaData:
    """Read-only catalog introspection for one connection."""

    def __init__(self, api: MetadataAPI):
        self._api = api

    def __call__(self) -> "DatabaseMetaData":
        """JDBC spells it ``connection.getMetaData()``; calling the
        property is a no-op returning the same instance."""
        return self

    def catalogs(self) -> list[str]:
        """The single catalog: the application name."""
        return [self._api._application.name]

    def schemas(self) -> list[str]:
        return self._api.list_schemas()

    def tables(self, schema: str | None = None) -> list[tuple[str, str]]:
        """(schema, table) pairs of SQL-visible tables."""
        return self._api.list_tables(schema=schema)

    def procedures(self, schema: str | None = None) \
            -> list[tuple[str, str]]:
        """(schema, procedure) pairs of parameterized functions."""
        return self._api.list_procedures(schema=schema)

    def columns(self, table: str, schema: str | None = None) \
            -> list[tuple[str, str, int, bool]]:
        """(name, type name, ordinal position, nullable) per column."""
        meta = self._api.fetch_table(table, schema=schema)
        return [(c.name, str(c.sql_type), c.position, c.nullable)
                for c in meta.columns]

    def procedure_columns(self, name: str,
                          schema: str | None = None) \
            -> list[tuple[str, str, str]]:
        """(name, kind, type) rows: parameters (IN) then result columns."""
        proc = self._api.fetch_procedure(name, schema=schema)
        rows = [(pname, "IN", xs_type)
                for pname, xs_type in proc.parameters]
        rows.extend((c.name, "RESULT", str(c.sql_type))
                    for c in proc.columns)
        return rows

    # Pre-1.1 spellings.
    get_catalogs = catalogs
    get_schemas = schemas
    get_tables = tables
    get_procedures = procedures
    get_columns = columns
    get_procedure_columns = procedure_columns
