"""repro.server — the network-facing DSP (DESIGN.md §13).

An asyncio TCP server exposing the PEP 249 surface over length-prefixed
JSON frames, with bearer-token tenants, per-tenant quotas layered on
the runtime's admission controller, paged streaming fetches, out-of-band
cancellation, and ``health``/``stats`` verbs.

Quickstart (serving the demo application)::

    python -m repro.server --token dev --port 9944

    # any client, same PEP 249 API as embedded:
    conn = repro.connect("repro+tcp://localhost:9944/RTLApp?token=dev")

Embedding::

    from repro.engine import TenantQuota
    from repro.server import TenantConfig, serve_in_thread

    handle = serve_in_thread(TenantConfig(
        "RTLApp", runtime, token="s3cret",
        quota=TenantQuota(max_concurrent=8, max_timeout=30.0)))
    ... repro.connect(handle.dsn("RTLApp", token="s3cret")) ...
    handle.stop()
"""

from .core import (
    DEFAULT_MAX_PAGE_ROWS,
    DSPServer,
    ServerHandle,
    TenantConfig,
    serve_in_thread,
)
from .protocol import MAX_FRAME, PROTOCOL_VERSION

__all__ = [
    "DEFAULT_MAX_PAGE_ROWS",
    "DSPServer",
    "MAX_FRAME",
    "PROTOCOL_VERSION",
    "ServerHandle",
    "TenantConfig",
    "serve_in_thread",
]
