"""The network-facing DSP server (DESIGN.md §13).

The paper's DSP was a *server* fronting many JDBC clients; this module
is that boundary for the reproduction: an asyncio TCP server speaking
the length-prefixed JSON frame protocol (``repro.server.protocol``) and
exposing the PEP 249 surface of the embedded driver over the wire.

Architecture:

* One asyncio event loop owns every socket. Blocking engine work
  (execute, fetch, metadata, stats) runs on the default thread-pool
  executor, so a slow query never stalls other sessions' frames; each
  connection's requests are handled strictly in order (no pipelining),
  which is exactly the embedded cursor's threading contract.
* One **session** per authenticated connection: a bearer-token
  handshake (``hello``) binds the connection to a tenant and opens a
  per-session embedded :class:`repro.driver.dbapi.Connection` to that
  tenant's runtime. Sessions are registered so an out-of-band ``cancel``
  frame — sent on a *fresh* connection, the way the Postgres wire
  protocol cancels — can reach an in-flight query by session id +
  secret while the session's own socket is blocked in a fetch.
* Results page through the embedded **lazy cursor**: ``fetch`` pulls at
  most ``max_page_rows`` rows per frame, so server memory stays
  O(page) regardless of result size; the client re-issues ``fetch``
  until the server reports exhaustion.
* **Tenant quotas** (:class:`repro.engine.TenantQuota`) layer above the
  runtime's global admission controller: per-tenant concurrency is
  claimed before the global slot, per-tenant in-flight rows are charged
  as pages are served, and per-execute deadlines are clamped to the
  tenant's ceiling. Violations map to ``AdmissionRejectedError`` and
  cross the wire as ``OperationalError``, same as embedded admission.
"""

from __future__ import annotations

import asyncio
import hmac
import itertools
import secrets
import threading
from dataclasses import dataclass, field
from typing import Optional

from .. import clock
from ..config import RuntimeConfig
from ..driver.dbapi import Connection
from ..engine.dsp import DSPRuntime
from ..engine.lifecycle import TenantQuota, TenantSlot
from ..errors import (
    AdmissionRejectedError,
    Error,
    InterfaceError,
    OperationalError,
    ReproError,
    to_driver_error,
)
from ..obs import MetricsRegistry
from .protocol import (
    MAX_FRAME,
    PROTOCOL_VERSION,
    _LENGTH,
    decode_row,
    encode_description,
    encode_error,
    encode_row,
    pack_frame,
    unpack_payload,
)

#: Rows the server will serve in one ``fetch`` frame at most, whatever
#: the client asks for — the lazy cursor keeps memory O(page).
DEFAULT_MAX_PAGE_ROWS = 10_000


@dataclass
class TenantConfig:
    """One tenant the server fronts: a runtime, a bearer token, and the
    quota protecting other tenants from it."""

    name: str
    runtime: DSPRuntime
    token: str
    quota: TenantQuota = field(default_factory=TenantQuota)
    #: Base config for this tenant's per-session embedded connections
    #: (``format``/``default_timeout`` from the handshake override it).
    config: RuntimeConfig = field(default_factory=RuntimeConfig)


class _ServerCursor:
    """A session's server-side cursor: the embedded cursor plus the
    tenant-quota slot its current statement holds."""

    __slots__ = ("cursor", "slot")

    def __init__(self, cursor):
        self.cursor = cursor
        self.slot: Optional[TenantSlot] = None

    def release_slot(self) -> None:
        if self.slot is not None:
            slot, self.slot = self.slot, None
            slot.release()

    def close(self) -> None:
        self.release_slot()
        self.cursor.close()


class _Session:
    """One authenticated connection's state."""

    __slots__ = ("id", "secret", "tenant", "connection", "cursors",
                 "_cursor_ids")

    def __init__(self, session_id: str, tenant: TenantConfig,
                 connection: Connection):
        self.id = session_id
        self.secret = secrets.token_hex(16)
        self.tenant = tenant
        self.connection = connection
        self.cursors: dict[int, _ServerCursor] = {}
        self._cursor_ids = itertools.count(1)

    def cursor_for(self, cursor_id: Optional[int]) -> tuple[int,
                                                            _ServerCursor]:
        """Get or create the server cursor for an ``execute`` frame.

        A fresh id is allocated when the client sends none; a known id
        reuses its cursor (re-execute); an id the server dropped (e.g.
        after a quota abort) is recreated under the same number so the
        client object stays usable.
        """
        if cursor_id is None:
            cursor_id = next(self._cursor_ids)
        cursor = self.cursors.get(cursor_id)
        if cursor is None:
            cursor = _ServerCursor(self.connection.cursor())
            self.cursors[cursor_id] = cursor
        return cursor_id, cursor

    def cancel_cursor(self, cursor_id: Optional[int]) -> bool:
        """Flag cancellation on one cursor (or every cursor when the
        frame names none); safe from any thread."""
        targets = ([self.cursors[cursor_id]]
                   if cursor_id is not None and cursor_id in self.cursors
                   else list(self.cursors.values())
                   if cursor_id is None else [])
        for cursor in targets:
            cursor.cursor.cancel()
        return bool(targets)

    def teardown(self) -> None:
        """Release everything the session holds: cancel whatever is in
        flight, close every cursor (dropping live streams, returning
        global admission slots) and release every tenant-quota hold."""
        for cursor in self.cursors.values():
            cursor.cursor.cancel()
        for cursor in self.cursors.values():
            try:
                cursor.close()
            except ReproError:  # a failing close must not leak the rest
                pass
        self.cursors.clear()
        self.connection.close()


class DSPServer:
    """The asyncio TCP server hosting one or more tenants.

    Lifecycle: ``await start()`` binds the socket (``port=0`` picks a
    free port, readable from :attr:`port` afterwards), ``await stop()``
    closes the listener and tears down every live session. For blocking
    callers (tests, the CLI, the shell) see :func:`serve_in_thread`.
    """

    def __init__(self, tenants, host: str = "127.0.0.1", port: int = 0,
                 metrics: Optional[MetricsRegistry] = None,
                 max_frame: int = MAX_FRAME,
                 max_page_rows: int = DEFAULT_MAX_PAGE_ROWS):
        if isinstance(tenants, TenantConfig):
            tenants = [tenants]
        if not isinstance(tenants, dict):
            tenants = {tenant.name: tenant for tenant in tenants}
        if not tenants:
            raise ValueError("a server needs at least one tenant")
        self.tenants: dict[str, TenantConfig] = dict(tenants)
        self.host = host
        self.port = port
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.max_frame = max_frame
        self.max_page_rows = max_page_rows
        self._server: Optional[asyncio.AbstractServer] = None
        self._sessions: dict[str, _Session] = {}
        self._session_ids = itertools.count(1)
        self._started_at: Optional[float] = None
        m = self.metrics
        self._c_connections = m.counter("server.connections")
        self._c_sessions = m.counter("server.sessions")
        self._c_executes = m.counter("server.executes")
        self._c_fetches = m.counter("server.fetches")
        self._c_rows = m.counter("server.rows_served")
        self._c_cancels = m.counter("server.cancels")
        self._c_errors = m.counter("server.errors")
        self._c_quota_rejections = m.counter("server.quota_rejections")
        self._c_auth_failures = m.counter("server.auth_failures")
        self._c_protocol_errors = m.counter("server.protocol_errors")
        self._c_bytes_in = m.counter("server.bytes_received")
        self._c_bytes_out = m.counter("server.bytes_sent")
        self._h_execute = m.histogram("server.execute_seconds")
        self._h_fetch = m.histogram("server.fetch_seconds")

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> "DSPServer":
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_at = clock.monotonic()
        return self

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        sessions = list(self._sessions.values())
        self._sessions.clear()
        loop = asyncio.get_running_loop()
        for session in sessions:
            await loop.run_in_executor(None, session.teardown)

    @property
    def address(self) -> tuple[str, int]:
        return self.host, self.port

    # -- connection handling -----------------------------------------------

    async def _read_frame(self, reader: asyncio.StreamReader) \
            -> Optional[dict]:
        """One frame, or None on a clean EOF between frames."""
        try:
            header = await reader.readexactly(_LENGTH.size)
        except asyncio.IncompleteReadError as exc:
            if exc.partial:
                raise InterfaceError(
                    "connection closed mid-frame") from None
            return None
        (length,) = _LENGTH.unpack(header)
        if length > self.max_frame:
            raise InterfaceError(
                f"protocol frame of {length} bytes exceeds the "
                f"{self.max_frame}-byte limit")
        try:
            payload = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise InterfaceError("connection closed mid-frame") from None
        self._c_bytes_in.add(_LENGTH.size + length)
        return unpack_payload(payload)

    async def _send(self, writer: asyncio.StreamWriter,
                    message: dict) -> None:
        data = pack_frame(message)
        writer.write(data)
        self._c_bytes_out.add(len(data))
        await writer.drain()

    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        self._c_connections.increment()
        session: Optional[_Session] = None
        try:
            while True:
                try:
                    message = await self._read_frame(reader)
                except InterfaceError:
                    self._c_protocol_errors.increment()
                    return
                if message is None:
                    return
                op = message.get("op")
                reply = {"id": message.get("id")}
                try:
                    if op == "hello":
                        if session is not None:
                            raise InterfaceError("already authenticated")
                        session = await self._hello(message)
                        reply.update(ok=True, session=session.id,
                                     secret=session.secret,
                                     protocol=PROTOCOL_VERSION)
                    elif op == "health":
                        reply.update(ok=True, **self._health())
                    elif op == "cancel":
                        reply.update(ok=True,
                                     cancelled=self._cancel(message))
                    elif op == "close":
                        if session is not None:
                            closing, session = session, None
                            await self._teardown(closing)
                        reply.update(ok=True)
                        await self._send(writer, reply)
                        return
                    elif session is None:
                        raise InterfaceError(
                            f"operation {op!r} requires a hello "
                            f"handshake first")
                    elif op in ("execute", "executemany"):
                        reply.update(ok=True,
                                     **await self._execute(session,
                                                           message))
                    elif op == "fetch":
                        reply.update(ok=True,
                                     **await self._fetch(session,
                                                         message))
                    elif op == "close_cursor":
                        await self._close_cursor(session, message)
                        reply.update(ok=True)
                    elif op == "metadata":
                        reply.update(ok=True,
                                     **await self._metadata(session,
                                                            message))
                    elif op == "stats":
                        reply.update(ok=True,
                                     stats=await self._stats(session))
                    elif op in ("begin", "commit", "rollback",
                                "autocommit"):
                        reply.update(ok=True,
                                     **await self._txn(session,
                                                       message))
                    else:
                        raise InterfaceError(
                            f"unknown operation {op!r}")
                except Error as exc:
                    self._note_error(exc)
                    reply = {"id": message.get("id"), "ok": False,
                             "error": encode_error(exc)}
                except ReproError as exc:
                    mapped = to_driver_error(exc)
                    self._note_error(mapped)
                    reply = {"id": message.get("id"), "ok": False,
                             "error": encode_error(mapped)}
                await self._send(writer, reply)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            if session is not None:
                await self._teardown(session)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _teardown(self, session: _Session) -> None:
        self._sessions.pop(session.id, None)
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, session.teardown)

    # -- verbs ---------------------------------------------------------------

    async def _hello(self, message: dict) -> _Session:
        if message.get("protocol") != PROTOCOL_VERSION:
            raise InterfaceError(
                f"protocol version mismatch: server speaks "
                f"{PROTOCOL_VERSION}, client sent "
                f"{message.get('protocol')!r}")
        tenant_name = message.get("tenant")
        token = message.get("token") or ""
        tenant = self.tenants.get(tenant_name)
        if tenant is None or not hmac.compare_digest(str(token),
                                                     tenant.token):
            self._c_auth_failures.increment()
            # One message for both failures: don't confirm tenant names
            # to unauthenticated callers.
            raise OperationalError(
                f"authentication failed for tenant {tenant_name!r}")
        project = message.get("project") or ""
        if project and project not in tenant.runtime.application.projects:
            raise InterfaceError(
                f"application {tenant_name!r} has no project "
                f"{project!r}")
        config = tenant.config
        fmt = message.get("format")
        if fmt is not None:
            config = config.replace(format=fmt)
        loop = asyncio.get_running_loop()
        connection = await loop.run_in_executor(
            None, lambda: Connection(tenant.runtime, config=config))
        session = _Session(f"s{next(self._session_ids)}", tenant,
                           connection)
        self._sessions[session.id] = session
        self._c_sessions.increment()
        return session

    def _health(self) -> dict:
        from .. import __version__
        uptime = (clock.monotonic() - self._started_at
                  if self._started_at is not None else 0.0)
        return {
            "protocol": PROTOCOL_VERSION,
            "server_version": __version__,
            "uptime_seconds": uptime,
            "sessions": len(self._sessions),
            "tenants": sorted(self.tenants),
        }

    def _cancel(self, message: dict) -> bool:
        """Out-of-band cancellation: a fresh, unauthenticated connection
        proves knowledge of the session secret instead of the token."""
        self._c_cancels.increment()
        session = self._sessions.get(message.get("session"))
        if session is None:
            return False
        secret = str(message.get("secret") or "")
        if not hmac.compare_digest(secret, session.secret):
            self._c_auth_failures.increment()
            return False
        return session.cancel_cursor(message.get("cursor"))

    async def _execute(self, session: _Session, message: dict) -> dict:
        many = message.get("op") == "executemany"
        sql = message.get("sql")
        if not isinstance(sql, str):
            raise InterfaceError("execute frame carries no sql string")
        timeout = message.get("timeout")
        if many:
            param_sets = [decode_row(row)
                          for row in message.get("param_sets", [])]
            params = None
        else:
            params = decode_row(message.get("params", []))
            param_sets = None
        cursor_id, cursor = session.cursor_for(message.get("cursor"))
        started = clock.monotonic()

        def run():
            quota = session.tenant.quota
            # The previous statement's tenant hold ends here — the
            # embedded execute below likewise drops its old stream.
            cursor.release_slot()
            slot = quota.acquire()
            try:
                if many:
                    cursor.cursor.executemany(
                        sql, param_sets,
                        timeout=quota.clamp_timeout(timeout))
                else:
                    cursor.cursor.execute(
                        sql, params,
                        timeout=quota.clamp_timeout(timeout))
            except BaseException:
                slot.release()
                raise
            cursor.slot = slot

        loop = asyncio.get_running_loop()
        try:
            await loop.run_in_executor(None, run)
        except BaseException:
            self._drop_cursor_on_error(session, cursor_id)
            raise
        self._c_executes.increment()
        self._h_execute.observe(clock.monotonic() - started)
        return {
            "cursor": cursor_id,
            "description": encode_description(cursor.cursor.description),
            "rowcount": cursor.cursor.rowcount,
            "lastrowid": cursor.cursor.lastrowid,
            # A DML execute may have opened an implicit transaction
            # (autocommit off); echo the state so the client mirror
            # tracks it without an extra round trip.
            "in_transaction": session.connection.in_transaction,
        }

    async def _fetch(self, session: _Session, message: dict) -> dict:
        cursor = session.cursors.get(message.get("cursor"))
        if cursor is None:
            raise InterfaceError(
                f"no open cursor {message.get('cursor')!r} in this "
                f"session")
        want = message.get("rows")
        if not isinstance(want, int) or want < 1:
            raise InterfaceError(f"bad fetch row count {want!r}")
        page = min(want, self.max_page_rows)
        started = clock.monotonic()

        def run():
            rows = cursor.cursor.fetchmany(page)
            if rows and cursor.slot is not None:
                # Tenant in-flight accounting; a breached budget aborts
                # this query (stream dropped, slots released) without
                # touching the session's other cursors.
                cursor.slot.note_rows(len(rows))
            # A short page always means exhaustion; a full page does
            # too when the embedded cursor already knows its rowcount
            # (the lazy stream only learns the count by draining), so
            # report it eagerly and save the client an empty round trip
            # that would otherwise leave its rowcount stale at -1.
            exhausted = (len(rows) < page
                         or cursor.cursor.rowcount >= 0)
            if exhausted:
                cursor.release_slot()
            return rows, exhausted, cursor.cursor.rowcount

        loop = asyncio.get_running_loop()
        try:
            rows, exhausted, rowcount = await loop.run_in_executor(
                None, run)
        except BaseException:
            self._drop_cursor_on_error(session,
                                       message.get("cursor"))
            raise
        self._c_fetches.increment()
        self._c_rows.add(len(rows))
        self._h_fetch.observe(clock.monotonic() - started)
        return {
            "rows": [encode_row(row) for row in rows],
            "exhausted": exhausted,
            "rowcount": rowcount,
        }

    def _drop_cursor_on_error(self, session: _Session,
                              cursor_id) -> None:
        """A failed execute/fetch leaves the server cursor unusable
        (its stream is gone); drop it so a later re-execute under the
        same id starts fresh, and return every hold it still has."""
        cursor = session.cursors.pop(cursor_id, None)
        if cursor is not None:
            try:
                cursor.close()
            except ReproError:
                pass

    async def _close_cursor(self, session: _Session,
                            message: dict) -> None:
        cursor = session.cursors.pop(message.get("cursor"), None)
        if cursor is not None:
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(None, cursor.close)

    async def _metadata(self, session: _Session, message: dict) -> dict:
        kind = message.get("kind")
        metadata = session.connection.metadata

        def run():
            if kind == "catalogs":
                return metadata.catalogs()
            if kind == "schemas":
                return metadata.schemas()
            if kind == "tables":
                return metadata.tables(message.get("schema"))
            if kind == "procedures":
                return metadata.procedures(message.get("schema"))
            if kind == "columns":
                return metadata.columns(message.get("table"),
                                        message.get("schema"))
            if kind == "procedure_columns":
                return metadata.procedure_columns(message.get("name"))
            raise InterfaceError(f"unknown metadata kind {kind!r}")

        loop = asyncio.get_running_loop()
        result = await loop.run_in_executor(None, run)
        return {"result": [list(item) if isinstance(item, tuple)
                           else item for item in result]}

    async def _stats(self, session: _Session) -> dict:
        loop = asyncio.get_running_loop()
        snapshot = await loop.run_in_executor(
            None, session.connection.stats)
        server_section = self.metrics.section("server.")
        server_section["sessions"] = len(self._sessions)
        server_section["tenant"] = dict(
            session.tenant.quota.stats(), name=session.tenant.name)
        snapshot["server"] = server_section
        return snapshot

    async def _txn(self, session: _Session, message: dict) -> dict:
        """Transaction demarcation verbs (protocol v2): delegate to the
        session's embedded connection on the executor — commit and
        rollback fan out to enlisted sources and may block. The reply
        echoes the connection's post-verb transaction state so the
        remote connection mirrors the embedded one without guessing."""
        op = message.get("op")
        connection = session.connection

        def run():
            if op == "begin":
                connection.begin()
            elif op == "commit":
                connection.commit()
            elif op == "rollback":
                connection.rollback()
            else:  # autocommit
                connection.autocommit = bool(message.get("enabled"))
            return {"autocommit": connection.autocommit,
                    "in_transaction": connection.in_transaction}

        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, run)

    def _note_error(self, exc: Error) -> None:
        self._c_errors.increment()
        if (isinstance(exc, OperationalError)
                and "tenant quota" in str(exc)):
            self._c_quota_rejections.increment()


# ---------------------------------------------------------------------------
# Blocking embedding helper
# ---------------------------------------------------------------------------


class ServerHandle:
    """A server running on its own event-loop thread (tests, the CLI
    smoke harness, notebooks). ``stop()`` is idempotent and joins the
    thread, so no orphaned listener survives the caller."""

    def __init__(self, server: DSPServer, loop: asyncio.AbstractEventLoop,
                 thread: threading.Thread):
        self.server = server
        self._loop = loop
        self._thread = thread

    @property
    def address(self) -> tuple[str, int]:
        return self.server.address

    def dsn(self, application: str, project: str = "",
            token: str = "") -> str:
        """A ready-to-connect ``repro+tcp://`` DSN for this server."""
        host, port = self.address
        path = "/".join(p for p in (application, project) if p)
        query = f"?token={token}" if token else ""
        return f"repro+tcp://{host}:{port}/{path}{query}"

    def stop(self, timeout: float = 10.0) -> None:
        if self._loop.is_closed():
            return
        future = asyncio.run_coroutine_threadsafe(self.server.stop(),
                                                  self._loop)
        try:
            future.result(timeout)
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def serve_in_thread(tenants, host: str = "127.0.0.1", port: int = 0,
                    **kwargs) -> ServerHandle:
    """Start a :class:`DSPServer` on a daemon thread and return its
    handle once the socket is bound (the port is final)."""
    server = DSPServer(tenants, host=host, port=port, **kwargs)
    loop = asyncio.new_event_loop()
    started = threading.Event()
    failure: list[BaseException] = []

    def run() -> None:
        asyncio.set_event_loop(loop)

        async def boot():
            try:
                await server.start()
            except BaseException as exc:  # surface bind errors caller-side
                failure.append(exc)
            finally:
                started.set()

        loop.run_until_complete(boot())
        if not failure:
            loop.run_forever()
        loop.close()

    thread = threading.Thread(target=run, name="repro-server",
                              daemon=True)
    thread.start()
    started.wait()
    if failure:
        thread.join()
        raise failure[0]
    return ServerHandle(server, loop, thread)
