"""The DSP wire protocol: length-prefixed JSON frames plus value codecs.

One frame = a 4-byte big-endian unsigned length followed by that many
bytes of UTF-8 JSON (one object). JSON keeps the protocol inspectable
and dependency-free; the length prefix keeps framing trivial in both the
asyncio server and the blocking client. A frame larger than *max_frame*
is a protocol error on whichever side reads it — the server must not let
one client balloon its memory, and the client must not trust a confused
server.

Result cells and query parameters travel as **tagged lexical values**
(:func:`encode_value` / :func:`decode_value`), so the remote cursor
reconstructs exactly the Python objects the embedded cursor produced —
``Decimal`` stays ``Decimal``, ``datetime.date`` stays a date — and the
remote-vs-embedded differential can demand byte equality.

Errors cross the wire as ``{"cls": <PEP 249 class name>, "message":
...}`` and are re-raised client-side as the same class
(:func:`raise_error`), so exception-handling code is transport-agnostic.
"""

from __future__ import annotations

import datetime
import json
import socket
import struct
from decimal import Decimal, InvalidOperation

from .. import errors
from ..errors import DRIVER_ERROR_CLASSES, InterfaceError, OperationalError

#: Protocol revision; the handshake rejects a mismatched major.
#: v2 added the write path: the transaction verbs (``begin`` /
#: ``commit`` / ``rollback`` / ``autocommit``) and the ``lastrowid``
#: field in execute replies.
PROTOCOL_VERSION = 2

#: Default ceiling on one frame's JSON payload (16 MiB).
MAX_FRAME = 16 * 1024 * 1024

_LENGTH = struct.Struct(">I")

#: Request verbs a session may send after the handshake.
VERBS = ("hello", "execute", "executemany", "fetch", "close_cursor",
         "metadata", "stats", "health", "close", "cancel",
         "begin", "commit", "rollback", "autocommit")


# ---------------------------------------------------------------------------
# Frame packing / blocking-socket IO (client side; the server reads
# frames with asyncio primitives, see repro.server.core)
# ---------------------------------------------------------------------------


def pack_frame(message: dict) -> bytes:
    """Serialize one message to its on-wire form."""
    payload = json.dumps(message, separators=(",", ":"),
                         ensure_ascii=False).encode("utf-8")
    return _LENGTH.pack(len(payload)) + payload


def unpack_payload(payload: bytes) -> dict:
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise InterfaceError(f"malformed protocol frame: {exc}") from exc
    if not isinstance(message, dict):
        raise InterfaceError(
            f"protocol frame must be a JSON object, got "
            f"{type(message).__name__}")
    return message


def send_frame(sock: socket.socket, message: dict) -> int:
    """Send one frame on a blocking socket; returns bytes written."""
    data = pack_frame(message)
    sock.sendall(data)
    return len(data)


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks = []
    while count:
        chunk = sock.recv(count)
        if not chunk:
            raise InterfaceError(
                "connection closed by peer mid-frame"
                if chunks or count != _LENGTH.size
                else "connection closed by peer")
        chunks.append(chunk)
        count -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket,
               max_frame: int = MAX_FRAME) -> dict:
    """Read one frame from a blocking socket.

    Raises ``InterfaceError`` on EOF, a short read, or an oversized
    length prefix (a corrupt or hostile peer).
    """
    header = _recv_exact(sock, _LENGTH.size)
    (length,) = _LENGTH.unpack(header)
    if length > max_frame:
        raise InterfaceError(
            f"protocol frame of {length} bytes exceeds the "
            f"{max_frame}-byte limit")
    return unpack_payload(_recv_exact(sock, length))


# ---------------------------------------------------------------------------
# Typed value codec (result cells and statement parameters)
# ---------------------------------------------------------------------------

#: Tag characters for non-string scalars; strings ride as bare JSON
#: strings (the common case pays no wrapper) and NULL as JSON null.
_TAG_ENCODERS = (
    (bool, "b", lambda v: "1" if v else "0"),  # before int: bool is int
    (int, "i", str),
    (float, "f", repr),  # repr round-trips the float exactly
    (Decimal, "d", str),
    (datetime.datetime, "T", lambda v: v.isoformat()),  # before date
    (datetime.date, "D", lambda v: v.isoformat()),
    (datetime.time, "t", lambda v: v.isoformat()),
)

_TAG_DECODERS = {
    "b": lambda text: text == "1",
    "i": int,
    "f": float,
    "d": Decimal,
    "T": datetime.datetime.fromisoformat,
    "D": datetime.date.fromisoformat,
    "t": datetime.time.fromisoformat,
}


def encode_value(value: object):
    """One cell/parameter to its wire form: ``None`` for NULL, a bare
    string for text, else a ``[tag, lexical]`` pair."""
    if value is None:
        return None
    if isinstance(value, str):
        return value
    for kind, tag, render in _TAG_ENCODERS:
        if isinstance(value, kind):
            return [tag, render(value)]
    raise InterfaceError(
        f"cannot send a {type(value).__name__} value over the wire")


def decode_value(wire) -> object:
    """Inverse of :func:`encode_value`."""
    if wire is None or isinstance(wire, str):
        return wire
    if (isinstance(wire, list) and len(wire) == 2
            and isinstance(wire[0], str) and isinstance(wire[1], str)):
        decoder = _TAG_DECODERS.get(wire[0])
        if decoder is not None:
            try:
                return decoder(wire[1])
            except (ValueError, InvalidOperation) as exc:
                raise InterfaceError(
                    f"malformed wire value {wire!r}: {exc}") from exc
    raise InterfaceError(f"malformed wire value {wire!r}")


def encode_row(row) -> list:
    return [encode_value(cell) for cell in row]


def decode_row(wire_row) -> tuple:
    if not isinstance(wire_row, list):
        raise InterfaceError(f"malformed wire row {wire_row!r}")
    return tuple(decode_value(cell) for cell in wire_row)


# ---------------------------------------------------------------------------
# Description and error transport
# ---------------------------------------------------------------------------


def encode_description(description) -> list | None:
    """A cursor description to wire form: per column ``[label, kind,
    precision, scale, nullable]`` (the PEP 249 seven-tuple's live
    fields; the type object is rebuilt client-side from *kind*)."""
    if description is None:
        return None
    encoded = []
    for label, type_obj, _size, _internal, precision, scale, nullable \
            in description:
        kind = next(iter(type_obj._kinds)) if hasattr(type_obj, "_kinds") \
            else str(type_obj)
        encoded.append([label, kind, precision, scale, nullable])
    return encoded


#: Every class an error frame may name. The server only ever sends PEP
#: 249 classes (``to_driver_error`` runs server-side); the registry
#: itself lives in ``repro.errors`` (``DRIVER_ERROR_CLASSES``) so the
#: wire codec and the rest of the driver share one table instead of
#: ``getattr``-ing the errors module with attacker-chosen names.
ERROR_CLASSES = DRIVER_ERROR_CLASSES


def encode_error(exc: BaseException) -> dict:
    """An exception to its wire form; non-driver classes degrade to
    ``DatabaseError`` so the client never sees an unmappable name."""
    name = type(exc).__name__
    if name not in ERROR_CLASSES:
        name = "DatabaseError"
    return {"cls": name, "message": str(exc)}


def raise_error(payload) -> None:
    """Re-raise a wire error as its PEP 249 class."""
    if not isinstance(payload, dict):
        raise OperationalError(f"server error: {payload!r}")
    cls = ERROR_CLASSES.get(payload.get("cls"), errors.DatabaseError)
    raise cls(payload.get("message", "server error"))
