"""``python -m repro.server`` — serve a DSP application over TCP.

With no ``--app`` module the demo application (``RTLApp``) is served,
so the README quickstart works out of the box:

    python -m repro.server --token dev --port 9944
    # elsewhere:
    repro.connect("repro+tcp://localhost:9944/RTLApp?token=dev")

``--app`` names a ``module:callable`` returning a ``DSPRuntime`` for
serving a real application.
"""

from __future__ import annotations

import argparse
import asyncio
import importlib
import sys

from ..engine.lifecycle import TenantQuota
from .core import DSPServer, TenantConfig
from .protocol import PROTOCOL_VERSION


def _build_runtime(spec: str | None):
    if spec is None:
        from ..workloads import APPLICATION, build_runtime
        return APPLICATION, build_runtime()
    module_name, _, attr = spec.partition(":")
    if not attr:
        raise SystemExit(
            f"--app must be module:callable, got {spec!r}")
    factory = getattr(importlib.import_module(module_name), attr)
    runtime = factory()
    return runtime.application.name, runtime


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server",
        description="Serve a DSP application over TCP (protocol "
                    f"v{PROTOCOL_VERSION}).")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=9944,
                        help="TCP port (0 picks a free one)")
    parser.add_argument("--token", required=True,
                        help="bearer token clients must present")
    parser.add_argument("--app", default=None, metavar="MODULE:CALLABLE",
                        help="runtime factory; default: the demo "
                             "application RTLApp")
    parser.add_argument("--max-concurrent", type=int, default=None,
                        help="tenant quota: concurrent queries")
    parser.add_argument("--max-inflight-rows", type=int, default=None,
                        help="tenant quota: un-fetched streamed rows")
    parser.add_argument("--max-timeout", type=float, default=None,
                        help="tenant quota: per-execute deadline "
                             "ceiling in seconds")
    args = parser.parse_args(argv)

    name, runtime = _build_runtime(args.app)
    tenant = TenantConfig(
        name, runtime, token=args.token,
        quota=TenantQuota(max_concurrent=args.max_concurrent,
                          max_inflight_rows=args.max_inflight_rows,
                          max_timeout=args.max_timeout))

    async def run() -> None:
        server = DSPServer(tenant, host=args.host, port=args.port)
        await server.start()
        print(f"repro.server: serving application {name!r} on "
              f"{server.host}:{server.port}", flush=True)
        try:
            await server.serve_forever()
        finally:
            await server.stop()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
