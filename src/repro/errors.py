"""Exception hierarchy for the repro package.

The hierarchy mirrors the layering of the system: SQL frontend errors
(syntactic vs. semantic, per the paper's stage-1/stage-2 split), catalog
and metadata lookup errors, XQuery compilation and dynamic errors, and
DB-API driver errors (which follow PEP 249 naming so that the driver can
re-export them).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


# ---------------------------------------------------------------------------
# SQL frontend
# ---------------------------------------------------------------------------


class SQLError(ReproError):
    """Base class for SQL statement processing errors."""

    def __init__(self, message: str, line: int | None = None,
                 column: int | None = None):
        self.line = line
        self.column = column
        if line is not None:
            message = f"{message} (at line {line}, column {column})"
        super().__init__(message)


class SQLSyntaxError(SQLError):
    """Raised in stage one when the input is not syntactically valid SQL-92.

    The paper: "syntactically invalid SQL is rejected immediately".
    """


class SQLSemanticError(SQLError):
    """Raised in stage two for semantically invalid SQL.

    Examples from the paper: a reference to a column that does not exist in
    the table, or a select-item column that is not listed in GROUP BY.
    """


class UnsupportedSQLError(SQLError):
    """Raised for SQL constructs outside the supported SQL-92 SELECT subset."""


# ---------------------------------------------------------------------------
# Catalog / metadata
# ---------------------------------------------------------------------------


class CatalogError(ReproError):
    """Base class for data-services catalog errors."""


class UnknownArtifactError(CatalogError):
    """An application, schema, table, column, or function was not found."""


class FlatnessError(CatalogError):
    """A data service function's return type is not flat XML.

    Only functions returning a sequence of elements whose children are all
    simple-typed may be exposed as SQL tables (paper section 2.2).
    """


# ---------------------------------------------------------------------------
# XQuery engine
# ---------------------------------------------------------------------------


class XQueryError(ReproError):
    """Base class for XQuery processing errors."""

    def __init__(self, message: str, code: str | None = None):
        self.code = code
        if code:
            message = f"[{code}] {message}"
        super().__init__(message)


class XQuerySyntaxError(XQueryError):
    """Static (parse-time) XQuery error (XPST-style)."""


class XQueryStaticError(XQueryError):
    """Static semantic error: unknown function, unbound variable, etc."""


class XQueryDynamicError(XQueryError):
    """Runtime XQuery error (XPDY/FORG-style)."""


class XQueryTypeError(XQueryError):
    """Dynamic type error (XPTY-style): bad operand types, bad cast, etc."""


# ---------------------------------------------------------------------------
# XML model
# ---------------------------------------------------------------------------


class XMLError(ReproError):
    """Base class for XML parsing/serialization errors."""


class XMLParseError(XMLError):
    """Raised when input text is not well-formed XML (for our subset)."""

    def __init__(self, message: str, position: int | None = None):
        self.position = position
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)


# ---------------------------------------------------------------------------
# Query lifecycle (deadlines, cancellation, admission, source health)
# ---------------------------------------------------------------------------


class QueryLifecycleError(ReproError):
    """Base class for lifecycle aborts: the query was stopped by policy
    (deadline, cancellation, admission control) rather than by a defect
    in the statement or the data."""


class QueryTimeoutError(QueryLifecycleError):
    """The query's deadline expired before it finished."""


class QueryCancelledError(QueryLifecycleError):
    """The query's cancellation token was triggered (``Cursor.cancel()``
    or a direct ``CancellationToken.cancel()``)."""


class AdmissionRejectedError(QueryLifecycleError):
    """The admission controller refused the query: the concurrency slot
    queue timed out, or a resource budget was exhausted."""


class TransientSourceError(ReproError):
    """A physical source failed in a way worth retrying (flaky file
    handle, intermittent custom-function backend). The runtime's retry
    policy absorbs these up to its attempt budget."""


class SourceUnavailableError(ReproError):
    """A physical source kept failing after the retry budget was spent;
    carries the attempt count for diagnostics."""

    def __init__(self, message: str, attempts: int = 1):
        self.attempts = attempts
        super().__init__(f"{message} (after {attempts} attempt(s))")


# ---------------------------------------------------------------------------
# Driver (PEP 249 names)
# ---------------------------------------------------------------------------


class Warning(ReproError):  # noqa: A001 - PEP 249 mandates this name
    """PEP 249 Warning."""


class Error(ReproError):
    """PEP 249 Error: base class of all driver errors."""


class InterfaceError(Error):
    """Error related to the database interface rather than the database."""


class DatabaseError(Error):
    """Error related to the database."""


class DataError(DatabaseError):
    """Error due to problems with the processed data."""


class OperationalError(DatabaseError):
    """Error related to the database's operation."""


class IntegrityError(DatabaseError):
    """Relational integrity violation."""


class InternalError(DatabaseError):
    """Internal database error (e.g. cursor invalidated)."""


class ProgrammingError(DatabaseError):
    """Programming error: bad SQL, wrong parameter count, etc."""


class NotSupportedError(DatabaseError):
    """A method or API is not supported by the database."""


#: The PEP 249 exception classes by name — the single registry shared
#: by every layer that (de)hydrates driver errors by class name (the
#: server protocol's error codec, client-side re-raising). Keys are the
#: exact class names a conforming driver exposes.
DRIVER_ERROR_CLASSES: dict[str, type] = {
    "Warning": Warning,
    "Error": Error,
    "InterfaceError": InterfaceError,
    "DatabaseError": DatabaseError,
    "DataError": DataError,
    "OperationalError": OperationalError,
    "IntegrityError": IntegrityError,
    "InternalError": InternalError,
    "ProgrammingError": ProgrammingError,
    "NotSupportedError": NotSupportedError,
}


def to_driver_error(exc: ReproError) -> Error:
    """Map an engine-level error onto the PEP 249 taxonomy.

    The driver calls this at its API boundary so clients see standard
    DB-API classes regardless of which internal layer failed:

    * lifecycle aborts and flaky-source exhaustion → ``OperationalError``
      (the database's operation, not the program, is at fault);
    * XQuery *dynamic* and type errors → ``OperationalError`` (the
      statement was valid; evaluation failed at runtime);
    * catalog lookups and SQL statement errors → ``ProgrammingError``;
    * malformed result data → ``DataError``;
    * XQuery *static* errors on translator output → ``InternalError``
      (the translator emitted XQuery the engine rejects — a driver bug,
      never the client's).

    Errors already inside the PEP 249 hierarchy pass through unchanged.
    """
    if isinstance(exc, Error):
        return exc
    message = str(exc)
    if isinstance(exc, (QueryLifecycleError, SourceUnavailableError,
                        TransientSourceError)):
        return OperationalError(message)
    if isinstance(exc, (XQueryDynamicError, XQueryTypeError)):
        return OperationalError(message)
    if isinstance(exc, XQuerySyntaxError) or isinstance(exc, XQueryStaticError):
        return InternalError(message)
    if isinstance(exc, (SQLError, CatalogError)):
        return ProgrammingError(message)
    if isinstance(exc, XMLError):
        return DataError(message)
    return DatabaseError(message)
