"""Vectorized (columnar batch) execution of the delimited wrapper.

The tuple pipeline in ``repro.xquery.compile`` moves one row element at a
time through for/where/join stages, constructing a RECORD element per row
and re-atomizing it in the wrapper's per-cell closures. For the driver's
dominant shape — the section-4 delimited wrapper over a planned FLWOR of
scans, filters, hash joins, and sorts — all of that per-row work is
schema-determined at compile time. This module lowers exactly that shape
onto column-oriented batches instead:

* a :class:`_Batch` holds plain Python lists, one per referenced column,
  ``None`` marking SQL NULL; operators slice, filter, and gather whole
  columns;
* scans pull entire columns through the runtime's ``scan_columns``
  columnar API (cached per storage version) and slice them into batches
  of ``batch_size`` rows;
* predicates evaluate column-wise into three-valued masks, hash joins
  build and probe on key columns, ORDER BY sorts an index permutation,
  and the delimited codec's cells are encoded a column at a time;
* the generator protocol is preserved: each stage yields batches, so
  deadlines/cancellation tick per batch (``QueryContext.tick_rows``) and
  a lazily-consumed cursor materializes O(batches fetched) rows.

Correctness contract: the vector compiler only engages for shapes it can
prove equivalent, and the compiled tuple ``chunks`` closure is kept as a
wholesale fallback — both at compile time (unsupported expression or
clause) and at run time (a parameter bound to a non-scalar). Within a
supported shape the byte output is identical to the tuple path; the one
relaxation is error *granularity*: a dynamic error raised while
evaluating a batch surfaces before that batch's earlier rows are
emitted, where the tuple path would have emitted them first (the error
itself, and whether the query errors at all, are unchanged).
"""

from __future__ import annotations

import math
import operator
import threading
from decimal import Decimal
from itertools import chain
from typing import Callable, Iterator, Optional

from ..errors import XQueryTypeError
from ..xmlmodel.escape import escape_text
from . import ast
from .atomic import (
    UntypedAtomic,
    _coerce_for_value_comparison,
    arithmetic,
    cast_to,
    compare_values,
    general_comparison,
    is_node,
    negate,
    order_key,
    serialize_atomic,
)
from .evaluator import CONTEXT_KEY, _Directional, _Frame
from .functions import _XS_CONSTRUCTOR_TYPES, BEA_URI, FN_URI, XS_URI
from .planner import (
    HashJoinClause,
    ParamRef,
    RestoreOrderClause,
    estimate_group_count,
    grouping_key,
    join_key,
    lower_group_aggregates,
    plan_clauses,
    scan_requests,
)

#: xs: simple types whose :func:`serialize_atomic` form can never contain
#: an XML special character, so the encoder may skip ``xml-escape``.
_NO_ESCAPE_TYPES = frozenset({
    "short", "int", "long", "integer", "decimal", "float", "double",
    "boolean", "date", "time", "dateTime",
})

#: Numeric xs: types with exact value semantics (int/Decimal in Python);
#: mixed comparisons within this set need no float promotion.
_EXACT_NUM_TYPES = frozenset({"short", "int", "long", "integer", "decimal"})
_FLOAT_TYPES = frozenset({"float", "double"})
_NUMERIC_TYPES = _EXACT_NUM_TYPES | _FLOAT_TYPES

#: Batch-column key for the planner's restore-order ordinals of a for
#: variable; shares the variables' reserved prefix convention.
_ORD = "\x00ord"

#: Batch-column namespace for post-aggregation scalar variables (group
#: keys and finalized aggregates): ``cols[(_GRP, var)]``.
_GRP = "\x00grp"

_CMP_OPS = {"eq": operator.eq, "ne": operator.ne, "lt": operator.lt,
            "le": operator.le, "gt": operator.gt, "ge": operator.ge}


class _VectorStats(threading.local):
    """Per-thread executor counters for tests: ``executions`` counts
    vector-plan runs, ``fallbacks`` run-time reversions to the tuple
    path, ``batches``/``rows`` the encoded output volume — a lazily
    consumed cursor over a large scan shows O(batches fetched) rows
    encoded, not O(table) — ``parallel`` the runs that scattered
    across the process pool, and ``agg_groups`` the group-table entries
    the hash-aggregation stage emitted."""

    def __init__(self):
        self.executions = 0
        self.fallbacks = 0
        self.batches = 0
        self.rows = 0
        self.parallel = 0
        self.agg_groups = 0


VSTATS = _VectorStats()


class _Batch:
    """``n`` rows in column-major layout: ``cols[(var, column)]`` is a
    list of ``n`` scalars with ``None`` for SQL NULL; ``cols[(_ORD,
    var)]`` carries restore-order ordinals when a plan needs them."""

    __slots__ = ("n", "cols")

    def __init__(self, n: int, cols: dict):
        self.n = n
        self.cols = cols


def _gather(batch: _Batch, idx: list) -> _Batch:
    cols = {key: [col[i] for i in idx] for key, col in batch.cols.items()}
    return _Batch(len(idx), cols)


def _slice_batch(batch: _Batch, lo: int, hi: int) -> _Batch:
    cols = {key: col[lo:hi] for key, col in batch.cols.items()}
    return _Batch(hi - lo, cols)


def _concat(batches: list) -> _Batch:
    batches = [b for b in batches if b.n]
    if not batches:
        return _Batch(0, {})
    if len(batches) == 1:
        return batches[0]
    cols: dict = {key: [] for key in batches[0].cols}
    for b in batches:
        for key, col in b.cols.items():
            cols[key].extend(col)
    return _Batch(sum(b.n for b in batches), cols)


def _ebv_scalar(value) -> bool:
    """Effective boolean value of a mask cell (``None`` = empty
    sequence = False), mirroring ``effective_boolean_value`` on the
    atomic-only sequences vector expressions produce."""
    if value is None:
        return False
    if isinstance(value, bool):
        return value
    if isinstance(value, str):
        return len(value) > 0
    if isinstance(value, (int, Decimal)):
        return value != 0
    if isinstance(value, float):
        return not math.isnan(value) and value != 0
    raise XQueryTypeError(
        f"no effective boolean value for {type(value).__name__}",
        code="FORG0006")


class _V:
    """A compiled vector expression: ``eval(state, batch)`` returns one
    scalar-or-None per row. ``vtype`` is the statically known xs: simple
    type of non-NULL cells, or None when unknown."""

    __slots__ = ("eval", "vtype")

    def __init__(self, eval_fn, vtype: Optional[str] = None):
        self.eval = eval_fn
        self.vtype = vtype


class _State:
    """Per-execution mutable context threaded through every stage."""

    __slots__ = ("frame", "ctx", "params", "actuals")

    def __init__(self, frame: _Frame, ctx, params: dict, actuals):
        self.frame = frame
        self.ctx = ctx
        self.params = params
        self.actuals = actuals


# ---------------------------------------------------------------------------
# Vector expression compilation
# ---------------------------------------------------------------------------


class _Ctx:
    """Compile-time context: the host compiler (namespaces, external
    vars) plus the set of parameter names the plan ends up reading."""

    __slots__ = ("compiler", "params")

    def __init__(self, compiler):
        self.compiler = compiler
        self.params: set[str] = set()


def _vtype_of_literal(value) -> Optional[str]:
    if isinstance(value, bool):
        return "boolean"
    if isinstance(value, int):
        return "integer"
    if isinstance(value, Decimal):
        return "decimal"
    if isinstance(value, float):
        return "double"
    if isinstance(value, UntypedAtomic):
        return None
    if isinstance(value, str):
        return "string"
    return None


def _vconst(value, vtype: Optional[str]) -> _V:
    def run(state, batch):
        return [value] * batch.n

    return _V(run, vtype)


class _ScalarCol:
    """Environment entry for a scalar-valued variable materialized as a
    batch column (post-aggregation group keys and aggregate results) —
    unlike a row variable's ``{column: xs_type}`` schema dict, a bare
    reference to one of these IS the column."""

    __slots__ = ("key", "vtype")

    def __init__(self, key: tuple, vtype: Optional[str]):
        self.key = key
        self.vtype = vtype


def _vcolumn(cc: _Ctx, expr, env: dict) -> Optional[_V]:
    """Match ``$var/COLUMN`` under ``fn:data`` — the translator's column
    access — against the in-scope row variables."""
    if not (isinstance(expr, ast.PathExpr)
            and isinstance(expr.base, ast.VarRef)
            and len(expr.steps) == 1):
        return None
    var = expr.base.name
    step = expr.steps[0]
    columns = env.get(var)
    if (not isinstance(columns, dict) or step.name is None
            or step.predicates or step.name not in columns):
        return None
    key = (var, step.name)

    def run(state, batch):
        return batch.cols[key]

    return _V(run, columns[step.name])


def _vcompile(cc: _Ctx, expr, env: dict) -> Optional[_V]:
    """Lower *expr* to a vector expression over the row variables in
    *env* (var -> {column: xs type}); None when the shape is outside the
    supported subset (the caller then falls back to the tuple path)."""
    if isinstance(expr, ast.XLiteral):
        return _vconst(expr.value, _vtype_of_literal(expr.value))
    if isinstance(expr, ast.VarRef):
        entry = env.get(expr.name)
        if isinstance(entry, _ScalarCol):
            key = entry.key

            def run_scalar(state, batch):
                return batch.cols[key]

            return _V(run_scalar, entry.vtype)
        if expr.name in env:
            return None  # a bare row variable is a node sequence
        if expr.name not in cc.compiler._external_vars:
            return None
        cc.params.add(expr.name)
        name = expr.name

        def run(state, batch):
            return [state.params[name]] * batch.n

        return _V(run)
    if isinstance(expr, ast.XFunctionCall):
        return _vcompile_call(cc, expr, env)
    if isinstance(expr, ast.ValueComparison):
        return _vcompile_value_comparison(cc, expr, env)
    if isinstance(expr, ast.GeneralComparison):
        left = _vcompile(cc, expr.left, env)
        right = _vcompile(cc, expr.right, env)
        if left is None or right is None:
            return None
        op = expr.op

        def run(state, batch):
            xs = left.eval(state, batch)
            ys = right.eval(state, batch)
            return [general_comparison(op,
                                       [] if x is None else [x],
                                       [] if y is None else [y])
                    for x, y in zip(xs, ys)]

        return _V(run, "boolean")
    if isinstance(expr, ast.Arithmetic):
        left = _vcompile(cc, expr.left, env)
        right = _vcompile(cc, expr.right, env)
        if left is None or right is None:
            return None
        op = expr.op

        def run(state, batch):
            out = []
            for x, y in zip(left.eval(state, batch),
                            right.eval(state, batch)):
                result = arithmetic(op,
                                    [] if x is None else [x],
                                    [] if y is None else [y])
                out.append(result[0] if result else None)
            return out

        return _V(run)
    if isinstance(expr, ast.UnaryMinus):
        operand = _vcompile(cc, expr.operand, env)
        if operand is None:
            return None

        def run(state, batch):
            out = []
            for x in operand.eval(state, batch):
                result = negate([] if x is None else [x])
                out.append(result[0] if result else None)
            return out

        return _V(run)
    return None


def _vcompile_call(cc: _Ctx, expr: ast.XFunctionCall,
                   env: dict) -> Optional[_V]:
    try:
        uri = cc.compiler._static.resolve_prefix(expr.prefix)
    except Exception:
        return None
    local, args = expr.local, expr.args
    if uri == FN_URI:
        if local == "data" and len(args) == 1:
            column = _vcolumn(cc, args[0], env)
            if column is not None:
                return column
            # fn:data of an already-atomic vector value is the identity.
            return _vcompile(cc, args[0], env)
        if local in ("empty", "exists", "not", "boolean") and len(args) == 1:
            arg = _vcompile(cc, args[0], env)
            if arg is None:
                return None
            if local == "empty":
                def run(state, batch):
                    return [x is None for x in arg.eval(state, batch)]
            elif local == "exists":
                def run(state, batch):
                    return [x is not None for x in arg.eval(state, batch)]
            elif local == "not":
                def run(state, batch):
                    return [not _ebv_scalar(x)
                            for x in arg.eval(state, batch)]
            else:
                def run(state, batch):
                    return [_ebv_scalar(x) for x in arg.eval(state, batch)]
            return _V(run, "boolean")
        if local == "true" and not args:
            return _vconst(True, "boolean")
        if local == "false" and not args:
            return _vconst(False, "boolean")
        return None
    if uri == XS_URI:
        if local in _XS_CONSTRUCTOR_TYPES and len(args) == 1:
            arg = _vcompile(cc, args[0], env)
            if arg is None:
                return None

            def run(state, batch):
                out = []
                for x in arg.eval(state, batch):
                    if x is None:
                        out.append(None)
                    else:
                        out.append(cast_to(local, [x])[0])
                return out

            vtype = local if local != "untypedAtomic" else None
            return _V(run, vtype)
        return None
    if uri == BEA_URI:
        if local == "not3" and len(args) == 1:
            arg = _vcompile(cc, args[0], env)
            if arg is None:
                return None

            def run(state, batch):
                return [None if x is None else not bool(x)
                        for x in arg.eval(state, batch)]

            return _V(run, "boolean")
        if local in ("and3", "or3") and len(args) == 2:
            left = _vcompile(cc, args[0], env)
            right = _vcompile(cc, args[1], env)
            if left is None or right is None:
                return None
            want_or = local == "or3"

            def run(state, batch):
                out = []
                for x, y in zip(left.eval(state, batch),
                                right.eval(state, batch)):
                    if want_or:
                        if x is True or y is True:
                            out.append(True)
                        elif x is None or y is None:
                            out.append(None)
                        else:
                            out.append(bool(x) or bool(y))
                    else:
                        if x is False or y is False:
                            out.append(False)
                        elif x is None or y is None:
                            out.append(None)
                        else:
                            out.append(bool(x) and bool(y))
                return out

            return _V(run, "boolean")
        if local == "in3" and len(args) == 2:
            return _vcompile_in3(cc, args, env)
        return None
    return None


def _vcompile_in3(cc: _Ctx, args, env: dict) -> Optional[_V]:
    needle = _vcompile(cc, args[0], env)
    if needle is None:
        return None
    members_expr = args[1]
    if isinstance(members_expr, ast.SequenceExpr):
        member_exprs = list(members_expr.items)
    else:
        member_exprs = [members_expr]
    members = [_vcompile(cc, m, env) for m in member_exprs]
    if any(m is None for m in members):
        return None

    def run(state, batch):
        cols = [m.eval(state, batch) for m in members]
        needles = needle.eval(state, batch)
        out = []
        for i, x in enumerate(needles):
            if x is None:
                out.append(None)
                continue
            saw_null = False
            matched = False
            for col in cols:
                value = col[i]
                if value is None:
                    saw_null = True
                    continue
                if isinstance(value, UntypedAtomic):
                    # Mirror bea_in3's untyped coercion toward the
                    # needle's type.
                    if isinstance(x, (int, float, Decimal)) \
                            and not isinstance(x, bool):
                        try:
                            value = float(value)
                        except ValueError:
                            continue
                    else:
                        value = str(value)
                try:
                    if compare_values("eq", x, value):
                        matched = True
                        break
                except XQueryTypeError:
                    continue
            if matched:
                out.append(True)
            elif saw_null:
                out.append(None)
            else:
                out.append(False)
        return out

    return _V(run, "boolean")


def _vcompile_value_comparison(cc: _Ctx, expr: ast.ValueComparison,
                               env: dict) -> Optional[_V]:
    left = _vcompile(cc, expr.left, env)
    right = _vcompile(cc, expr.right, env)
    if left is None or right is None:
        return None
    op = expr.op
    if op not in _CMP_OPS:
        return None
    direct = _CMP_OPS[op]
    lt, rt = left.vtype, right.vtype
    fast = None
    if lt is not None and rt is not None:
        if lt in _EXACT_NUM_TYPES and rt in _EXACT_NUM_TYPES:
            # int/Decimal cross-compare exactly in Python, matching
            # compare_values' exact-numeric promotion.
            fast = direct
        elif lt in _NUMERIC_TYPES and rt in _NUMERIC_TYPES:
            # A float operand forces float promotion of BOTH sides
            # (Decimal-vs-float would otherwise compare exactly).
            def fast(a, b):
                return direct(float(a), float(b))
        elif lt == rt and lt in ("string", "boolean", "date", "time",
                                 "dateTime"):
            fast = direct

    if fast is not None:
        def run(state, batch):
            xs = left.eval(state, batch)
            ys = right.eval(state, batch)
            return [None if x is None or y is None else fast(x, y)
                    for x, y in zip(xs, ys)]
    else:
        def run(state, batch):
            xs = left.eval(state, batch)
            ys = right.eval(state, batch)
            out = []
            for x, y in zip(xs, ys):
                if x is None or y is None:
                    out.append(None)
                else:
                    a, b = _coerce_for_value_comparison(x, y)
                    out.append(compare_values(op, a, b))
            return out

    return _V(run, "boolean")


# ---------------------------------------------------------------------------
# Wrapper-shape matching
# ---------------------------------------------------------------------------


def _is_fn_call(cc: _Ctx, expr, uri: str, local: str,
                arity: int) -> bool:
    if not (isinstance(expr, ast.XFunctionCall) and expr.local == local
            and len(expr.args) == arity):
        return False
    try:
        return cc.compiler._static.resolve_prefix(expr.prefix) == uri
    except Exception:
        return False


def _match_cell(cc: _Ctx, expr, tok: str) -> Optional[str]:
    """Match one wrapper cell against the canonical shape::

        (let $cell := fn:data($tok/NAME) return
         if (fn:empty($cell)) then "<" else
         fn:concat(">", fn-bea:xml-escape(fn-bea:serialize-atomic($cell))))

    and return NAME, or None when anything deviates."""
    if not (isinstance(expr, ast.FLWOR) and len(expr.clauses) == 1):
        return None
    let = expr.clauses[0]
    if not isinstance(let, ast.LetClause):
        return None
    value = let.value
    if not _is_fn_call(cc, value, FN_URI, "data", 1):
        return None
    path = value.args[0]
    if not (isinstance(path, ast.PathExpr)
            and isinstance(path.base, ast.VarRef)
            and path.base.name == tok and len(path.steps) == 1
            and path.steps[0].name is not None
            and not path.steps[0].predicates):
        return None
    name = path.steps[0].name
    ret = expr.return_expr
    if not isinstance(ret, ast.IfExpr):
        return None
    cond, then, else_ = ret.condition, ret.then, ret.else_
    if not (_is_fn_call(cc, cond, FN_URI, "empty", 1)
            and isinstance(cond.args[0], ast.VarRef)
            and cond.args[0].name == let.var):
        return None
    if not (isinstance(then, ast.XLiteral) and then.value == "<"):
        return None
    if not (_is_fn_call(cc, else_, FN_URI, "concat", 2)
            and isinstance(else_.args[0], ast.XLiteral)
            and else_.args[0].value == ">"):
        return None
    esc = else_.args[1]
    if not _is_fn_call(cc, esc, BEA_URI, "xml-escape", 1):
        return None
    ser = esc.args[0]
    if not (_is_fn_call(cc, ser, BEA_URI, "serialize-atomic", 1)
            and isinstance(ser.args[0], ast.VarRef)
            and ser.args[0].name == let.var):
        return None
    return name


def _match_cells(cc: _Ctx, expr, tok: str) -> Optional[list]:
    if isinstance(expr, ast.SequenceExpr):
        parts = list(expr.items)
    else:
        parts = [expr]
    names = []
    for part in parts:
        name = _match_cell(cc, part, tok)
        if name is None:
            return None
        names.append(name)
    if len(set(names)) != len(names):
        # Duplicate record child names would make the tuple path's
        # per-cell fn:data multi-valued (a type error); stay exact.
        return None
    return names


def _match_record(cc: _Ctx, expr, names: list,
                  env: dict) -> Optional[list]:
    """Match the inner return ``<RECORD><NAME>{expr}</NAME>...</RECORD>``
    and vector-compile the projection of each cell, in cell order."""
    if not isinstance(expr, ast.ElementConstructor) or expr.attributes:
        return None
    children = [part for part in expr.content
                if not isinstance(part, str)]
    if len(children) != len(names):
        return None
    projections = []
    for child, name in zip(children, names):
        if not (isinstance(child, ast.ElementConstructor)
                and child.name == name and not child.attributes
                and not child.prefix and len(child.content) == 1
                and not isinstance(child.content[0], str)):
            return None
        projection = _vcompile(cc, child.content[0], env)
        if projection is None:
            return None
        projections.append(projection)
    return projections


class _ScanInfo:
    __slots__ = ("var", "uri", "local", "request", "with_ordinal")

    def __init__(self, var, uri, local, request, with_ordinal):
        self.var = var
        self.uri = uri
        self.local = local
        self.request = request
        self.with_ordinal = with_ordinal


class _JoinInfo:
    __slots__ = ("scan", "build_exprs", "probe_exprs", "cond_exprs",
                 "filter_exprs")

    def __init__(self, scan, build_exprs, probe_exprs, cond_exprs,
                 filter_exprs):
        self.scan = scan
        self.build_exprs = build_exprs
        self.probe_exprs = probe_exprs
        self.cond_exprs = cond_exprs
        self.filter_exprs = filter_exprs


class _AggInfo:
    """Compiled hash-aggregation stage: vectorized key/value inputs plus
    the decomposition metadata the scatter executor needs.

    ``parallel_safe`` is True only when every spec's partial states
    merge associatively to the *exact* serial result: counts always do;
    sums/averages only over exact-numeric columns (float addition is
    not associative); min/max only over typed non-float columns (NaN
    breaks the fold's comparison transitivity); distinct-backed specs
    always do (ordered set union in partition order reproduces the
    serial first-occurrence order). ``group_estimate``/``row_estimate``
    come from NDV statistics and let the planner pick the aggregation
    site (worker-side partial vs. parent-side whole).
    """

    __slots__ = ("key_exprs", "key_vars", "specs", "value_exprs",
                 "out_vtypes", "parallel_safe", "group_estimate",
                 "row_estimate")

    def __init__(self, key_exprs, key_vars, specs, value_exprs,
                 out_vtypes, parallel_safe, group_estimate,
                 row_estimate):
        self.key_exprs = key_exprs
        self.key_vars = key_vars
        self.specs = specs
        self.value_exprs = value_exprs
        self.out_vtypes = out_vtypes
        self.parallel_safe = parallel_safe
        self.group_estimate = group_estimate
        self.row_estimate = row_estimate


def _spec_parallel_safe(spec, vtype: Optional[str]) -> bool:
    if spec.star or spec.distinct or spec.func == "count":
        return True
    if spec.func in ("sum", "avg"):
        return vtype in _EXACT_NUM_TYPES
    # min/max: a NaN inside one partition poisons that partition's fold
    # differently than the serial left-to-right fold, so floats (and
    # unknown types, which may hold floats) aggregate at the parent.
    return vtype is not None and vtype not in _FLOAT_TYPES


def _spec_out_vtype(spec, vtype: Optional[str]) -> Optional[str]:
    if spec.func == "count":
        return "integer"
    if spec.func == "sum":
        if vtype in _EXACT_NUM_TYPES:
            return "decimal" if vtype == "decimal" else "integer"
        return "double" if vtype in _FLOAT_TYPES else None
    if spec.func == "avg":
        if vtype in _EXACT_NUM_TYPES:
            return "decimal"
        return "double" if vtype in _FLOAT_TYPES else None
    return vtype  # min/max preserve the input type


def _compile_aggregate(cc: _Ctx, agg, env: dict,
                       compiler, clauses) -> Optional[_AggInfo]:
    """Vector-compile an ``AggregateClause``'s key and value expressions
    over the pre-group *env*; None falls back to the tuple path."""
    key_exprs = []
    for key_expr, _key_var in agg.keys:
        compiled = _vcompile(cc, key_expr, env)
        if compiled is None:
            return None
        key_exprs.append(compiled)
    value_exprs = []
    out_vtypes = []
    parallel_safe = True
    for spec in agg.specs:
        if spec.star:
            value_exprs.append(None)
            out_vtypes.append("integer")
            continue
        value = _vcompile(cc, spec.value, env)
        if value is None:
            return None
        value_exprs.append(value)
        out_vtypes.append(_spec_out_vtype(spec, value.vtype))
        if not _spec_parallel_safe(spec, value.vtype):
            parallel_safe = False
    group_estimate = None
    row_estimate = None
    estimator = compiler._estimator
    lead = clauses[0]
    if (estimator is not None and isinstance(lead, ast.ForClause)
            and lead.var == agg.source_var):
        stats = estimator.table_stats(lead.source)
        if stats is not None:
            row_estimate = stats.row_count
            group_estimate = estimate_group_count(stats, agg.keys,
                                                  agg.source_var)
    return _AggInfo(key_exprs, [kv for _k, kv in agg.keys], agg.specs,
                    value_exprs, out_vtypes, parallel_safe,
                    group_estimate, row_estimate)


def _new_agg_state(spec):
    """Fresh partial state for one aggregate: int for counts, ordered
    value list for distinct forms, ``[total, count]`` for sum/avg,
    ``[best, seen]`` for min/max. All forms pickle (they cross the
    worker pipe as partial-state tables)."""
    if spec.star or (spec.func == "count" and not spec.distinct):
        return 0
    if spec.distinct:
        return []
    if spec.func in ("sum", "avg"):
        return [None, 0]
    return [None, False]


def _fold_agg_cell(spec, states: list, j: int, cell) -> None:
    """Fold one row's value into group state *j*, replicating the tuple
    path's ``fn:sum``/``fn:avg``/``fn:min``/``fn:max``/
    ``fn:distinct-values`` folds exactly: NULL cells contribute nothing
    (the per-row value sequence is empty), untyped atomics cast to
    double (string for distinct), sums fold with ``+`` left-to-right,
    min/max keep the first value on ties."""
    if spec.star:
        states[j] += 1
        return
    if cell is None:
        return
    if spec.distinct:
        if isinstance(cell, UntypedAtomic):
            cell = str(cell)
        seen = states[j]
        for prior in seen:
            try:
                if compare_values("eq", prior, cell):
                    return
            except XQueryTypeError:
                continue
        seen.append(cell)
        return
    if isinstance(cell, UntypedAtomic):
        cell = float(cell)
    func = spec.func
    if func == "count":
        states[j] += 1
    elif func in ("sum", "avg"):
        acc = states[j]
        acc[0] = cell if acc[1] == 0 else acc[0] + cell
        acc[1] += 1
    else:
        acc = states[j]
        if not acc[1]:
            acc[0] = cell
            acc[1] = True
        elif compare_values("lt" if func == "min" else "gt",
                            cell, acc[0]):
            acc[0] = cell


def _merge_agg_states(spec, a, b):
    """Associative merge of two partial states (partition-index order:
    *a* is the earlier partition — ties and first-occurrence order
    resolve exactly as the serial fold would)."""
    if spec.star or (spec.func == "count" and not spec.distinct):
        return a + b
    if spec.distinct:
        for value in b:
            duplicate = False
            for prior in a:
                try:
                    if compare_values("eq", prior, value):
                        duplicate = True
                        break
                except XQueryTypeError:
                    continue
            if not duplicate:
                a.append(value)
        return a
    if spec.func in ("sum", "avg"):
        if b[1] == 0:
            return a
        if a[1] == 0:
            return b
        return [a[0] + b[0], a[1] + b[1]]
    if not b[1]:
        return a
    if not a[1]:
        return b
    op = "lt" if spec.func == "min" else "gt"
    return b if compare_values(op, b[0], a[0]) else a


def _final_sum_avg(spec, total, count):
    if count == 0:
        return 0 if (spec.func == "sum" and spec.empty_zero) else None
    if spec.func == "sum":
        return total
    # fn:avg's exact division rules: integer totals divide as Decimal.
    if isinstance(total, Decimal):
        return total / Decimal(count)
    if isinstance(total, int):
        return Decimal(total) / Decimal(count)
    return total / count


def _finalize_agg_state(spec, agg_state):
    """Partial state → the aggregate's final scalar (or None = NULL)."""
    func = spec.func
    if spec.distinct:
        if func == "count":
            return len(agg_state)
        if func in ("sum", "avg"):
            total, count = None, 0
            for value in agg_state:
                total = value if count == 0 else total + value
                count += 1
            return _final_sum_avg(spec, total, count)
        best, seen = None, False
        op = "lt" if func == "min" else "gt"
        for value in agg_state:
            if not seen:
                best, seen = value, True
            elif compare_values(op, value, best):
                best = value
        return best if seen else None
    if spec.star or func == "count":
        return agg_state
    if func in ("sum", "avg"):
        return _final_sum_avg(spec, agg_state[0], agg_state[1])
    return agg_state[0] if agg_state[1] else None


def _partial_agg_pays(info: _AggInfo) -> bool:
    """Aggregation-site choice: worker-side partial aggregation wins
    when the group table is meaningfully smaller than its input (the
    gather payload shrinks from O(rows) to O(groups)). With no NDV
    estimate, default to partial aggregation — it is never wrong, only
    potentially no smaller than shipping the rows."""
    if info.group_estimate is None or not info.row_estimate:
        return True
    return info.group_estimate <= 0.5 * info.row_estimate


#: Executor-selection heuristic (estimated rows x operator shape):
#: below these driving-scan row counts the executor's fixed
#: per-execution overhead exceeds its per-row win, so the tuple path is
#: chosen at compile time. Measured on this workload the columnar path
#: beats the tuple path at every extent for plain scan/filter pipelines
#: (column slicing is cheaper than per-row frame churn even at one
#: row), so the scan floor is 0 — i.e. disabled. Join plans pay an
#: extra full build-side column scan plus hash-table build per
#: execution, so they keep a small floor. Only active under cost-based
#: planning (no statistics -> no opinion -> batch).
_MIN_BATCH_ROWS_SCAN = 0
_MIN_BATCH_ROWS_JOIN = 4

#: Grouped plans whose NDV estimate predicts fewer distinct groups than
#: this stay on the tuple path: a one-or-two-group hash table amortizes
#: nothing and the tuple GroupClause is already a single dict pass.
#: Cache-safety: like the row floors, this decision reads only NDV
#: statistics — the plan cache key already includes the runtime's
#: ``_stats_epoch`` (and ``batch_size``), so a stats change re-plans
#: rather than serving a stale executor choice.
_MIN_BATCH_GROUPS = 2


def _prefer_tuple(compiler, clauses) -> bool:
    """True when the cost model says the driving scan is too small for
    batch execution to pay for itself (see the constants above)."""
    estimator = compiler._estimator
    if estimator is None:
        return False
    lead = clauses[0]
    for_clause = lead.for_clause \
        if isinstance(lead, HashJoinClause) else lead
    if not isinstance(for_clause, ast.ForClause):
        return False
    stats = estimator.table_stats(for_clause.source)
    if stats is None:
        return False
    group = next((c for c in clauses
                  if isinstance(c, ast.GroupClause)), None)
    if group is not None and group.source_var == for_clause.var:
        groups = estimate_group_count(stats, group.keys,
                                      group.source_var)
        if groups is not None and groups < _MIN_BATCH_GROUPS:
            return True
    has_join = any(isinstance(c, HashJoinClause) for c in clauses)
    floor = _MIN_BATCH_ROWS_JOIN if has_join else _MIN_BATCH_ROWS_SCAN
    if floor <= 0:
        return False
    return stats.row_count < floor


def try_compile_wrapper(compiler, arg, batch_size: int, columnar,
                        fallback) -> Optional["_VectorPlan"]:
    """Compile the wrapper's ``fn:string-join`` argument *arg* into a
    vector plan. Returns the :class:`_VectorPlan` (its ``chunks`` bound
    method is the chunks closure) or None; *fallback* is the tuple-path
    closure used when run-time parameter shapes disqualify the plan
    (results must stay byte-identical)."""
    if not isinstance(arg, ast.FLWOR):
        return None
    cc = _Ctx(compiler)
    outer = plan_clauses(arg.clauses, arg.return_expr,
                         estimator=compiler._estimator,
                         external_vars=compiler._external_vars)
    if len(outer) != 1 or not isinstance(outer[0], ast.ForClause):
        return None
    tok = outer[0].var
    names = _match_cells(cc, arg.return_expr, tok)
    if names is None:
        return None

    source = outer[0].source
    window = None
    parts = compiler._subsequence_parts(source)
    if parts is not None:
        inner_expr, start, length = parts
        if not (isinstance(start, ast.XLiteral)
                and isinstance(start.value, int)
                and not isinstance(start.value, bool)):
            return None
        begin = start.value
        end = None
        if length is not None:
            if not (isinstance(length, ast.XLiteral)
                    and isinstance(length.value, int)
                    and not isinstance(length.value, bool)):
                return None
            end = begin + length.value
        window = (begin, end)
        source = inner_expr
    if not isinstance(source, ast.FLWOR):
        return None

    clauses = plan_clauses(source.clauses, source.return_expr,
                           estimator=compiler._estimator,
                           external_vars=compiler._external_vars)
    hints: dict = {}
    if compiler._pushdown:
        hints = scan_requests(
            clauses, source.return_expr, compiler._external_vars,
            lambda s: compiler._scan_call(s) is not None)
    if not clauses:
        return None

    restore_vars: set[str] = set()
    for clause in clauses:
        if isinstance(clause, RestoreOrderClause):
            restore_vars.update(clause.vars)

    def scan_info(for_clause, hint) -> Optional[_ScanInfo]:
        call = compiler._scan_call(for_clause.source)
        if call is None:
            return None
        if columnar.column_scan_schema(*call) is None:
            return None
        return _ScanInfo(for_clause.var, call[0], call[1], hint,
                         for_clause.var in restore_vars)

    def scan_env(info: _ScanInfo) -> dict:
        schema = columnar.column_scan_schema(info.uri, info.local)
        return {name: xs_type for name, xs_type in schema}

    env: dict = {}

    def compile_join(clause, hint) -> Optional[_JoinInfo]:
        """Vector-compile a hash join (updating *env* on success). With
        an empty *env* — a leading join — the probe keys may only read
        literals and parameters: a constant selection over the planner's
        unit tuple stream."""
        info = scan_info(clause.for_clause, hint)
        if info is None:
            return None
        build_env = {info.var: scan_env(info)}
        both_env = dict(env)
        both_env[info.var] = build_env[info.var]
        build_exprs = [_vcompile(cc, b, build_env)
                       for b, _p, _c in clause.keys]
        probe_exprs = [_vcompile(cc, p, env)
                       for _b, p, _c in clause.keys]
        cond_exprs = [_vcompile(cc, c, both_env)
                      for _b, _p, c in clause.keys]
        filter_exprs = [_vcompile(cc, f, build_env)
                        for f in clause.filters]
        if any(e is None for e in chain(build_exprs, probe_exprs,
                                        cond_exprs, filter_exprs)):
            return None
        env[info.var] = build_env[info.var]
        return _JoinInfo(info, build_exprs, probe_exprs, cond_exprs,
                         filter_exprs)

    stages: list = []
    if isinstance(clauses[0], ast.ForClause):
        first = scan_info(clauses[0], hints.get(0))
        if first is None:
            return None
        env[first.var] = scan_env(first)
        stages.append(("scan", first))
    elif isinstance(clauses[0], HashJoinClause):
        info = compile_join(clauses[0], hints.get(0))
        if info is None:
            return None
        stages.append(("join", info))
    else:
        return None
    def compile_order(clause) -> Optional[list]:
        specs = []
        for spec in clause.specs:
            key = _vcompile(cc, spec.key, env)
            if key is None:
                return None
            specs.append((key, spec.ascending, spec.empty_least))
        return specs

    record_return = source.return_expr
    for index, clause in enumerate(clauses[1:], start=1):
        if isinstance(clause, ast.WhereClause):
            condition = _vcompile(cc, clause.condition, env)
            if condition is None:
                return None
            stages.append(("where", condition))
        elif isinstance(clause, HashJoinClause):
            info = compile_join(clause, hints.get(index))
            if info is None:
                return None
            stages.append(("join", info))
        elif isinstance(clause, ast.OrderClause):
            specs = compile_order(clause)
            if specs is None:
                return None
            stages.append(("order", specs))
        elif isinstance(clause, RestoreOrderClause):
            if not all(v in env for v in clause.vars):
                return None
            stages.append(("restore", clause.vars))
        elif isinstance(clause, ast.GroupClause):
            # Lower the group plus everything downstream (HAVING,
            # grouped ORDER BY, the record) into one hash-aggregation
            # stage followed by scalar-column where/order stages.
            lowered = lower_group_aggregates(
                clause, clauses[index + 1:], source.return_expr,
                lambda e, local, arity: _is_fn_call(cc, e, FN_URI,
                                                    local, arity))
            if lowered is None:
                return None
            agg_clause, post_clauses, record_return = lowered
            info = _compile_aggregate(cc, agg_clause, env, compiler,
                                      clauses)
            if info is None:
                return None
            stages.append(("agg", info))
            env = {key_var: _ScalarCol((_GRP, key_var), key_v.vtype)
                   for key_var, key_v in zip(info.key_vars,
                                             info.key_exprs)}
            for spec, vtype in zip(info.specs, info.out_vtypes):
                env[spec.var] = _ScalarCol((_GRP, spec.var), vtype)
            for post in post_clauses:
                if isinstance(post, ast.WhereClause):
                    condition = _vcompile(cc, post.condition, env)
                    if condition is None:
                        return None
                    stages.append(("where", condition))
                else:  # OrderClause (lowering admits nothing else)
                    specs = compile_order(post)
                    if specs is None:
                        return None
                    stages.append(("order", specs))
            break
        else:
            return None

    projections = _match_record(cc, record_return, names, env)
    if projections is None:
        return None

    if _prefer_tuple(compiler, clauses):
        return None

    return _VectorPlan(
        columnar=columnar,
        batch_size=batch_size,
        stages=stages,
        window=window,
        projections=projections,
        param_names=frozenset(cc.params),
        inner_fid=compiler._flwor_ids.get(id(source)),
        outer_fid=compiler._flwor_ids.get(id(arg)),
        fallback=fallback,
    )


# ---------------------------------------------------------------------------
# Runtime
# ---------------------------------------------------------------------------


def _count_rows(batches, actuals: dict, node_id) -> Iterator[_Batch]:
    """Mirror the tuple pipeline's per-stage actual-row accounting at
    batch granularity (tallied even on partial consumption)."""
    count = 0
    try:
        for b in batches:
            count += b.n
            yield b
    finally:
        actuals[node_id] = actuals.get(node_id, 0) + count


class _VectorPlan:
    __slots__ = ("columnar", "batch_size", "stages", "window",
                 "projections", "param_names", "inner_fid", "outer_fid",
                 "fallback", "_escape_flags", "xquery_text",
                 "parallel_ready", "parallel_mode",
                 "partition_stage_count", "signature")

    def __init__(self, columnar, batch_size, stages, window, projections,
                 param_names, inner_fid, outer_fid, fallback):
        self.columnar = columnar
        self.batch_size = batch_size
        self.stages = stages
        self.window = window
        self.projections = projections
        self.param_names = param_names
        self.inner_fid = inner_fid
        self.outer_fid = outer_fid
        self.fallback = fallback
        self._escape_flags = [p.vtype not in _NO_ESCAPE_TYPES
                              for p in projections]
        #: Stamped by DSPRuntime.prepare so the scatter executor can
        #: re-prepare the identical plan by text in pool workers.
        self.xquery_text = None
        #: Scatter/gather shape analysis. Only a plan driven by a plain
        #: scan can be partitioned (a leading hash join probes the unit
        #: tuple stream — there is nothing to split). Workers run the
        #: stage prefix up to the first pipeline breaker (order/restore
        #: need every row; agg needs every row of its group); with no
        #: breaker and no window they run the whole pipeline including
        #: the encode ("encode" mode). When the first breaker is a
        #: parallel-safe aggregation whose NDV estimate predicts real
        #: compression, workers fold their partition into a partial-
        #: state table and ship O(groups) instead of O(rows)
        #: ("partial_agg" mode); otherwise they return raw columns for
        #: the parent to finish ("batches" mode).
        self.parallel_ready = bool(stages) and stages[0][0] == "scan"
        breakers = [i for i, (kind, _p) in enumerate(stages)
                    if kind in ("order", "restore", "agg")]
        self.partition_stage_count = breakers[0] if breakers \
            else len(stages)
        if not breakers and window is None:
            self.parallel_mode = "encode"
        elif breakers and stages[breakers[0]][0] == "agg" \
                and stages[breakers[0]][1].parallel_safe \
                and _partial_agg_pays(stages[breakers[0]][1]):
            self.parallel_mode = "partial_agg"
        else:
            self.parallel_mode = "batches"
        scan0 = stages[0][1] if self.parallel_ready else None
        agg_shape = tuple(
            (len(payload.key_vars),)
            + tuple((s.func, s.star, s.distinct, s.empty_zero)
                    for s in payload.specs)
            for kind, payload in stages if kind == "agg")
        self.signature = (
            tuple(kind for kind, _p in stages),
            window,
            len(projections),
            tuple(sorted(param_names)),
            (scan0.uri, scan0.local, scan0.with_ordinal)
            if scan0 is not None else None,
            self.parallel_mode,
            agg_shape,
        )

    # -- entry ------------------------------------------------------------

    def chunks(self, frame: _Frame) -> Iterator[str]:
        params: dict = {}
        for name in self.param_names:
            bound = frame.variables.get(name, [])
            if len(bound) > 1 or (bound and is_node(bound[0])):
                # A sequence- or node-valued parameter is outside the
                # scalar column model; the tuple path is exact.
                VSTATS.fallbacks += 1
                return self.fallback(frame)
            params[name] = bound[0] if bound else None
        state = _State(frame, frame.variables.get(CONTEXT_KEY), params,
                       frame.variables.get(ACTUALS_KEY))
        VSTATS.executions += 1
        if self.parallel_ready and state.actuals is None \
                and self.xquery_text is not None:
            # EXPLAIN (actuals) stays serial: per-node row accounting
            # happens inside worker processes and cannot be merged.
            gathered = self.columnar.try_parallel(self, state)
            if gathered is not None:
                VSTATS.parallel += 1
                return gathered
        return self._encode(state, self._batches(state))

    # -- scatter/gather (engine.parallel) ----------------------------------

    def run_partition(self, frame: _Frame, spec, mode: str):
        """Worker-side entry: run this plan over one partition.

        In ``"encode"`` mode returns ``(chunk_text, out_rows, scanned)``
        — the partition's fully encoded output. In ``"batches"`` mode
        returns ``(cols, out_rows, scanned)`` where *cols* is one
        column-major dict for the whole partition after the worker-side
        stage prefix. In ``"partial_agg"`` mode returns ``(table,
        n_groups, scanned)`` where *table* is the partition's partial-
        state group table in first-seen order. *scanned* is the
        partition's scanned (post-pushdown, pre-filter) row count — the
        parent's ordinal offset (and, for aggregation, its admission
        charge).
        """
        params: dict = {}
        for name in self.param_names:
            bound = frame.variables.get(name, [])
            if len(bound) > 1 or (bound and is_node(bound[0])):
                raise XQueryTypeError(
                    "parameter shape outside the vector subset",
                    code="FORG0006")
            params[name] = bound[0] if bound else None
        state = _State(frame, frame.variables.get(CONTEXT_KEY), params,
                       None)
        scanned: list = [0]
        _head, info = self.stages[0]
        batches = self._scan(state, info, partition=spec,
                             scanned=scanned)
        for kind, payload in self.stages[1:self.partition_stage_count]:
            if kind == "where":
                batches = self._where(state, batches, payload)
            else:  # join (breaker stages never sit inside the prefix)
                batches = self._join(state, batches, payload)
        if mode == "partial_agg":
            _kind, info = self.stages[self.partition_stage_count]
            table = self._fold_groups(state, batches, info)
            payload = [(canon, record[0], record[1])
                       for canon, record in table.items()]
            return payload, len(payload), scanned[0]
        if mode == "encode":
            out_rows = 0

            def counted(source=batches):
                nonlocal out_rows
                for b in source:
                    out_rows += b.n
                    yield b

            text = "".join(self._encode(state, counted()))
            return text, out_rows, scanned[0]
        big = _concat(list(batches))
        return dict(big.cols), big.n, scanned[0]

    def gather_batches(self, state: _State, parts) -> Iterator[str]:
        """Parent-side merge for ``"batches"`` mode: *parts* is the
        per-partition ``(cols, out_rows, scanned)`` list in partition
        index order. The driving scan's restore-order ordinals were
        assigned per partition starting at 0; offsetting partition k by
        the cumulative scanned rows of partitions < k reproduces the
        serial scan's ordinal assignment exactly, so the downstream
        order/restore/window stages and the encode are byte-identical.
        """
        _head, info = self.stages[0]
        ord_key = (_ORD, info.var)
        offset = 0
        merged = []
        for cols, n, scanned in parts:
            column = cols.get(ord_key)
            if column is not None and offset:
                cols[ord_key] = [o + offset for o in column]
            offset += scanned
            if n:
                merged.append(_Batch(n, cols))
        batches: Iterator[_Batch] = iter(merged)
        for kind, payload in self.stages[self.partition_stage_count:]:
            if kind == "order":
                batches = self._order(state, batches, payload)
            elif kind == "restore":
                batches = self._restore(state, batches, payload)
            elif kind == "where":
                batches = self._where(state, batches, payload)
            elif kind == "agg":
                batches = self._aggregate(state, batches, payload)
            else:
                batches = self._join(state, batches, payload)
        if self.window is not None:
            batches = self._window_batches(batches)
        return self._encode(state, batches)

    def gather_partial(self, state: _State, parts) -> Iterator[str]:
        """Parent-side merge for ``"partial_agg"`` mode: *parts* is the
        per-partition ``(table, n_groups, scanned)`` list in partition
        index order. Partitions are contiguous slices of the serial
        scan order, so merging their first-seen group tables in index
        order reproduces the serial group order, and every partial
        state's merge is associative (``parallel_safe`` gated the mode),
        so finalized values match the serial fold exactly. The order/
        window/encode suffix then runs in-process as usual."""
        agg_index = self.partition_stage_count
        _kind, info = self.stages[agg_index]
        specs = info.specs
        groups: dict = {}
        for table, _n, _scanned in parts:
            for canon, key_values, states in table:
                record = groups.get(canon)
                if record is None:
                    groups[canon] = (key_values, states)
                else:
                    merged = record[1]
                    for j, spec in enumerate(specs):
                        merged[j] = _merge_agg_states(spec, merged[j],
                                                      states[j])
        self._count_groups(len(groups))
        batches: Iterator[_Batch] = self._group_batches(info, groups)
        for kind, payload in self.stages[agg_index + 1:]:
            if kind == "where":
                batches = self._where(state, batches, payload)
            else:  # order (nothing else survives the lowering)
                batches = self._order(state, batches, payload)
        if self.window is not None:
            batches = self._window_batches(batches)
        return self._encode(state, batches)

    def _batches(self, state: _State) -> Iterator[_Batch]:
        head, info = self.stages[0]
        if head == "scan":
            batches = self._scan(state, info)
        else:
            # Leading hash join: a constant selection probed from the
            # planner's unit tuple stream (one frame, no bindings).
            batches = self._join(state, iter((_Batch(1, {}),)), info)
        count = state.actuals is not None and self.inner_fid is not None
        if count:
            batches = _count_rows(batches, state.actuals,
                                  (self.inner_fid, 0))
        for index, (kind, payload) in enumerate(self.stages[1:], start=1):
            if kind == "where":
                batches = self._where(state, batches, payload)
            elif kind == "join":
                batches = self._join(state, batches, payload)
            elif kind == "order":
                batches = self._order(state, batches, payload)
            elif kind == "agg":
                batches = self._aggregate(state, batches, payload)
            else:
                batches = self._restore(state, batches, payload)
            if count:
                batches = _count_rows(batches, state.actuals,
                                      (self.inner_fid, index))
        if self.window is not None:
            batches = self._window_batches(batches)
        if state.actuals is not None and self.outer_fid is not None:
            batches = _count_rows(batches, state.actuals,
                                  (self.outer_fid, 0))
        return batches

    # -- stages -----------------------------------------------------------

    def _live_request(self, request, frame: _Frame):
        """Re-resolve ParamRef predicate values per execution, exactly
        like the tuple path's late-bound scan closure."""
        if request is None:
            return None
        if not any(isinstance(p.value, ParamRef)
                   for p in request.predicates):
            return request
        from ..sources.spi import Predicate, ScanRequest

        predicates = []
        for pred in request.predicates:
            if isinstance(pred.value, ParamRef):
                bound = frame.lookup(pred.value.name)
                if len(bound) != 1 or is_node(bound[0]):
                    continue
                predicates.append(
                    Predicate(pred.column, pred.op, bound[0]))
            else:
                predicates.append(pred)
        live = ScanRequest(columns=request.columns,
                           predicates=tuple(predicates))
        return None if live.is_trivial else live

    def _scan_columns(self, state: _State, info: _ScanInfo,
                      partition=None):
        request = self._live_request(info.request, state.frame)
        columns, values, nrows = self.columnar.scan_columns(
            info.uri, info.local, context=state.ctx, scan=request,
            partition=partition)
        colmap = {name: col
                  for (name, _xs), col in zip(columns, values)}
        return colmap, nrows

    def _scan(self, state: _State, info: _ScanInfo, partition=None,
              scanned=None) -> Iterator[_Batch]:
        colmap, nrows = self._scan_columns(state, info, partition)
        if scanned is not None:
            scanned[0] = nrows
        var = info.var
        size = self.batch_size
        for start in range(0, nrows, size):
            stop = min(start + size, nrows)
            cols = {(var, name): col[start:stop]
                    for name, col in colmap.items()}
            if info.with_ordinal:
                cols[(_ORD, var)] = list(range(start, stop))
            batch = _Batch(stop - start, cols)
            if state.ctx is not None:
                # Batch granularity is the tick granularity: deadline /
                # cancellation latency is bounded by one batch even when
                # the columns came from the runtime's columnar cache.
                state.ctx.tick_rows(batch.n)
            yield batch

    def _where(self, state: _State, batches, condition: _V) \
            -> Iterator[_Batch]:
        for b in batches:
            mask = condition.eval(state, b)
            idx = [i for i in range(b.n) if _ebv_scalar(mask[i])]
            if len(idx) == b.n:
                yield b
            elif idx:
                yield _gather(b, idx)

    def _join(self, state: _State, batches, info: _JoinInfo) \
            -> Iterator[_Batch]:
        scan = info.scan
        colmap, nrows = self._scan_columns(state, scan)
        build = _Batch(nrows, {(scan.var, name): col
                               for name, col in colmap.items()})
        # Absorbed build filters run once, before hashing; compacting
        # between conjuncts preserves the tuple path's short-circuit
        # (a later filter never sees a row an earlier one dropped).
        for filter_expr in info.filter_exprs:
            mask = filter_expr.eval(state, build)
            idx = [i for i in range(build.n) if _ebv_scalar(mask[i])]
            if len(idx) != build.n:
                build = _gather(build, idx)
        if scan.with_ordinal:
            # Entry index within the post-filter build order — exactly
            # the tuple path's enumerate() positions.
            build.cols[(_ORD, scan.var)] = list(range(build.n))

        pairwise = False
        table: dict = {}
        categories = [set() for _ in info.build_exprs]
        key_cols = [e.eval(state, build) for e in info.build_exprs]
        for i in range(build.n):
            parts: Optional[list] = []
            for j, col in enumerate(key_cols):
                value = col[i]
                if value is None:
                    parts = None
                    break  # eq against NULL never matches
                category, canon = join_key(value)
                if category is None:
                    pairwise = True
                    break
                categories[j].add(category)
                parts.append(canon)
            if pairwise:
                break
            if parts is None:
                continue
            table.setdefault(tuple(parts), []).append(i)
        if not pairwise and any(len(found) > 1 for found in categories):
            pairwise = True  # mixed-category keys: exact path only

        for b in batches:
            probe_idx: list = []
            build_idx: list = []
            if pairwise:
                for i in range(b.n):
                    for entry in self._pairwise_row(state, b, i, build,
                                                    info):
                        probe_idx.append(i)
                        build_idx.append(entry)
            else:
                probe_cols = [e.eval(state, b)
                              for e in info.probe_exprs]
                for i in range(b.n):
                    parts = []
                    row_pairwise = False
                    for j, col in enumerate(probe_cols):
                        value = col[i]
                        if value is None:
                            parts = None
                            break
                        category, canon = join_key(value)
                        if category is None or (
                                categories[j]
                                and category not in categories[j]):
                            row_pairwise = True
                            break
                        parts.append(canon)
                    if row_pairwise:
                        matches = self._pairwise_row(state, b, i, build,
                                                     info)
                    elif parts is None:
                        matches = []
                    else:
                        matches = table.get(tuple(parts), [])
                    for entry in matches:
                        probe_idx.append(i)
                        build_idx.append(entry)
            if not probe_idx:
                continue
            cols = {key: [col[i] for i in probe_idx]
                    for key, col in b.cols.items()}
            for key, col in build.cols.items():
                cols[key] = [col[e] for e in build_idx]
            out = _Batch(len(probe_idx), cols)
            if state.ctx is not None:
                state.ctx.tick_rows(out.n)
            yield out

    def _pairwise_row(self, state: _State, b: _Batch, i: int,
                      build: _Batch, info: _JoinInfo) -> list:
        """Exact fallback: re-evaluate the original eq conditions per
        (probe row, build entry) pair, conjuncts short-circuiting per
        entry like the tuple path's ``all()``."""
        matches = []
        probe_cells = {key: col[i] for key, col in b.cols.items()}
        for entry in range(build.n):
            cols = {key: [cell] for key, cell in probe_cells.items()}
            for key, col in build.cols.items():
                cols[key] = [col[entry]]
            pair = _Batch(1, cols)
            if all(_ebv_scalar(cond.eval(state, pair)[0])
                   for cond in info.cond_exprs):
                matches.append(entry)
        return matches

    def _fold_groups(self, state: _State, batches,
                     info: _AggInfo) -> dict:
        """Consume *batches* into a group table: canonical key tuple →
        ``(key_values, [partial state per spec])`` in first-seen order.
        Shared by the serial stage (which finalizes it) and the worker
        side of partial aggregation (which ships it)."""
        specs = info.specs
        groups: dict = {}
        for b in batches:
            if state.ctx is not None:
                # The group table buffers whole-input state, so
                # admission charges the pre-aggregation scanned rows
                # (ticks happened at scan granularity already).
                state.ctx.rows_buffered += b.n
            key_cols = [key.eval(state, b) for key in info.key_exprs]
            value_cols = [None if value is None else value.eval(state, b)
                          for value in info.value_exprs]
            for i in range(b.n):
                key_cells = [col[i] for col in key_cols]
                canon = tuple(grouping_key(cell) for cell in key_cells)
                record = groups.get(canon)
                if record is None:
                    record = (key_cells,
                              [_new_agg_state(spec) for spec in specs])
                    groups[canon] = record
                states = record[1]
                for j, spec in enumerate(specs):
                    col = value_cols[j]
                    _fold_agg_cell(spec, states, j,
                                   None if col is None else col[i])
        return groups

    def _count_groups(self, n_groups: int) -> None:
        VSTATS.agg_groups += n_groups
        queries = getattr(self.columnar, "_agg_queries", None)
        if queries is not None:
            queries.increment()
        counter = getattr(self.columnar, "_agg_groups", None)
        if counter is not None:
            counter.add(n_groups)

    def _group_batches(self, info: _AggInfo, groups: dict) \
            -> Iterator[_Batch]:
        """Finalize a group table into scalar-column batches: one
        ``(_GRP, var)`` column per group key and per aggregate."""
        records = list(groups.values())
        size = self.batch_size
        for start in range(0, len(records), size):
            chunk = records[start:start + size]
            cols = {}
            for k, var in enumerate(info.key_vars):
                cols[(_GRP, var)] = [record[0][k] for record in chunk]
            for j, spec in enumerate(info.specs):
                cols[(_GRP, spec.var)] = [
                    _finalize_agg_state(spec, record[1][j])
                    for record in chunk]
            yield _Batch(len(chunk), cols)

    def _aggregate(self, state: _State, batches,
                   info: _AggInfo) -> Iterator[_Batch]:
        groups = self._fold_groups(state, batches, info)
        self._count_groups(len(groups))
        yield from self._group_batches(info, groups)

    def _order(self, state: _State, batches, specs) -> Iterator[_Batch]:
        big = _concat(list(batches))  # pipeline breaker
        if big.n == 0:
            return
        key_cols = [key.eval(state, big) for key, _a, _e in specs]

        def sort_key(i: int):
            keys = []
            for col, (_k, ascending, empty_least) in zip(key_cols, specs):
                value = col[i]
                key = order_key(value)
                if value is None and not empty_least:
                    key = (2, 0, 0)  # empty greatest
                keys.append(_Directional(key, ascending))
            return keys

        # sorted() is stable over row indexes, so ties keep the input
        # order — the same permutation the tuple path's frame sort picks.
        yield from self._reslice(big, sorted(range(big.n), key=sort_key))

    def _restore(self, state: _State, batches, vars) -> Iterator[_Batch]:
        big = _concat(list(batches))  # pipeline breaker
        if big.n == 0:
            return
        ordinal_cols = [big.cols[(_ORD, var)] for var in vars]

        def sort_key(i: int):
            return tuple(col[i] for col in ordinal_cols)

        yield from self._reslice(big, sorted(range(big.n), key=sort_key))

    def _reslice(self, big: _Batch, order: list) -> Iterator[_Batch]:
        size = self.batch_size
        for start in range(0, len(order), size):
            yield _gather(big, order[start:start + size])

    def _window_batches(self, batches) -> Iterator[_Batch]:
        """Apply the LIMIT/OFFSET window (fn:subsequence with literal
        bounds): emit 1-based positions begin <= p < end, stopping the
        upstream pipeline as soon as the window is exhausted."""
        begin, end = self.window
        position = 0  # rows seen from upstream so far
        if end is not None and end <= max(begin, 1):
            return
        for b in batches:
            lo = max(begin - 1 - position, 0)
            hi = b.n if end is None else max(0, min(b.n,
                                                    end - 1 - position))
            position += b.n
            if hi > lo:
                if lo == 0 and hi == b.n:
                    yield b
                else:
                    yield _slice_batch(b, lo, hi)
            if end is not None and position >= end - 1:
                return

    # -- encode -----------------------------------------------------------

    def _encode(self, state: _State, batches) -> Iterator[str]:
        projections = self.projections
        escape_flags = self._escape_flags
        stats = VSTATS
        for b in batches:
            if b.n == 0:
                continue
            parts = []
            for projection, needs_escape in zip(projections,
                                                escape_flags):
                col = projection.eval(state, b)
                if needs_escape:
                    parts.append([
                        "<" if v is None
                        else ">" + escape_text(serialize_atomic(v))
                        for v in col])
                else:
                    # Numeric/date/boolean lexical forms contain no XML
                    # specials; skipping xml-escape is byte-identical.
                    parts.append([
                        "<" if v is None
                        else ">" + serialize_atomic(v)
                        for v in col])
            if len(parts) == 1:
                chunk = "".join(parts[0])
            else:
                chunk = "".join(chain.from_iterable(zip(*parts)))
            stats.batches += 1
            stats.rows += b.n
            if state.ctx is not None:
                # Whole-batch decode buffering: admission accounting
                # charges buffered rows, not just fetched ones.
                state.ctx.rows_buffered += b.n
            yield chunk


# Shared with the tuple compiler; imported late to break the module
# cycle (compile imports this module inside _compile_chunks).
from .compile import ACTUALS_KEY  # noqa: E402
