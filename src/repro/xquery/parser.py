"""Recursive-descent parser for the supported XQuery dialect.

Because XQuery embeds XML syntax (direct constructors), the parser owns a
character-level scanner and lexes on demand rather than pre-tokenizing:
``<`` is a comparison operator after an operand but starts a constructor
at primary-expression position, and constructor content is scanned in raw
mode. XQuery has no reserved words, so keywords are recognized purely by
context.

Boundary whitespace in element constructors is stripped (the default
``declare boundary-space strip;`` policy), which is what the translator's
pretty-printed output expects.
"""

from __future__ import annotations

import re
from decimal import Decimal

from ..errors import XQuerySyntaxError
from ..xmlmodel.escape import unescape
from . import ast

_NCNAME_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_.\-]*")
_NUMBER_RE = re.compile(
    r"(\d+\.\d*|\.\d+|\d+)([eE][+-]?\d+)?")
_WS_RE = re.compile(r"[ \t\r\n]+")

_VALUE_COMP_OPS = ("eq", "ne", "lt", "le", "gt", "ge")
_GENERAL_COMP_OPS = ("!=", "<=", ">=", "=", "<", ">")


class _Scanner:
    """Character cursor with comment-aware whitespace skipping."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    def error(self, message: str) -> XQuerySyntaxError:
        line = self.text.count("\n", 0, self.pos) + 1
        col = self.pos - self.text.rfind("\n", 0, self.pos)
        return XQuerySyntaxError(f"{message} (line {line}, column {col})",
                                 code="XPST0003")

    def eof(self) -> bool:
        self.skip_ws()
        return self.pos >= len(self.text)

    def skip_ws(self) -> None:
        while True:
            match = _WS_RE.match(self.text, self.pos)
            if match:
                self.pos = match.end()
            if self.text.startswith("(:", self.pos):
                self._skip_comment()
            else:
                return

    def _skip_comment(self) -> None:
        depth = 0
        while self.pos < len(self.text):
            if self.text.startswith("(:", self.pos):
                depth += 1
                self.pos += 2
            elif self.text.startswith(":)", self.pos):
                depth -= 1
                self.pos += 2
                if depth == 0:
                    return
            else:
                self.pos += 1
        raise self.error("unterminated comment")

    def peek_char(self, offset: int = 0) -> str:
        self.skip_ws()
        index = self.pos + offset
        return self.text[index] if index < len(self.text) else ""

    def raw_char(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.text[index] if index < len(self.text) else ""

    def match_symbol(self, symbol: str) -> bool:
        """Consume *symbol* if present (after whitespace)."""
        self.skip_ws()
        if self.text.startswith(symbol, self.pos):
            self.pos += len(symbol)
            return True
        return False

    def expect_symbol(self, symbol: str) -> None:
        if not self.match_symbol(symbol):
            raise self.error(f"expected {symbol!r}")

    def peek_keyword(self, word: str) -> bool:
        """Is *word* next, as a whole NCName?"""
        self.skip_ws()
        end = self.pos + len(word)
        if not self.text.startswith(word, self.pos):
            return False
        if end < len(self.text) and _NCNAME_RE.match(self.text[end]):
            # Next char continues the name (e.g. "orderly" vs "order").
            if re.match(r"[A-Za-z0-9_.\-]", self.text[end]):
                return False
        return True

    def match_keyword(self, word: str) -> bool:
        if self.peek_keyword(word):
            self.pos += len(word)
            return True
        return False

    def expect_keyword(self, word: str) -> None:
        if not self.match_keyword(word):
            raise self.error(f"expected keyword {word!r}")

    def read_ncname(self, what: str = "name") -> str:
        self.skip_ws()
        match = _NCNAME_RE.match(self.text, self.pos)
        if not match:
            raise self.error(f"expected {what}")
        self.pos = match.end()
        return match.group(0)

    def read_qname(self) -> tuple[str, str]:
        """Read ``[prefix:]local``, returning (prefix, local)."""
        first = self.read_ncname()
        if self.raw_char() == ":" and _NCNAME_RE.match(self.raw_char(1) or " "):
            self.pos += 1
            local = _NCNAME_RE.match(self.text, self.pos)
            assert local is not None
            self.pos = local.end()
            return first, local.group(0)
        return "", first

    def read_string_literal(self) -> str:
        self.skip_ws()
        quote = self.raw_char()
        if quote not in ('"', "'"):
            raise self.error("expected a string literal")
        self.pos += 1
        parts: list[str] = []
        while True:
            ch = self.raw_char()
            if not ch:
                raise self.error("unterminated string literal")
            if ch == quote:
                if self.raw_char(1) == quote:
                    parts.append(quote)
                    self.pos += 2
                    continue
                self.pos += 1
                return unescape("".join(parts))
            parts.append(ch)
            self.pos += 1


class Parser:
    """Parses one XQuery module."""

    def __init__(self, text: str):
        self._s = _Scanner(text)

    # -- module & prolog --------------------------------------------------

    def parse_module(self) -> ast.Module:
        prolog = self._parse_prolog()
        body = self._parse_expr()
        if not self._s.eof():
            raise self._s.error("unexpected trailing input")
        return ast.Module(prolog=tuple(prolog), body=body)

    def _parse_prolog(self) -> list:
        decls = []
        while True:
            start = self._s.pos
            if self._s.match_keyword("import"):
                self._s.expect_keyword("schema")
                self._s.expect_keyword("namespace")
                prefix = self._s.read_ncname("namespace prefix")
                self._s.expect_symbol("=")
                uri = self._s.read_string_literal()
                location = None
                if self._s.match_keyword("at"):
                    location = self._s.read_string_literal()
                self._s.expect_symbol(";")
                decls.append(ast.SchemaImport(prefix=prefix, uri=uri,
                                              location=location))
            elif self._s.peek_keyword("declare"):
                mark = self._s.pos
                self._s.match_keyword("declare")
                if self._s.match_keyword("namespace"):
                    prefix = self._s.read_ncname("namespace prefix")
                    self._s.expect_symbol("=")
                    uri = self._s.read_string_literal()
                    self._s.expect_symbol(";")
                    decls.append(ast.NamespaceDecl(prefix=prefix, uri=uri))
                elif self._s.match_keyword("variable"):
                    self._s.expect_symbol("$")
                    name = self._s.read_ncname("variable name")
                    type_name = None
                    if self._s.match_keyword("as"):
                        prefix, local = self._s.read_qname()
                        type_name = local
                    self._s.expect_keyword("external")
                    self._s.expect_symbol(";")
                    decls.append(ast.VarDecl(name=name, type_name=type_name))
                else:
                    # Not a prolog declaration we know; rewind and stop.
                    self._s.pos = mark
                    break
            else:
                self._s.pos = start
                break
        return decls

    # -- expressions --------------------------------------------------------

    def _parse_expr(self) -> ast.XExpr:
        items = [self._parse_expr_single()]
        while self._s.match_symbol(","):
            items.append(self._parse_expr_single())
        if len(items) == 1:
            return items[0]
        return ast.SequenceExpr(items=tuple(items))

    def _parse_expr_single(self) -> ast.XExpr:
        if self._peek_flwor_start():
            return self._parse_flwor()
        if self._peek_keyword_then_dollar("some"):
            return self._parse_quantified("some")
        if self._peek_keyword_then_dollar("every"):
            return self._parse_quantified("every")
        if self._peek_if():
            return self._parse_if()
        return self._parse_or()

    def _peek_flwor_start(self) -> bool:
        return (self._peek_keyword_then_dollar("for")
                or self._peek_keyword_then_dollar("let"))

    def _peek_keyword_then_dollar(self, word: str) -> bool:
        if not self._s.peek_keyword(word):
            return False
        mark = self._s.pos
        self._s.match_keyword(word)
        result = self._s.peek_char() == "$"
        self._s.pos = mark
        return result

    def _peek_if(self) -> bool:
        if not self._s.peek_keyword("if"):
            return False
        mark = self._s.pos
        self._s.match_keyword("if")
        result = self._s.peek_char() == "("
        self._s.pos = mark
        return result

    # -- FLWOR ---------------------------------------------------------------

    def _parse_flwor(self) -> ast.FLWOR:
        clauses: list[ast.FLWORClause] = []
        while True:
            if self._peek_keyword_then_dollar("for"):
                self._s.match_keyword("for")
                clauses.extend(self._parse_for_bindings())
            elif self._peek_keyword_then_dollar("let"):
                self._s.match_keyword("let")
                clauses.extend(self._parse_let_bindings())
            elif self._s.match_keyword("where"):
                clauses.append(ast.WhereClause(
                    condition=self._parse_expr_single()))
            elif self._peek_keyword_then_dollar("group"):
                self._s.match_keyword("group")
                clauses.append(self._parse_group_clause())
            elif self._s.peek_keyword("stable") or \
                    self._s.peek_keyword("order"):
                self._s.match_keyword("stable")
                self._s.expect_keyword("order")
                self._s.expect_keyword("by")
                clauses.append(self._parse_order_clause())
            elif self._s.match_keyword("return"):
                if not clauses:
                    raise self._s.error("FLWOR requires at least one clause")
                return ast.FLWOR(clauses=tuple(clauses),
                                 return_expr=self._parse_expr_single())
            else:
                raise self._s.error(
                    "expected for/let/where/group/order by/return")

    def _parse_for_bindings(self) -> list[ast.ForClause]:
        bindings = []
        while True:
            self._s.expect_symbol("$")
            var = self._s.read_ncname("variable name")
            self._s.expect_keyword("in")
            bindings.append(ast.ForClause(
                var=var, source=self._parse_expr_single()))
            if not self._match_binding_comma():
                return bindings

    def _parse_let_bindings(self) -> list[ast.LetClause]:
        bindings = []
        while True:
            self._s.expect_symbol("$")
            var = self._s.read_ncname("variable name")
            self._s.expect_symbol(":=")
            bindings.append(ast.LetClause(
                var=var, value=self._parse_expr_single()))
            if not self._match_binding_comma():
                return bindings

    def _match_binding_comma(self) -> bool:
        """A comma continues the binding list only if followed by '$'."""
        mark = self._s.pos
        if self._s.match_symbol(","):
            if self._s.peek_char() == "$":
                return True
            self._s.pos = mark
        return False

    def _parse_group_clause(self) -> ast.GroupClause:
        self._s.expect_symbol("$")
        source_var = self._s.read_ncname("grouped variable")
        self._s.expect_keyword("as")
        self._s.expect_symbol("$")
        partition_var = self._s.read_ncname("partition variable")
        self._s.expect_keyword("by")
        keys = []
        while True:
            key_expr = self._parse_expr_single()
            self._s.expect_keyword("as")
            self._s.expect_symbol("$")
            key_var = self._s.read_ncname("group key variable")
            keys.append((key_expr, key_var))
            if not self._s.match_symbol(","):
                return ast.GroupClause(source_var=source_var,
                                       partition_var=partition_var,
                                       keys=tuple(keys))

    def _parse_order_clause(self) -> ast.OrderClause:
        specs = []
        while True:
            key = self._parse_expr_single()
            ascending = True
            if self._s.match_keyword("descending"):
                ascending = False
            else:
                self._s.match_keyword("ascending")
            empty_least = True
            if self._s.match_keyword("empty"):
                if self._s.match_keyword("greatest"):
                    empty_least = False
                else:
                    self._s.expect_keyword("least")
            specs.append(ast.OrderSpec(key=key, ascending=ascending,
                                       empty_least=empty_least))
            if not self._s.match_symbol(","):
                return ast.OrderClause(specs=tuple(specs))

    def _parse_quantified(self, kind: str) -> ast.QuantifiedExpr:
        self._s.expect_keyword(kind)
        self._s.expect_symbol("$")
        var = self._s.read_ncname("variable name")
        self._s.expect_keyword("in")
        source = self._parse_expr_single()
        self._s.expect_keyword("satisfies")
        condition = self._parse_expr_single()
        return ast.QuantifiedExpr(kind=kind, var=var, source=source,
                                  condition=condition)

    def _parse_if(self) -> ast.IfExpr:
        self._s.expect_keyword("if")
        self._s.expect_symbol("(")
        condition = self._parse_expr()
        self._s.expect_symbol(")")
        self._s.expect_keyword("then")
        then = self._parse_expr_single()
        self._s.expect_keyword("else")
        else_ = self._parse_expr_single()
        return ast.IfExpr(condition=condition, then=then, else_=else_)

    # -- operator precedence ---------------------------------------------------

    def _parse_or(self) -> ast.XExpr:
        left = self._parse_and()
        while self._match_operator_keyword("or"):
            left = ast.OrExpr(left=left, right=self._parse_and())
        return left

    def _parse_and(self) -> ast.XExpr:
        left = self._parse_comparison()
        while self._match_operator_keyword("and"):
            left = ast.AndExpr(left=left, right=self._parse_comparison())
        return left

    def _match_operator_keyword(self, word: str) -> bool:
        """Match a keyword operator, requiring it to be followed by the
        start of an operand (so a bare name is not eaten)."""
        if not self._s.peek_keyword(word):
            return False
        self._s.match_keyword(word)
        return True

    def _parse_comparison(self) -> ast.XExpr:
        left = self._parse_range()
        for op in _VALUE_COMP_OPS:
            if self._s.peek_keyword(op):
                self._s.match_keyword(op)
                return ast.ValueComparison(op=op, left=left,
                                           right=self._parse_range())
        self._s.skip_ws()
        for op in _GENERAL_COMP_OPS:
            if self._s.text.startswith(op, self._s.pos):
                # '<' followed by a name char would be a constructor only
                # at primary position; here it is always a comparison.
                self._s.pos += len(op)
                return ast.GeneralComparison(op=op, left=left,
                                             right=self._parse_range())
        return left

    def _parse_range(self) -> ast.XExpr:
        left = self._parse_additive()
        if self._s.match_keyword("to"):
            return ast.RangeExpr(low=left, high=self._parse_additive())
        return left

    def _parse_additive(self) -> ast.XExpr:
        left = self._parse_multiplicative()
        while True:
            self._s.skip_ws()
            if self._s.match_symbol("+"):
                left = ast.Arithmetic(op="+", left=left,
                                      right=self._parse_multiplicative())
            elif self._s.raw_char() == "-" and not \
                    self._s.text.startswith("->", self._s.pos):
                self._s.pos += 1
                left = ast.Arithmetic(op="-", left=left,
                                      right=self._parse_multiplicative())
            else:
                return left

    def _parse_multiplicative(self) -> ast.XExpr:
        left = self._parse_unary()
        while True:
            if self._s.match_symbol("*"):
                left = ast.Arithmetic(op="*", left=left,
                                      right=self._parse_unary())
            elif self._s.match_keyword("idiv"):
                left = ast.Arithmetic(op="idiv", left=left,
                                      right=self._parse_unary())
            elif self._s.match_keyword("div"):
                left = ast.Arithmetic(op="div", left=left,
                                      right=self._parse_unary())
            elif self._s.match_keyword("mod"):
                left = ast.Arithmetic(op="mod", left=left,
                                      right=self._parse_unary())
            else:
                return left

    def _parse_unary(self) -> ast.XExpr:
        if self._s.match_symbol("-"):
            return ast.UnaryMinus(operand=self._parse_unary())
        self._s.match_symbol("+")
        return self._parse_path()

    # -- paths and primaries ------------------------------------------------

    def _parse_path(self) -> ast.XExpr:
        base = self._parse_primary_with_predicates()
        steps = []
        while True:
            self._s.skip_ws()
            if self._s.raw_char() == "/" and self._s.raw_char(1) != "/":
                self._s.pos += 1
                steps.append(self._parse_step())
            else:
                break
        if steps:
            return ast.PathExpr(base=base, steps=tuple(steps))
        return base

    def _parse_step(self) -> ast.PathStep:
        self._s.skip_ws()
        if self._s.match_symbol("*"):
            name = None
        else:
            name = self._s.read_ncname("a step name")
        predicates = self._parse_predicates()
        return ast.PathStep(name=name, predicates=predicates)

    def _parse_predicates(self) -> tuple[ast.XExpr, ...]:
        predicates = []
        while self._s.match_symbol("["):
            predicates.append(self._parse_expr())
            self._s.expect_symbol("]")
        return tuple(predicates)

    def _parse_primary_with_predicates(self) -> ast.XExpr:
        primary = self._parse_primary()
        predicates = self._parse_predicates()
        if predicates:
            return ast.FilterExpr(base=primary, predicates=predicates)
        return primary

    def _parse_primary(self) -> ast.XExpr:
        self._s.skip_ws()
        ch = self._s.raw_char()
        if not ch:
            raise self._s.error("expected an expression")
        if ch == "$":
            self._s.pos += 1
            return ast.VarRef(name=self._s.read_ncname("variable name"))
        if ch in ('"', "'"):
            return ast.XLiteral(value=self._s.read_string_literal())
        if ch.isdigit() or (ch == "." and (self._s.raw_char(1) or "").isdigit()):
            return self._parse_number()
        if ch == ".":
            self._s.pos += 1
            return ast.ContextItem()
        if ch == "(":
            self._s.pos += 1
            if self._s.match_symbol(")"):
                return ast.SequenceExpr(items=())
            inner = self._parse_expr()
            self._s.expect_symbol(")")
            return inner
        if ch == "<":
            return self._parse_constructor()
        if _NCNAME_RE.match(ch):
            return self._parse_name_expr()
        raise self._s.error(f"unexpected character {ch!r}")

    def _parse_number(self) -> ast.XLiteral:
        match = _NUMBER_RE.match(self._s.text, self._s.pos)
        if not match:
            raise self._s.error("malformed numeric literal")
        self._s.pos = match.end()
        text = match.group(0)
        if match.group(2):
            return ast.XLiteral(value=float(text))
        if "." in text:
            return ast.XLiteral(value=Decimal(text))
        return ast.XLiteral(value=int(text))

    def _parse_name_expr(self) -> ast.XExpr:
        prefix, local = self._s.read_qname()
        self._s.skip_ws()
        if self._s.raw_char() == "(" and not \
                self._s.text.startswith("(:", self._s.pos):
            self._s.pos += 1
            args: list[ast.XExpr] = []
            if not self._s.match_symbol(")"):
                args.append(self._parse_expr_single())
                while self._s.match_symbol(","):
                    args.append(self._parse_expr_single())
                self._s.expect_symbol(")")
            return ast.XFunctionCall(prefix=prefix, local=local,
                                     args=tuple(args))
        if prefix:
            raise self._s.error(
                f"prefixed name {prefix}:{local} must be a function call")
        # A bare name is a child step relative to the context item
        # (valid only inside predicates).
        return ast.PathExpr(base=ast.ContextItem(),
                            steps=(ast.PathStep(name=local),))

    # -- direct constructors --------------------------------------------------

    def _parse_constructor(self) -> ast.ElementConstructor:
        assert self._s.raw_char() == "<"
        self._s.pos += 1
        prefix, local = self._s.read_qname()
        attributes = []
        while True:
            self._s.skip_ws()
            if self._s.text.startswith("/>", self._s.pos):
                self._s.pos += 2
                return ast.ElementConstructor(
                    name=local, prefix=prefix,
                    attributes=tuple(attributes), content=())
            if self._s.raw_char() == ">":
                self._s.pos += 1
                break
            attributes.append(self._parse_attribute())
        content = self._parse_constructor_content(prefix, local)
        return ast.ElementConstructor(name=local, prefix=prefix,
                                      attributes=tuple(attributes),
                                      content=tuple(content))

    def _parse_attribute(self) -> ast.AttributeConstructor:
        aprefix, alocal = self._s.read_qname()
        name = f"{aprefix}:{alocal}" if aprefix else alocal
        self._s.expect_symbol("=")
        self._s.skip_ws()
        quote = self._s.raw_char()
        if quote not in ('"', "'"):
            raise self._s.error("expected a quoted attribute value")
        self._s.pos += 1
        parts: list[str | ast.XExpr] = []
        buffer: list[str] = []
        while True:
            ch = self._s.raw_char()
            if not ch:
                raise self._s.error("unterminated attribute value")
            if ch == quote:
                self._s.pos += 1
                break
            if ch == "{":
                if self._s.raw_char(1) == "{":
                    buffer.append("{")
                    self._s.pos += 2
                    continue
                if buffer:
                    parts.append(unescape("".join(buffer)))
                    buffer.clear()
                self._s.pos += 1
                parts.append(self._parse_expr())
                self._s.expect_symbol("}")
                continue
            if ch == "}" and self._s.raw_char(1) == "}":
                buffer.append("}")
                self._s.pos += 2
                continue
            buffer.append(ch)
            self._s.pos += 1
        if buffer:
            parts.append(unescape("".join(buffer)))
        return ast.AttributeConstructor(name=name, parts=tuple(parts))

    def _parse_constructor_content(self, prefix: str, local: str) \
            -> list[str | ast.XExpr]:
        content: list[str | ast.XExpr] = []
        buffer: list[str] = []

        def flush(boundary: bool) -> None:
            if not buffer:
                return
            text = unescape("".join(buffer))
            buffer.clear()
            # Boundary-space strip: drop whitespace-only runs between tags
            # and enclosed expressions.
            if boundary and not text.strip():
                return
            content.append(text)

        while True:
            ch = self._s.raw_char()
            if not ch:
                raise self._s.error(f"unterminated element <{local}>")
            if ch == "<":
                if self._s.text.startswith("</", self._s.pos):
                    flush(boundary=True)
                    self._s.pos += 2
                    cprefix, clocal = self._s.read_qname()
                    if (cprefix, clocal) != (prefix, local):
                        opened = f"{prefix}:{local}" if prefix else local
                        closed = f"{cprefix}:{clocal}" if cprefix else clocal
                        raise self._s.error(
                            f"mismatched close tag </{closed}> for "
                            f"<{opened}>")
                    self._s.skip_ws()
                    self._s.expect_symbol(">")
                    return content
                flush(boundary=True)
                content.append(self._parse_constructor())
                continue
            if ch == "{":
                if self._s.raw_char(1) == "{":
                    buffer.append("{")
                    self._s.pos += 2
                    continue
                flush(boundary=True)
                self._s.pos += 1
                content.append(self._parse_expr())
                self._s.expect_symbol("}")
                continue
            if ch == "}" and self._s.raw_char(1) == "}":
                buffer.append("}")
                self._s.pos += 2
                continue
            buffer.append(ch)
            self._s.pos += 1


def parse_xquery(text: str) -> ast.Module:
    """Parse XQuery text into a Module."""
    return Parser(text).parse_module()


def parse_xquery_expr(text: str) -> ast.XExpr:
    """Parse a standalone XQuery expression (no prolog)."""
    parser = Parser(text)
    expr = parser._parse_expr()
    if not parser._s.eof():
        raise parser._s.error("unexpected trailing input")
    return expr
