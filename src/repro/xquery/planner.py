"""FLWOR clause planning, shared by both XQuery executors.

The paper delegates "any/all optimizations ... to the XQuery processor"
(section 3.2); this module is that processor's planner, refactored out of
the tree-walking ``Evaluator`` so the closure compiler
(``repro.xquery.compile``) can reuse it. Planning is purely structural —
it rewrites a FLWOR's clause list, never evaluates anything — so one
plan is valid for every evaluation of the query.

Rewrites, in order:

1. **Filter hoisting** — each ``where`` conjunct moves to the earliest
   point at which all the variables it reads are bound (never across a
   group/order boundary).
2. **Let/for fusion** — ``let $x := E for $y in $x`` collapses to
   ``for $y in E`` when ``$x`` is referenced nowhere else. The section-4
   delimited wrapper has exactly this shape (``let $actualQuery := (...)
   for $tokenQuery in $actualQuery``); fusing it lets the streaming
   executor pull rows through the wrapper without materializing the
   inner query's full result.
3. **Hash equi-joins** — a ``for`` followed by where-conjuncts of the
   shape ``keyOf($new) eq keyOf(stream)`` becomes a hash join. Multiple
   such conjuncts on the same new variable fuse into ONE multi-key hash
   join (a composite-key join probes one table with a key tuple instead
   of chaining a single-key join with residual pairwise filters). Only
   the leading prefix of joinable conjuncts fuses, so a non-join guard
   conjunct keeps its evaluation position and its short-circuit
   behavior.

Correctness invariants preserved by the join (see the evaluator's and
compiler's apply sides): NULL (empty) keys never match, cross-category
key comparisons fall back to pairwise evaluation so type errors still
surface, and NaN never matches itself.
"""

from __future__ import annotations

import datetime
from decimal import Decimal
from typing import Optional

from . import ast
from .analysis import free_vars
from .atomic import is_numeric_value


class HashJoinClause:
    """A (for, where-eq...) group replaced by the planner.

    ``keys`` holds one ``(build_key, probe_key, condition)`` triple per
    fused equality conjunct, in conjunct order: *build_key* reads only
    the for clause's new variable, *probe_key* reads only the incoming
    tuple stream (possibly nothing, for a constant selection), and
    *condition* is the original ``eq`` comparison kept for the pairwise
    fallback path.
    """

    __slots__ = ("for_clause", "keys")

    def __init__(self, for_clause: ast.ForClause,
                 keys: tuple[tuple[ast.XExpr, ast.XExpr, ast.XExpr], ...]):
        self.for_clause = for_clause
        self.keys = keys

    # Single-key accessors, kept for the common case and older callers.

    @property
    def build_key(self) -> ast.XExpr:
        return self.keys[0][0]

    @property
    def probe_key(self) -> ast.XExpr:
        return self.keys[0][1]

    @property
    def condition(self) -> ast.XExpr:
        return self.keys[0][2]


def split_conjuncts(condition: ast.XExpr) -> list:
    """Flatten nested ``and`` / ``fn-bea:and3`` conjunctions."""
    if isinstance(condition, ast.AndExpr):
        return (split_conjuncts(condition.left)
                + split_conjuncts(condition.right))
    if isinstance(condition, ast.XFunctionCall) and \
            condition.prefix == "fn-bea" and condition.local == "and3" \
            and len(condition.args) == 2:
        return (split_conjuncts(condition.args[0])
                + split_conjuncts(condition.args[1]))
    return [condition]


def hoist_filters(clauses):
    """Move each where clause to the earliest point at which all of
    its variables are bound.

    A where clause is a pure filter, so it commutes with any for/let
    over variables it does not read: both orders evaluate the same
    condition over the same bindings and drop the same tuples. The
    translator emits all fors before all wheres, so without hoisting
    only the final (for, where) pair of an N-way join would be
    adjacent and hash-joinable.
    """
    # Segments are delimited by group/order clauses: filters never
    # move across those boundaries. Within a segment, every where
    # conjunct attaches to the earliest point at which all the
    # variables it reads (among those this FLWOR declares) are bound.
    declared: set[str] = set()
    for clause in clauses:
        if isinstance(clause, (ast.ForClause, ast.LetClause)):
            declared.add(clause.var)
        elif isinstance(clause, ast.GroupClause):
            declared.add(clause.partition_var)
            declared.update(var for _e, var in clause.keys)

    segments: list[tuple[list, list]] = [([], [])]  # (binders, filters)
    boundaries: list = []
    for clause in clauses:
        if isinstance(clause, ast.WhereClause):
            # Split conjunctions (and / fn-bea:and3): a row passes
            # and3(a, b) exactly when it passes both, so
            # per-conjunct wheres keep the same rows while each
            # conjunct places independently.
            for conjunct in split_conjuncts(clause.condition):
                needed = frozenset(free_vars(conjunct) & declared)
                segments[-1][1].append(
                    (ast.WhereClause(condition=conjunct), needed))
        elif isinstance(clause, (ast.GroupClause, ast.OrderClause)):
            boundaries.append(clause)
            segments.append(([], []))
        else:
            segments[-1][0].append(clause)

    bound: set[str] = set()
    hoisted: list = []
    for index, (binders, filters) in enumerate(segments):
        filters = list(filters)

        def release() -> None:
            remaining = []
            for where, needed in filters:
                if needed <= bound:
                    hoisted.append(where)
                else:
                    remaining.append((where, needed))
            filters[:] = remaining

        release()
        for clause in binders:
            hoisted.append(clause)
            if isinstance(clause, (ast.ForClause, ast.LetClause)):
                bound.add(clause.var)
            release()
        # Anything still pending reads group/partition variables of
        # a later boundary (or is unplaceable); emit it here, in
        # source order, before the boundary clause.
        hoisted.extend(where for where, _n in filters)
        if index < len(boundaries):
            boundary = boundaries[index]
            hoisted.append(boundary)
            if isinstance(boundary, ast.GroupClause):
                bound.add(boundary.partition_var)
                bound.update(var for _e, var in boundary.keys)
    return hoisted


def _fuse_lets(clauses, return_expr: Optional[ast.XExpr]):
    """Rewrite ``let $x := E for $y in $x`` to ``for $y in E`` when $x
    is used nowhere else.

    Sound because the only consumer of the let binding is the for
    clause's source, so inlining E preserves every binding the stream
    produces; it matters because a for source can be iterated lazily
    while a let binding is a materialized sequence.
    """
    if return_expr is None:
        return list(clauses)
    fused: list = []
    index = 0
    clauses = list(clauses)
    while index < len(clauses):
        clause = clauses[index]
        follower = clauses[index + 1] if index + 1 < len(clauses) else None
        if isinstance(clause, ast.LetClause) \
                and isinstance(follower, ast.ForClause) \
                and isinstance(follower.source, ast.VarRef) \
                and follower.source.name == clause.var \
                and follower.var != clause.var \
                and not _used_later(clause.var, clauses[index + 2:],
                                    return_expr):
            fused.append(ast.ForClause(var=follower.var,
                                       source=clause.value))
            index += 2
            continue
        fused.append(clause)
        index += 1
    return fused


def _used_later(name: str, clauses, return_expr: ast.XExpr) -> bool:
    for clause in clauses:
        if isinstance(clause, ast.ForClause):
            if name in free_vars(clause.source):
                return True
            if clause.var == name:  # rebound: later uses see the new one
                return False
        elif isinstance(clause, ast.LetClause):
            if name in free_vars(clause.value):
                return True
            if clause.var == name:
                return False
        elif isinstance(clause, ast.WhereClause):
            if name in free_vars(clause.condition):
                return True
        elif isinstance(clause, ast.GroupClause):
            if clause.source_var == name:
                return True
            if any(name in free_vars(key) for key, _v in clause.keys):
                return True
            if clause.partition_var == name or \
                    name in {var for _e, var in clause.keys}:
                return False
        elif isinstance(clause, ast.OrderClause):
            if any(name in free_vars(spec.key) for spec in clause.specs):
                return True
    return name in free_vars(return_expr)


def plan_clauses(clauses, return_expr: Optional[ast.XExpr] = None):
    """Produce the executable clause list: hoist filters, fuse
    streaming lets, and replace (for, where-eq...) groups with (multi-
    key) hash joins. ``return_expr`` enables the let/for fusion (it is
    needed to prove a let binding is dead after the rewrite)."""
    clauses = _fuse_lets(hoist_filters(clauses), return_expr)
    planned: list = []
    bound_here: set[str] = set()
    index = 0
    while index < len(clauses):
        clause = clauses[index]
        if isinstance(clause, ast.ForClause):
            keys, consumed = _match_join_prefix(clause, clauses,
                                                index + 1, bound_here)
            if keys:
                planned.append(HashJoinClause(clause, tuple(keys)))
                bound_here.add(clause.var)
                index += 1 + consumed
                continue
        if isinstance(clause, (ast.ForClause, ast.LetClause)):
            bound_here.add(clause.var)
        elif isinstance(clause, ast.GroupClause):
            bound_here.add(clause.partition_var)
            bound_here.update(var for _e, var in clause.keys)
        planned.append(clause)
        index += 1
    return planned


def _match_join_prefix(for_clause: ast.ForClause, clauses, start: int,
                       bound_here: set[str]):
    """The maximal prefix of where clauses following *for_clause* that
    fuse into one hash join: ``([(build, probe, cond), ...], consumed)``.

    Only a leading prefix fuses — the first non-joinable where ends the
    scan — so residual conjuncts keep their original position relative
    to the join and their evaluation order among themselves.
    """
    if bound_here & free_vars(for_clause.source):
        return [], 0  # correlated source: hash table is not reusable
    keys: list = []
    index = start
    while index < len(clauses) and \
            isinstance(clauses[index], ast.WhereClause):
        triple = _match_join_conjunct(for_clause,
                                      clauses[index].condition)
        if triple is None:
            break
        keys.append(triple)
        index += 1
    return keys, index - start


def _match_join_conjunct(for_clause: ast.ForClause,
                         condition: ast.XExpr):
    """Match one ``eq`` conjunct splitting cleanly between the for
    clause's new variable and the earlier stream."""
    if not (isinstance(condition, ast.ValueComparison)
            and condition.op == "eq"):
        return None
    var = for_clause.var
    left_free = free_vars(condition.left)
    right_free = free_vars(condition.right)
    if var in left_free and var not in right_free \
            and left_free <= {var}:
        return condition.left, condition.right, condition
    if var in right_free and var not in left_free \
            and right_free <= {var}:
        return condition.right, condition.left, condition
    return None


# ---------------------------------------------------------------------------
# Source pushdown hints (the repro.sources SPI)
# ---------------------------------------------------------------------------


class ParamRef:
    """A pushdown predicate value that resolves from an external
    variable at evaluation time (``WHERE COL = ?`` translates to
    ``$p1``, whose value arrives with each execution)."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"ParamRef({self.name!r})"


#: Operator seen by the column when the comparison is written with the
#: column on the right (``30 lt $c/COL`` means ``COL gt 30``).
_MIRROR = {"eq": "eq", "ne": "ne", "lt": "gt", "le": "ge",
           "gt": "lt", "ge": "le"}


def scan_requests(clauses, return_expr, external_vars: frozenset,
                  is_scan_source) -> dict:
    """Advisory pushdown requests for the planned *clauses*.

    Returns ``{clause_index: ScanRequest}`` for every for/hash-join
    clause whose source *is_scan_source* recognizes as a 0-argument
    data-service scan. Each request carries:

    * the sargable conjuncts over the clause's variable — equality
      keys of a hash join against constants, plus the contiguous
      where-conjuncts the filter hoisting placed right after the
      binder (``COL op literal``, ``fn:empty``/``fn:exists`` for
      IS [NOT] NULL); constants may be literals, ``xs:`` constructor
      casts of literals, or external-variable references (emitted as
      :class:`ParamRef` for late binding);
    * the projection: the set of columns the rest of the FLWOR reads
      through the variable (None when the variable escapes whole).

    Requests are *advisory*: every conjunct stays in the plan as a
    residual filter, so a source honoring a request may only shrink
    the scan, never change the result.
    """
    from ..sources.spi import ScanRequest

    hints: dict = {}
    for index, clause in enumerate(clauses):
        if isinstance(clause, HashJoinClause):
            source, var = clause.for_clause.source, clause.for_clause.var
        elif isinstance(clause, ast.ForClause):
            source, var = clause.source, clause.var
        else:
            continue
        if not is_scan_source(source):
            continue
        predicates: list = []
        if isinstance(clause, HashJoinClause):
            for build, probe, _cond in clause.keys:
                column = _scan_column(build, var)
                if column is None:
                    continue
                ok, value = _constant_value(probe, external_vars)
                if ok:
                    predicates.append(_predicate(column, "eq", value))
        follow = index + 1
        while follow < len(clauses) and \
                isinstance(clauses[follow], ast.WhereClause):
            predicate = _sargable(clauses[follow].condition, var,
                                  external_vars)
            if predicate is not None:
                predicates.append(predicate)
            follow += 1
        columns = _projection(var, clauses, return_expr, index)
        if predicates or columns is not None:
            hints[index] = ScanRequest(columns=columns,
                                       predicates=tuple(predicates))
    return hints


def _predicate(column: str, op: str, value=None):
    from ..sources.spi import Predicate

    return Predicate(column, op, value)


def _scan_column(expr, var: str) -> Optional[str]:
    """COL when *expr* is ``fn:data($var/COL)`` or ``$var/COL``."""
    if isinstance(expr, ast.XFunctionCall) and expr.prefix == "fn" \
            and expr.local == "data" and len(expr.args) == 1:
        expr = expr.args[0]
    if isinstance(expr, ast.PathExpr) \
            and isinstance(expr.base, ast.VarRef) \
            and expr.base.name == var and len(expr.steps) == 1:
        step = expr.steps[0]
        if step.name is not None and not step.predicates:
            return step.name
    return None


def _constant_value(expr, external_vars: frozenset):
    """(ok, value) when *expr* is known per-execution: a literal, an
    ``xs:`` constructor over a literal (``xs:date("2005-03-01")``), or
    an external-variable reference (→ :class:`ParamRef`)."""
    if isinstance(expr, ast.XLiteral):
        return True, expr.value
    if isinstance(expr, ast.XFunctionCall) and expr.prefix == "xs" \
            and len(expr.args) == 1 \
            and isinstance(expr.args[0], ast.XLiteral):
        from ..errors import XQueryError
        from .atomic import cast_to

        try:
            result = cast_to(expr.local, [expr.args[0].value])
        except XQueryError:
            return False, None
        if len(result) == 1:
            return True, result[0]
        return False, None
    if isinstance(expr, ast.VarRef) and expr.name in external_vars:
        return True, ParamRef(expr.name)
    return False, None


def _sargable(condition, var: str, external_vars: frozenset):
    """The :class:`Predicate` for a sargable conjunct, else None."""
    if isinstance(condition, ast.ValueComparison) \
            and condition.op in _MIRROR:
        column = _scan_column(condition.left, var)
        if column is not None:
            ok, value = _constant_value(condition.right, external_vars)
            if ok:
                return _predicate(column, condition.op, value)
        column = _scan_column(condition.right, var)
        if column is not None:
            ok, value = _constant_value(condition.left, external_vars)
            if ok:
                return _predicate(column, _MIRROR[condition.op], value)
        return None
    if isinstance(condition, ast.XFunctionCall) \
            and condition.prefix == "fn" \
            and condition.local in ("empty", "exists") \
            and len(condition.args) == 1:
        column = _scan_column(condition.args[0], var)
        if column is not None:
            return _predicate(column, "isnull" if condition.local ==
                              "empty" else "notnull")
    return None


def _projection(var: str, clauses, return_expr,
                scan_index: int) -> Optional[tuple[str, ...]]:
    """The columns the FLWOR reads through *var*, or None when the
    variable is used whole (or not at all) and the scan must stay
    full-width."""
    exprs: list = []
    for index, clause in enumerate(clauses):
        if isinstance(clause, ast.ForClause):
            if index != scan_index:
                exprs.append(clause.source)
        elif isinstance(clause, HashJoinClause):
            if index != scan_index:
                exprs.append(clause.for_clause.source)
            for build, probe, cond in clause.keys:
                exprs.extend((build, probe, cond))
        elif isinstance(clause, ast.LetClause):
            exprs.append(clause.value)
        elif isinstance(clause, ast.WhereClause):
            exprs.append(clause.condition)
        elif isinstance(clause, ast.GroupClause):
            if clause.source_var == var:
                return None  # whole rows flow into the partition
            exprs.extend(key for key, _v in clause.keys)
        elif isinstance(clause, ast.OrderClause):
            exprs.extend(spec.key for spec in clause.specs)
    if return_expr is not None:
        exprs.append(return_expr)
    used = _columns_used(var, exprs)
    if not used:
        return None
    return tuple(sorted(used))


def _columns_used(var: str, exprs) -> Optional[set]:
    """Column names reached via ``$var/COL`` paths across *exprs*;
    None as soon as any other use of *var* appears (whole-element
    use, wildcard/predicated step, shadow-prone nesting)."""
    used: set = set()

    def walk(node) -> bool:
        if isinstance(node, ast.PathExpr) \
                and isinstance(node.base, ast.VarRef) \
                and node.base.name == var:
            if not node.steps:
                return False
            first = node.steps[0]
            if first.name is None or first.predicates:
                return False
            used.add(first.name)
            for step in node.steps[1:]:
                for predicate in step.predicates:
                    if not walk(predicate):
                        return False
            return True
        if isinstance(node, ast.VarRef):
            return node.name != var
        for child in _iter_children(node):
            if not walk(child):
                return False
        return True

    for expr in exprs:
        if not walk(expr):
            return None
    return used


def _iter_children(node):
    """Yield the direct sub-expressions of *node* (mirrors the node
    kinds handled by ``analysis._collect``)."""
    if isinstance(node, ast.FLWOR):
        for clause in node.clauses:
            if isinstance(clause, ast.ForClause):
                yield clause.source
            elif isinstance(clause, ast.LetClause):
                yield clause.value
            elif isinstance(clause, ast.WhereClause):
                yield clause.condition
            elif isinstance(clause, ast.GroupClause):
                for key_expr, _v in clause.keys:
                    yield key_expr
            elif isinstance(clause, ast.OrderClause):
                for spec in clause.specs:
                    yield spec.key
        yield node.return_expr
    elif isinstance(node, ast.QuantifiedExpr):
        yield node.source
        yield node.condition
    elif isinstance(node, ast.SequenceExpr):
        yield from node.items
    elif isinstance(node, ast.IfExpr):
        yield node.condition
        yield node.then
        yield node.else_
    elif isinstance(node, (ast.OrExpr, ast.AndExpr, ast.ValueComparison,
                           ast.GeneralComparison, ast.Arithmetic)):
        yield node.left
        yield node.right
    elif isinstance(node, ast.RangeExpr):
        yield node.low
        yield node.high
    elif isinstance(node, ast.UnaryMinus):
        yield node.operand
    elif isinstance(node, ast.PathExpr):
        yield node.base
        for step in node.steps:
            yield from step.predicates
    elif isinstance(node, ast.FilterExpr):
        yield node.base
        yield from node.predicates
    elif isinstance(node, ast.XFunctionCall):
        yield from node.args
    elif isinstance(node, ast.ElementConstructor):
        for attr in node.attributes:
            for part in attr.parts:
                if not isinstance(part, str):
                    yield part
        for part in node.content:
            if not isinstance(part, str):
                yield part


# ---------------------------------------------------------------------------
# Runtime key canonicalization (shared by both executors' join/group)
# ---------------------------------------------------------------------------


def join_key(value) -> tuple[Optional[str], object]:
    """(comparison category, canonical hash key) for an eq join key.

    Categories mirror ``compare_values``: values that eq would refuse to
    compare get different categories; values eq treats as equal get the
    same canonical key. UntypedAtomic follows the value-comparison rule
    (cast to string). Returns (None, None) for uncanonicalizable types.
    """
    if isinstance(value, bool):
        return "b", ("b", value)
    if is_numeric_value(value):
        if isinstance(value, float):
            if value != value:  # NaN never equals anything
                return "n", ("nan", id(object()))
            dec = Decimal(repr(value))
        else:
            dec = Decimal(value)
        return "n", ("n", dec.normalize())
    if isinstance(value, str):  # includes UntypedAtomic
        return "s", ("s", str(value))
    if isinstance(value, datetime.datetime):
        return "dt", ("dt", value)
    if isinstance(value, datetime.date):
        return "d", ("d", value)
    if isinstance(value, datetime.time):
        return "t", ("t", value)
    return None, None


def grouping_key(value) -> tuple:
    """Canonical hashable form of a group-by key value.

    NULL (None) forms its own group, as SQL GROUP BY requires. Numeric
    values of different representations (2, 2.0, Decimal("2")) group
    together via Decimal canonicalization.
    """
    from ..errors import XQueryTypeError

    if value is None:
        return ("null",)
    if isinstance(value, bool):
        return ("b", value)
    if is_numeric_value(value):
        if isinstance(value, float):
            dec = Decimal(repr(value))
        else:
            dec = Decimal(value)
        return ("n", dec.normalize())
    if isinstance(value, str):
        return ("s", str(value))
    if isinstance(value, datetime.datetime):
        return ("dt", value.isoformat())
    if isinstance(value, datetime.date):
        return ("d", value.isoformat())
    if isinstance(value, datetime.time):
        return ("t", value.isoformat())
    raise XQueryTypeError(
        f"cannot group by values of type {type(value).__name__}",
        code="XPTY0004")
