"""FLWOR clause planning, shared by both XQuery executors.

The paper delegates "any/all optimizations ... to the XQuery processor"
(section 3.2); this module is that processor's planner, refactored out of
the tree-walking ``Evaluator`` so the closure compiler
(``repro.xquery.compile``) can reuse it. Planning is purely structural —
it rewrites a FLWOR's clause list, never evaluates anything — so one
plan is valid for every evaluation of the query.

Rewrites, in order:

1. **Filter hoisting** — each ``where`` conjunct moves to the earliest
   point at which all the variables it reads are bound (never across a
   group/order boundary).
2. **Let/for fusion** — ``let $x := E for $y in $x`` collapses to
   ``for $y in E`` when ``$x`` is referenced nowhere else. The section-4
   delimited wrapper has exactly this shape (``let $actualQuery := (...)
   for $tokenQuery in $actualQuery``); fusing it lets the streaming
   executor pull rows through the wrapper without materializing the
   inner query's full result.
3. **Hash equi-joins** — a ``for`` followed by where-conjuncts of the
   shape ``keyOf($new) eq keyOf(stream)`` becomes a hash join. Multiple
   such conjuncts on the same new variable fuse into ONE multi-key hash
   join (a composite-key join probes one table with a key tuple instead
   of chaining a single-key join with residual pairwise filters). Only
   the leading prefix of joinable conjuncts fuses, so a non-join guard
   conjunct keeps its evaluation position and its short-circuit
   behavior.

Correctness invariants preserved by the join (see the evaluator's and
compiler's apply sides): NULL (empty) keys never match, cross-category
key comparisons fall back to pairwise evaluation so type errors still
surface, and NaN never matches itself.
"""

from __future__ import annotations

import datetime
from dataclasses import replace
from decimal import Decimal
from typing import Optional

from . import ast
from .analysis import free_vars
from .atomic import is_numeric_value


class HashJoinClause:
    """A (for, where-eq...) group replaced by the planner.

    ``keys`` holds one ``(build_key, probe_key, condition)`` triple per
    fused equality conjunct, in conjunct order: *build_key* reads only
    the for clause's new variable, *probe_key* reads only the incoming
    tuple stream (possibly nothing, for a constant selection), and
    *condition* is the original ``eq`` comparison kept for the pairwise
    fallback path.

    ``filters`` (cost-based planning only) are conjuncts reading only
    the join variable, hoisted into the build phase: each build item is
    filtered once before entering the hash table instead of once per
    matching output tuple. Safe because such a conjunct evaluates
    identically on a build item and on any output frame binding it.
    """

    __slots__ = ("for_clause", "keys", "filters")

    def __init__(self, for_clause: ast.ForClause,
                 keys: tuple[tuple[ast.XExpr, ast.XExpr, ast.XExpr], ...],
                 filters: tuple[ast.XExpr, ...] = ()):
        self.for_clause = for_clause
        self.keys = keys
        self.filters = filters

    # Single-key accessors, kept for the common case and older callers.

    @property
    def build_key(self) -> ast.XExpr:
        return self.keys[0][0]

    @property
    def probe_key(self) -> ast.XExpr:
        return self.keys[0][1]

    @property
    def condition(self) -> ast.XExpr:
        return self.keys[0][2]


def split_conjuncts(condition: ast.XExpr) -> list:
    """Flatten nested ``and`` / ``fn-bea:and3`` conjunctions."""
    if isinstance(condition, ast.AndExpr):
        return (split_conjuncts(condition.left)
                + split_conjuncts(condition.right))
    if isinstance(condition, ast.XFunctionCall) and \
            condition.prefix == "fn-bea" and condition.local == "and3" \
            and len(condition.args) == 2:
        return (split_conjuncts(condition.args[0])
                + split_conjuncts(condition.args[1]))
    return [condition]


def hoist_filters(clauses):
    """Move each where clause to the earliest point at which all of
    its variables are bound.

    A where clause is a pure filter, so it commutes with any for/let
    over variables it does not read: both orders evaluate the same
    condition over the same bindings and drop the same tuples. The
    translator emits all fors before all wheres, so without hoisting
    only the final (for, where) pair of an N-way join would be
    adjacent and hash-joinable.
    """
    # Segments are delimited by group/order clauses: filters never
    # move across those boundaries. Within a segment, every where
    # conjunct attaches to the earliest point at which all the
    # variables it reads (among those this FLWOR declares) are bound.
    declared: set[str] = set()
    for clause in clauses:
        if isinstance(clause, (ast.ForClause, ast.LetClause)):
            declared.add(clause.var)
        elif isinstance(clause, ast.GroupClause):
            declared.add(clause.partition_var)
            declared.update(var for _e, var in clause.keys)

    segments: list[tuple[list, list]] = [([], [])]  # (binders, filters)
    boundaries: list = []
    for clause in clauses:
        if isinstance(clause, ast.WhereClause):
            # Split conjunctions (and / fn-bea:and3): a row passes
            # and3(a, b) exactly when it passes both, so
            # per-conjunct wheres keep the same rows while each
            # conjunct places independently.
            for conjunct in split_conjuncts(clause.condition):
                needed = frozenset(free_vars(conjunct) & declared)
                segments[-1][1].append(
                    (ast.WhereClause(condition=conjunct), needed))
        elif isinstance(clause, (ast.GroupClause, ast.OrderClause)):
            boundaries.append(clause)
            segments.append(([], []))
        else:
            segments[-1][0].append(clause)

    bound: set[str] = set()
    hoisted: list = []
    for index, (binders, filters) in enumerate(segments):
        filters = list(filters)

        def release() -> None:
            remaining = []
            for where, needed in filters:
                if needed <= bound:
                    hoisted.append(where)
                else:
                    remaining.append((where, needed))
            filters[:] = remaining

        release()
        for clause in binders:
            hoisted.append(clause)
            if isinstance(clause, (ast.ForClause, ast.LetClause)):
                bound.add(clause.var)
            release()
        # Anything still pending reads group/partition variables of
        # a later boundary (or is unplaceable); emit it here, in
        # source order, before the boundary clause.
        hoisted.extend(where for where, _n in filters)
        if index < len(boundaries):
            boundary = boundaries[index]
            hoisted.append(boundary)
            if isinstance(boundary, ast.GroupClause):
                bound.add(boundary.partition_var)
                bound.update(var for _e, var in boundary.keys)
    return hoisted


def _fuse_lets(clauses, return_expr: Optional[ast.XExpr]):
    """Rewrite ``let $x := E for $y in $x`` to ``for $y in E`` when $x
    is used nowhere else.

    Sound because the only consumer of the let binding is the for
    clause's source, so inlining E preserves every binding the stream
    produces; it matters because a for source can be iterated lazily
    while a let binding is a materialized sequence.
    """
    if return_expr is None:
        return list(clauses)
    fused: list = []
    index = 0
    clauses = list(clauses)
    while index < len(clauses):
        clause = clauses[index]
        follower = clauses[index + 1] if index + 1 < len(clauses) else None
        if isinstance(clause, ast.LetClause) \
                and isinstance(follower, ast.ForClause) \
                and isinstance(follower.source, ast.VarRef) \
                and follower.source.name == clause.var \
                and follower.var != clause.var \
                and not _used_later(clause.var, clauses[index + 2:],
                                    return_expr):
            fused.append(ast.ForClause(var=follower.var,
                                       source=clause.value))
            index += 2
            continue
        fused.append(clause)
        index += 1
    return fused


def _used_later(name: str, clauses, return_expr: ast.XExpr) -> bool:
    for clause in clauses:
        if isinstance(clause, ast.ForClause):
            if name in free_vars(clause.source):
                return True
            if clause.var == name:  # rebound: later uses see the new one
                return False
        elif isinstance(clause, ast.LetClause):
            if name in free_vars(clause.value):
                return True
            if clause.var == name:
                return False
        elif isinstance(clause, ast.WhereClause):
            if name in free_vars(clause.condition):
                return True
        elif isinstance(clause, ast.GroupClause):
            if clause.source_var == name:
                return True
            if any(name in free_vars(key) for key, _v in clause.keys):
                return True
            if clause.partition_var == name or \
                    name in {var for _e, var in clause.keys}:
                return False
        elif isinstance(clause, ast.OrderClause):
            if any(name in free_vars(spec.key) for spec in clause.specs):
                return True
    return name in free_vars(return_expr)


def plan_clauses(clauses, return_expr: Optional[ast.XExpr] = None,
                 estimator: "Optional[CostEstimator]" = None,
                 external_vars: frozenset = frozenset()):
    """Produce the executable clause list: hoist filters, fuse
    streaming lets, and replace (for, where-eq...) groups with (multi-
    key) hash joins. ``return_expr`` enables the let/for fusion (it is
    needed to prove a let binding is dead after the rewrite).

    With an *estimator* (cost-based planning), three statistics-driven
    rewrites run as well: independent for clauses reorder greedily
    (smallest estimated input first, original tuple order restored via
    :class:`RestoreOrderClause` ordinals), single-variable conjuncts
    move into hash-join build filters, and residual conjunct runs sort
    most-selective-first. Without an estimator the output is exactly
    the pre-cost plan — the tree-walking evaluator plans that way and
    stays the differential oracle.
    """
    clauses = _fuse_lets(hoist_filters(clauses), return_expr)
    declared = _declared_vars(clauses)
    if estimator is not None:
        clauses = _reorder_clauses(clauses, estimator, declared,
                                   external_vars)
    planned: list = []
    bound_here: set[str] = set()
    index = 0
    while index < len(clauses):
        clause = clauses[index]
        if isinstance(clause, ast.ForClause):
            keys, consumed = _match_join_prefix(clause, clauses,
                                                index + 1, bound_here)
            if keys:
                planned.append(HashJoinClause(clause, tuple(keys)))
                bound_here.add(clause.var)
                index += 1 + consumed
                continue
        if isinstance(clause, (ast.ForClause, ast.LetClause)):
            bound_here.add(clause.var)
        elif isinstance(clause, ast.GroupClause):
            bound_here.add(clause.partition_var)
            bound_here.update(var for _e, var in clause.keys)
        planned.append(clause)
        index += 1
    if estimator is not None:
        planned = _absorb_join_filters(planned, declared, estimator,
                                       external_vars)
        planned = _order_conjuncts(planned, estimator, external_vars)
    return planned


def _declared_vars(clauses) -> set[str]:
    declared: set[str] = set()
    for clause in clauses:
        if isinstance(clause, (ast.ForClause, ast.LetClause)):
            declared.add(clause.var)
        elif isinstance(clause, ast.GroupClause):
            declared.add(clause.partition_var)
            declared.update(var for _e, var in clause.keys)
    return declared


def _match_join_prefix(for_clause: ast.ForClause, clauses, start: int,
                       bound_here: set[str]):
    """The maximal prefix of where clauses following *for_clause* that
    fuse into one hash join: ``([(build, probe, cond), ...], consumed)``.

    Only a leading prefix fuses — the first non-joinable where ends the
    scan — so residual conjuncts keep their original position relative
    to the join and their evaluation order among themselves.
    """
    if bound_here & free_vars(for_clause.source):
        return [], 0  # correlated source: hash table is not reusable
    keys: list = []
    index = start
    while index < len(clauses) and \
            isinstance(clauses[index], ast.WhereClause):
        triple = _match_join_conjunct(for_clause,
                                      clauses[index].condition)
        if triple is None:
            break
        keys.append(triple)
        index += 1
    return keys, index - start


def _match_join_conjunct(for_clause: ast.ForClause,
                         condition: ast.XExpr):
    """Match one ``eq`` conjunct splitting cleanly between the for
    clause's new variable and the earlier stream."""
    if not (isinstance(condition, ast.ValueComparison)
            and condition.op == "eq"):
        return None
    var = for_clause.var
    left_free = free_vars(condition.left)
    right_free = free_vars(condition.right)
    if var in left_free and var not in right_free \
            and left_free <= {var}:
        return condition.left, condition.right, condition
    if var in right_free and var not in left_free \
            and right_free <= {var}:
        return condition.right, condition.left, condition
    return None


# ---------------------------------------------------------------------------
# Cost-based planning (statistics-driven, PR 5)
# ---------------------------------------------------------------------------

#: Frames produced by a reordered for clause also bind the item's
#: position in the binding sequence under this reserved-prefix key
#: (invisible to queries, like the lifecycle context's "\x00" key);
#: a RestoreOrderClause sorts by those ordinals to put the stream back
#: into original FLWOR order.
ORDINAL_PREFIX = "\x00ord:"


def ordinal_key(var: str) -> str:
    return ORDINAL_PREFIX + var


class RestoreOrderClause:
    """Planner-emitted pipeline breaker that undoes a cost-based for
    reorder: sorts the frames by the ordinal tuple of ``vars`` (the for
    variables in their ORIGINAL clause order). Nested-loop iteration
    emits frames in lexicographic ordinal order, so the sort restores
    the pre-reorder stream byte-for-byte regardless of how wrong the
    statistics were.
    """

    __slots__ = ("vars",)

    def __init__(self, vars: tuple[str, ...]):
        self.vars = tuple(vars)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"RestoreOrderClause({self.vars!r})"


#: Selinger-style default selectivities, used when statistics cannot
#: price a conjunct (unknown column, unhashable domain, ParamRef).
DEFAULT_SELECTIVITY = {
    "eq": 0.1, "ne": 0.9, "lt": 0.3, "le": 0.3, "gt": 0.3, "ge": 0.3,
    "in": 0.2, "isnull": 0.1, "notnull": 0.9,
}

#: A reorder must beat the original order's estimated cost by this
#: factor before it is applied: the RestoreOrderClause sort is not free
#: and statistics are estimates, so near-ties keep the SQL text's order.
REORDER_HYSTERESIS = 1.2


class CostEstimator:
    """Cardinality estimation over source statistics.

    *source_statistics* maps a for-clause source expression to a
    ``TableStatistics`` (or None when the source is not a statistics-
    bearing scan); the compiler wires it to the runtime's version-
    guarded statistics cache. Lookups are memoized per planning pass
    and failures degrade to "no statistics" — costing must never turn
    a plannable query into an error.

    ``pushdown`` tells the conjunct-ordering rewrite that sargable
    conjuncts are also carved off as scan hints (so the residual copy
    is expected to pass almost everything and sorts last).
    """

    def __init__(self, source_statistics, pushdown: bool = False):
        self._source_statistics = source_statistics
        self.pushdown = pushdown
        self._cache: dict[int, object] = {}

    def table_stats(self, source: ast.XExpr):
        key = id(source)
        if key not in self._cache:
            try:
                self._cache[key] = self._source_statistics(source)
            except Exception:
                self._cache[key] = None
        return self._cache[key]


def _as_float(value) -> Optional[float]:
    """Map an orderable domain value onto the real line for range
    interpolation (day resolution for dates is plenty for estimates)."""
    if isinstance(value, bool) or value is None:
        return None
    if isinstance(value, (int, float, Decimal)):
        return float(value)
    if isinstance(value, datetime.datetime):
        return float(value.toordinal()) \
            + (value.hour * 3600 + value.minute * 60 + value.second) / 86400
    if isinstance(value, datetime.date):
        return float(value.toordinal())
    if isinstance(value, datetime.time):
        return value.hour * 3600 + value.minute * 60 + value.second \
            + value.microsecond / 1e6
    return None


def predicate_selectivity(predicate, stats) -> float:
    """Estimated pass fraction of one sargable conjunct, from *stats*
    (a ``TableStatistics``) when they can price it, else a default."""
    op = predicate.op
    column = stats.column(predicate.column) if stats is not None else None
    default = DEFAULT_SELECTIVITY.get(op, 0.5)
    if column is None or isinstance(predicate.value, ParamRef):
        return default
    if op == "isnull":
        return column.null_fraction
    if op == "notnull":
        return 1.0 - column.null_fraction
    non_null = 1.0 - column.null_fraction
    ndv = column.ndv
    if op == "eq":
        return non_null / ndv if ndv else default
    if op == "in":
        width = (len(predicate.value)
                 if isinstance(predicate.value, (tuple, list)) else 1)
        return min(1.0, non_null * width / ndv) if ndv else default
    if op == "ne":
        return non_null * (1.0 - 1.0 / ndv) if ndv else default
    low = _as_float(column.low)
    high = _as_float(column.high)
    value = _as_float(predicate.value)
    if low is None or high is None or value is None:
        return default
    if high <= low:  # single-valued (or unknown-span) domain
        if op in ("lt", "gt"):
            return non_null if (value > low if op == "lt"
                                else value < low) else 0.0
        return non_null if (value >= low if op == "le"
                            else value <= low) else 0.0
    span = high - low
    if op in ("lt", "le"):
        fraction = (value - low) / span
    else:
        fraction = (high - value) / span
    return non_null * min(1.0, max(0.0, fraction))


def _shape_selectivity(condition) -> float:
    """Default selectivity for a conjunct statistics cannot price,
    keyed on its syntactic shape."""
    if isinstance(condition, ast.ValueComparison):
        return DEFAULT_SELECTIVITY.get(condition.op, 0.5)
    if isinstance(condition, ast.XFunctionCall):
        if condition.prefix == "fn" and condition.local == "empty":
            return DEFAULT_SELECTIVITY["isnull"]
        if condition.prefix == "fn" and condition.local == "exists":
            return DEFAULT_SELECTIVITY["notnull"]
        if condition.prefix == "fn-bea" and condition.local == "in3":
            return DEFAULT_SELECTIVITY["in"]
    return 0.5


def conjunct_selectivity(condition, var: str, stats,
                         external_vars: frozenset) -> float:
    """Selectivity of *condition* as a filter over *var*'s rows."""
    predicate = _sargable(condition, var, external_vars)
    if predicate is not None:
        return predicate_selectivity(predicate, stats)
    return _shape_selectivity(condition)


def _column_ndv(stats, column: Optional[str]) -> int:
    if stats is None or column is None:
        return 0
    col = stats.column(column)
    return col.ndv if col is not None else 0


class _Unit:
    """One reorderable binder: a for/let clause plus the conjuncts
    local to its variable (which travel with it)."""

    __slots__ = ("clause", "var", "is_for", "pos", "local", "deps",
                 "stats", "rows", "sel")

    def __init__(self, clause, pos: int):
        self.clause = clause
        self.var = clause.var
        self.is_for = isinstance(clause, ast.ForClause)
        self.pos = pos
        self.local: list = []       # [(pos, WhereClause)]
        self.deps: frozenset = frozenset()
        self.stats = None
        self.rows: Optional[float] = None
        self.sel = 1.0


class _Floating:
    """A conjunct referencing two or more of the run's binders; it
    places after the last binder it needs in whatever order is chosen
    (exactly where filter hoisting would have put it)."""

    __slots__ = ("pos", "where", "needs", "sel", "applied")

    def __init__(self, pos: int, where, needs: frozenset, sel: float):
        self.pos = pos
        self.where = where
        self.needs = needs
        self.sel = sel
        self.applied = False


def _reorder_clauses(clauses, estimator: CostEstimator,
                     declared: set[str], external_vars: frozenset):
    """Greedy smallest-first reorder of independent for clauses, run by
    run (a run is a maximal for/let/where stretch; group/order clauses
    are hard boundaries)."""
    out: list = []
    run: list = []
    bound: set[str] = set()

    def flush() -> None:
        nonlocal run
        if run:
            out.extend(_reorder_run(run, estimator, declared, set(bound),
                                    external_vars))
            for clause in run:
                if isinstance(clause, (ast.ForClause, ast.LetClause)):
                    bound.add(clause.var)
            run = []

    for clause in clauses:
        if isinstance(clause, (ast.ForClause, ast.LetClause,
                               ast.WhereClause)):
            run.append(clause)
        else:
            flush()
            out.append(clause)
            if isinstance(clause, ast.GroupClause):
                bound.add(clause.partition_var)
                bound.update(var for _e, var in clause.keys)
    flush()
    return out


def _join_eq_selectivity(condition, needs: frozenset, units_by_var: dict,
                         external_vars: frozenset) -> float:
    """Selectivity of a floating conjunct; equi-join conjuncts price as
    ``1/max(ndv)`` over the columns they connect (Selinger)."""
    if isinstance(condition, ast.ValueComparison) and condition.op == "eq":
        ndvs = []
        for side in (condition.left, condition.right):
            for var in needs:
                column = _scan_column(side, var)
                if column is not None:
                    unit = units_by_var.get(var)
                    ndvs.append(_column_ndv(
                        unit.stats if unit is not None else None, column))
                    break
        known = [n for n in ndvs if n]
        if known:
            return 1.0 / max(known)
        return DEFAULT_SELECTIVITY["eq"]
    return _shape_selectivity(condition)


def _simulate_cost(order, floating) -> float:
    """Cost of placing *order*'s units: sum of per-step intermediate
    cardinalities plus each for clause's scan (build) cost."""
    card = 1.0
    cost = 0.0
    placed: set[str] = set()
    applied: set[int] = set()
    for unit in order:
        placed.add(unit.var)
        if unit.is_for:
            card *= unit.rows * unit.sel
            cost += unit.rows
        for index, floater in enumerate(floating):
            if index not in applied and floater.needs <= placed:
                card *= floater.sel
                applied.add(index)
        cost += card
    return cost


def _reorder_run(run, estimator: CostEstimator, declared: set[str],
                 outer_bound: set[str], external_vars: frozenset):
    """Reorder one for/let/where run, or return it unchanged when the
    rewrite is illegal (correlation, shadowing, missing statistics) or
    not clearly profitable."""
    binder_vars = [c.var for c in run
                   if isinstance(c, (ast.ForClause, ast.LetClause))]
    for_count = sum(1 for c in run if isinstance(c, ast.ForClause))
    if for_count < 2 or len(set(binder_vars)) != len(binder_vars):
        return run
    run_vars = set(binder_vars)

    units: list[_Unit] = []
    units_by_var: dict[str, _Unit] = {}
    prefix: list = []    # wheres before any binder (stay first)
    tail: list = []      # wheres that must stay at the run's end
    floating: list[_Floating] = []
    current: Optional[_Unit] = None
    bound_in_run: set[str] = set()

    for pos, clause in enumerate(run):
        if isinstance(clause, (ast.ForClause, ast.LetClause)):
            unit = _Unit(clause, pos)
            source = clause.source if unit.is_for else clause.value
            unit.deps = frozenset(free_vars(source) & run_vars)
            if unit.is_for:
                if free_vars(source) & declared:
                    return run  # correlated for: keep the written order
                unit.stats = estimator.table_stats(source)
                if unit.stats is None or unit.stats.row_count is None:
                    return run  # cost model needs every for estimated
                unit.rows = float(unit.stats.row_count)
            units.append(unit)
            units_by_var[unit.var] = unit
            current = unit
            bound_in_run.add(clause.var)
            continue
        needed = frozenset(free_vars(clause.condition) & declared)
        if not needed <= (outer_bound | bound_in_run):
            tail.append(clause)  # reads later-bound vars; do not move
            continue
        run_deps = needed & run_vars
        if len(run_deps) >= 2:
            floating.append(_Floating(pos, clause, run_deps, 1.0))
        elif len(run_deps) == 1:
            units_by_var[next(iter(run_deps))].local.append((pos, clause))
        elif current is None:
            prefix.append(clause)
        else:
            current.local.append((pos, clause))

    for floater in floating:
        floater.sel = _join_eq_selectivity(
            floater.where.condition, floater.needs, units_by_var,
            external_vars)
    for unit in units:
        if unit.is_for:
            for _pos, where in unit.local:
                unit.sel *= conjunct_selectivity(
                    where.condition, unit.var, unit.stats, external_vars)

    # Greedy placement: lets go as soon as their dependencies are
    # bound (preserving their relative order); among ready fors, pick
    # the one minimizing the resulting intermediate cardinality.
    lets = [u for u in units if not u.is_for]
    fors = [u for u in units if u.is_for]
    order: list[_Unit] = []
    placed: set[str] = set()
    applied: set[int] = set()
    card = 1.0
    let_index = 0
    remaining = list(fors)

    def place(unit: _Unit) -> None:
        nonlocal card
        placed.add(unit.var)
        if unit.is_for:
            card *= unit.rows * unit.sel
        for index, floater in enumerate(floating):
            if index not in applied and floater.needs <= placed:
                card *= floater.sel
                applied.add(index)
        order.append(unit)

    while let_index < len(lets) or remaining:
        progressed = False
        while let_index < len(lets) \
                and lets[let_index].deps <= placed:
            place(lets[let_index])
            let_index += 1
            progressed = True
        if not remaining:
            if let_index < len(lets):
                return run  # a let is stuck (shadowed dep); bail out
            break
        best = None
        best_card = None
        for unit in remaining:
            trial = placed | {unit.var}
            trial_card = card * unit.rows * unit.sel
            for index, floater in enumerate(floating):
                if index not in applied and floater.needs <= trial:
                    trial_card *= floater.sel
            if best is None or trial_card < best_card \
                    or (trial_card == best_card and unit.pos < best.pos):
                best, best_card = unit, trial_card
        remaining.remove(best)
        place(best)
        progressed = True
        if not progressed:  # pragma: no cover - defensive
            return run

    original_cost = _simulate_cost(units, floating)
    chosen_cost = _simulate_cost(order, floating)
    if original_cost <= chosen_cost * REORDER_HYSTERESIS:
        return run

    # Emit: prefix, then each unit with its now-placeable conjuncts —
    # eq comparisons first so the join-fusion pass sees a fusable
    # prefix — then the pinned tail, then the order-restoring sort.
    emitted: list = list(prefix)
    placed = set()
    pending_floats = list(floating)
    for unit in order:
        emitted.append(unit.clause)
        placed.add(unit.var)
        ready: list = list(unit.local)
        for floater in list(pending_floats):
            if floater.needs <= placed:
                ready.append((floater.pos, floater.where))
                pending_floats.remove(floater)
        ready.sort(key=lambda entry: entry[0])
        eqs = [w for _p, w in ready
               if isinstance(w.condition, ast.ValueComparison)
               and w.condition.op == "eq"]
        rest = [w for _p, w in ready
                if not (isinstance(w.condition, ast.ValueComparison)
                        and w.condition.op == "eq")]
        emitted.extend(eqs)
        emitted.extend(rest)
    emitted.extend(where for _p, where in
                   sorted(((f.pos, f.where) for f in pending_floats)))
    emitted.extend(tail)
    original_for_vars = tuple(u.var for u in units if u.is_for)
    emitted_for_vars = tuple(u.var for u in order if u.is_for)
    if emitted_for_vars != original_for_vars:
        emitted.append(RestoreOrderClause(original_for_vars))
    return emitted


def _absorb_join_filters(planned, declared: set[str],
                         estimator: CostEstimator,
                         external_vars: frozenset):
    """Move residual conjuncts that read only a hash join's variable
    into the join's build filter — each build item is then tested once
    instead of once per matching output tuple — when the build side is
    estimated no larger than the join's output (or sizes are unknown)."""
    out: list = []
    card: Optional[float] = 1.0
    index = 0
    while index < len(planned):
        clause = planned[index]
        if not isinstance(clause, HashJoinClause):
            out.append(clause)
            card = _advance_estimate(card, clause, estimator,
                                     external_vars, {})
            index += 1
            continue
        var = clause.for_clause.var
        stats = estimator.table_stats(clause.for_clause.source)
        rows = float(stats.row_count) if stats is not None else None
        matched_card = None
        if card is not None and rows is not None:
            matched_card = card * rows
            for build, probe, _cond in clause.keys:
                ndv = _column_ndv(stats, _scan_column(build, var))
                matched_card *= (1.0 / ndv) if ndv \
                    else DEFAULT_SELECTIVITY["eq"]
        absorb = (matched_card is None or rows is None
                  or rows <= matched_card)
        filters = list(clause.filters)
        kept: list = []
        follow = index + 1
        while follow < len(planned) \
                and isinstance(planned[follow], ast.WhereClause):
            condition = planned[follow].condition
            if absorb and (free_vars(condition) & declared) <= {var}:
                filters.append(condition)
            else:
                kept.append(planned[follow])
            follow += 1
        if len(filters) > len(clause.filters):
            clause = HashJoinClause(clause.for_clause, clause.keys,
                                    tuple(filters))
        out.append(clause)
        out.extend(kept)
        card = _advance_estimate(card, clause, estimator, external_vars,
                                 {})
        for where in kept:
            card = _advance_estimate(card, where, estimator,
                                     external_vars, {})
        index = follow
    return out


def _order_conjuncts(planned, estimator: CostEstimator,
                     external_vars: frozenset):
    """Stable-sort each contiguous run of residual where clauses most-
    selective-first; conjuncts already carved off as pushdown hints
    sort last (the source is expected to have applied them)."""
    var_stats: dict[str, object] = {}
    for clause in planned:
        if isinstance(clause, ast.ForClause):
            var_stats[clause.var] = estimator.table_stats(clause.source)
        elif isinstance(clause, HashJoinClause):
            var_stats[clause.for_clause.var] = \
                estimator.table_stats(clause.for_clause.source)

    def ordering_key(where) -> float:
        condition = where.condition
        for var, stats in var_stats.items():
            if stats is None:
                continue
            predicate = _sargable(condition, var, external_vars)
            if predicate is not None:
                if estimator.pushdown:
                    return 1.0  # carved off: the residual passes ~all
                return predicate_selectivity(predicate, stats)
        return _shape_selectivity(condition)

    out = list(planned)
    index = 0
    while index < len(out):
        if not isinstance(out[index], ast.WhereClause):
            index += 1
            continue
        end = index
        while end < len(out) and isinstance(out[end], ast.WhereClause):
            end += 1
        if end - index > 1:
            block = out[index:end]
            block.sort(key=ordering_key)  # stable: ties keep SQL order
            out[index:end] = block
        index = end
    return out


def _advance_estimate(card: Optional[float], clause,
                      estimator: CostEstimator, external_vars: frozenset,
                      var_stats: dict) -> Optional[float]:
    """Fold one planned clause into a running cardinality estimate
    (None = unknown from here on)."""
    if isinstance(clause, ast.ForClause):
        stats = estimator.table_stats(clause.source)
        var_stats[clause.var] = stats
        if card is None or stats is None:
            return None
        return card * float(stats.row_count)
    if isinstance(clause, HashJoinClause):
        var = clause.for_clause.var
        stats = estimator.table_stats(clause.for_clause.source)
        var_stats[var] = stats
        if card is None or stats is None:
            return None
        result = card * float(stats.row_count)
        for build, probe, _cond in clause.keys:
            ndv = _column_ndv(stats, _scan_column(build, var))
            probe_ndv = 0
            for probe_var, probe_stats in var_stats.items():
                column = _scan_column(probe, probe_var)
                if column is not None:
                    probe_ndv = _column_ndv(probe_stats, column)
                    break
            ok, _value = _constant_value(probe, external_vars)
            if ok:
                result *= (1.0 / ndv) if ndv \
                    else DEFAULT_SELECTIVITY["eq"]
            else:
                known = [n for n in (ndv, probe_ndv) if n]
                result *= (1.0 / max(known)) if known \
                    else DEFAULT_SELECTIVITY["eq"]
        for condition in clause.filters:
            result *= conjunct_selectivity(condition, var, stats,
                                           external_vars)
        return result
    if isinstance(clause, ast.WhereClause):
        if card is None:
            return None
        condition = clause.condition
        for var, stats in var_stats.items():
            if stats is None:
                continue
            predicate = _sargable(condition, var, external_vars)
            if predicate is not None:
                return card * predicate_selectivity(predicate, stats)
        return card * _shape_selectivity(condition)
    if isinstance(clause, (ast.LetClause, RestoreOrderClause,
                           ast.OrderClause)):
        return card
    if isinstance(clause, ast.GroupClause):
        return None  # group count is not modeled
    return card


def estimate_plan(planned, estimator: CostEstimator,
                  external_vars: frozenset = frozenset()) \
        -> list[Optional[float]]:
    """Estimated frames flowing OUT of each planned clause (aligned
    with *planned*; None where statistics ran out)."""
    estimates: list[Optional[float]] = []
    card: Optional[float] = 1.0
    var_stats: dict[str, object] = {}
    for clause in planned:
        card = _advance_estimate(card, clause, estimator, external_vars,
                                 var_stats)
        estimates.append(card)
    return estimates


# ---------------------------------------------------------------------------
# Source pushdown hints (the repro.sources SPI)
# ---------------------------------------------------------------------------


class ParamRef:
    """A pushdown predicate value that resolves from an external
    variable at evaluation time (``WHERE COL = ?`` translates to
    ``$p1``, whose value arrives with each execution)."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"ParamRef({self.name!r})"


#: Operator seen by the column when the comparison is written with the
#: column on the right (``30 lt $c/COL`` means ``COL gt 30``).
_MIRROR = {"eq": "eq", "ne": "ne", "lt": "gt", "le": "ge",
           "gt": "lt", "ge": "le"}


def scan_requests(clauses, return_expr, external_vars: frozenset,
                  is_scan_source) -> dict:
    """Advisory pushdown requests for the planned *clauses*.

    Returns ``{clause_index: ScanRequest}`` for every for/hash-join
    clause whose source *is_scan_source* recognizes as a 0-argument
    data-service scan. Each request carries:

    * the sargable conjuncts over the clause's variable — equality
      keys of a hash join against constants, plus the contiguous
      where-conjuncts the filter hoisting placed right after the
      binder (``COL op literal``, ``fn:empty``/``fn:exists`` for
      IS [NOT] NULL); constants may be literals, ``xs:`` constructor
      casts of literals, or external-variable references (emitted as
      :class:`ParamRef` for late binding);
    * the projection: the set of columns the rest of the FLWOR reads
      through the variable (None when the variable escapes whole).

    Requests are *advisory*: every conjunct stays in the plan as a
    residual filter, so a source honoring a request may only shrink
    the scan, never change the result.
    """
    from ..sources.spi import ScanRequest

    hints: dict = {}
    for index, clause in enumerate(clauses):
        if isinstance(clause, HashJoinClause):
            source, var = clause.for_clause.source, clause.for_clause.var
        elif isinstance(clause, ast.ForClause):
            source, var = clause.source, clause.var
        else:
            continue
        if not is_scan_source(source):
            continue
        predicates: list = []
        if isinstance(clause, HashJoinClause):
            for build, probe, _cond in clause.keys:
                column = _scan_column(build, var)
                if column is None:
                    continue
                ok, value = _constant_value(probe, external_vars)
                if ok:
                    predicates.append(_predicate(column, "eq", value))
            for condition in clause.filters:
                predicate = _sargable(condition, var, external_vars)
                if predicate is not None:
                    predicates.append(predicate)
        follow = index + 1
        while follow < len(clauses) and \
                isinstance(clauses[follow], ast.WhereClause):
            predicate = _sargable(clauses[follow].condition, var,
                                  external_vars)
            if predicate is not None:
                predicates.append(predicate)
            follow += 1
        columns = _projection(var, clauses, return_expr, index)
        if predicates or columns is not None:
            hints[index] = ScanRequest(columns=columns,
                                       predicates=tuple(predicates))
    return hints


def _predicate(column: str, op: str, value=None):
    from ..sources.spi import Predicate

    return Predicate(column, op, value)


def _scan_column(expr, var: str) -> Optional[str]:
    """COL when *expr* is ``fn:data($var/COL)`` or ``$var/COL``."""
    if isinstance(expr, ast.XFunctionCall) and expr.prefix == "fn" \
            and expr.local == "data" and len(expr.args) == 1:
        expr = expr.args[0]
    if isinstance(expr, ast.PathExpr) \
            and isinstance(expr.base, ast.VarRef) \
            and expr.base.name == var and len(expr.steps) == 1:
        step = expr.steps[0]
        if step.name is not None and not step.predicates:
            return step.name
    return None


def _constant_value(expr, external_vars: frozenset):
    """(ok, value) when *expr* is known per-execution: a literal, an
    ``xs:`` constructor over a literal (``xs:date("2005-03-01")``), or
    an external-variable reference (→ :class:`ParamRef`)."""
    if isinstance(expr, ast.XLiteral):
        return True, expr.value
    if isinstance(expr, ast.XFunctionCall) and expr.prefix == "xs" \
            and len(expr.args) == 1 \
            and isinstance(expr.args[0], ast.XLiteral):
        from ..errors import XQueryError
        from .atomic import cast_to

        try:
            result = cast_to(expr.local, [expr.args[0].value])
        except XQueryError:
            return False, None
        if len(result) == 1:
            return True, result[0]
        return False, None
    if isinstance(expr, ast.VarRef) and expr.name in external_vars:
        return True, ParamRef(expr.name)
    return False, None


def _sargable(condition, var: str, external_vars: frozenset):
    """The :class:`Predicate` for a sargable conjunct, else None."""
    if isinstance(condition, ast.ValueComparison) \
            and condition.op in _MIRROR:
        column = _scan_column(condition.left, var)
        if column is not None:
            ok, value = _constant_value(condition.right, external_vars)
            if ok:
                return _predicate(column, condition.op, value)
        column = _scan_column(condition.right, var)
        if column is not None:
            ok, value = _constant_value(condition.left, external_vars)
            if ok:
                return _predicate(column, _MIRROR[condition.op], value)
        return None
    if isinstance(condition, ast.XFunctionCall) \
            and condition.prefix == "fn" \
            and condition.local in ("empty", "exists") \
            and len(condition.args) == 1:
        column = _scan_column(condition.args[0], var)
        if column is not None:
            return _predicate(column, "isnull" if condition.local ==
                              "empty" else "notnull")
    if isinstance(condition, ast.XFunctionCall) \
            and condition.prefix == "fn-bea" and condition.local == "in3" \
            and len(condition.args) == 2:
        # The translator's literal IN-list shape:
        # fn-bea:in3($var/COL, (v1, v2, ...)). Literal members can
        # never be NULL, so membership matches the source's IN exactly.
        column = _scan_column(condition.args[0], var)
        if column is None:
            return None
        members = condition.args[1]
        items = members.items if isinstance(members, ast.SequenceExpr) \
            else [members]
        values: list = []
        for item in items:
            ok, value = _constant_value(item, frozenset())
            if not ok or isinstance(value, ParamRef):
                return None
            values.append(value)
        if values:
            return _predicate(column, "in", tuple(values))
    return None


def _projection(var: str, clauses, return_expr,
                scan_index: int) -> Optional[tuple[str, ...]]:
    """The columns the FLWOR reads through *var*, or None when the
    variable is used whole (or not at all) and the scan must stay
    full-width."""
    exprs: list = []
    for index, clause in enumerate(clauses):
        if isinstance(clause, ast.ForClause):
            if index != scan_index:
                exprs.append(clause.source)
        elif isinstance(clause, HashJoinClause):
            if index != scan_index:
                exprs.append(clause.for_clause.source)
            for build, probe, cond in clause.keys:
                exprs.extend((build, probe, cond))
            exprs.extend(clause.filters)
        elif isinstance(clause, ast.LetClause):
            exprs.append(clause.value)
        elif isinstance(clause, ast.WhereClause):
            exprs.append(clause.condition)
        elif isinstance(clause, ast.GroupClause):
            if clause.source_var == var:
                return None  # whole rows flow into the partition
            exprs.extend(key for key, _v in clause.keys)
        elif isinstance(clause, ast.OrderClause):
            exprs.extend(spec.key for spec in clause.specs)
    if return_expr is not None:
        exprs.append(return_expr)
    used = _columns_used(var, exprs)
    if not used:
        return None
    return tuple(sorted(used))


def _columns_used(var: str, exprs) -> Optional[set]:
    """Column names reached via ``$var/COL`` paths across *exprs*;
    None as soon as any other use of *var* appears (whole-element
    use, wildcard/predicated step, shadow-prone nesting)."""
    used: set = set()

    def walk(node) -> bool:
        if isinstance(node, ast.PathExpr) \
                and isinstance(node.base, ast.VarRef) \
                and node.base.name == var:
            if not node.steps:
                return False
            first = node.steps[0]
            if first.name is None or first.predicates:
                return False
            used.add(first.name)
            for step in node.steps[1:]:
                for predicate in step.predicates:
                    if not walk(predicate):
                        return False
            return True
        if isinstance(node, ast.VarRef):
            return node.name != var
        for child in _iter_children(node):
            if not walk(child):
                return False
        return True

    for expr in exprs:
        if not walk(expr):
            return None
    return used


def _iter_children(node):
    """Yield the direct sub-expressions of *node* (mirrors the node
    kinds handled by ``analysis._collect``)."""
    if isinstance(node, ast.FLWOR):
        for clause in node.clauses:
            if isinstance(clause, ast.ForClause):
                yield clause.source
            elif isinstance(clause, ast.LetClause):
                yield clause.value
            elif isinstance(clause, ast.WhereClause):
                yield clause.condition
            elif isinstance(clause, ast.GroupClause):
                for key_expr, _v in clause.keys:
                    yield key_expr
            elif isinstance(clause, ast.OrderClause):
                for spec in clause.specs:
                    yield spec.key
        yield node.return_expr
    elif isinstance(node, ast.QuantifiedExpr):
        yield node.source
        yield node.condition
    elif isinstance(node, ast.SequenceExpr):
        yield from node.items
    elif isinstance(node, ast.IfExpr):
        yield node.condition
        yield node.then
        yield node.else_
    elif isinstance(node, (ast.OrExpr, ast.AndExpr, ast.ValueComparison,
                           ast.GeneralComparison, ast.Arithmetic)):
        yield node.left
        yield node.right
    elif isinstance(node, ast.RangeExpr):
        yield node.low
        yield node.high
    elif isinstance(node, ast.UnaryMinus):
        yield node.operand
    elif isinstance(node, ast.PathExpr):
        yield node.base
        for step in node.steps:
            yield from step.predicates
    elif isinstance(node, ast.FilterExpr):
        yield node.base
        yield from node.predicates
    elif isinstance(node, ast.XFunctionCall):
        yield from node.args
    elif isinstance(node, ast.ElementConstructor):
        for attr in node.attributes:
            for part in attr.parts:
                if not isinstance(part, str):
                    yield part
        for part in node.content:
            if not isinstance(part, str):
                yield part


# ---------------------------------------------------------------------------
# Runtime key canonicalization (shared by both executors' join/group)
# ---------------------------------------------------------------------------


def join_key(value) -> tuple[Optional[str], object]:
    """(comparison category, canonical hash key) for an eq join key.

    Categories mirror ``compare_values``: values that eq would refuse to
    compare get different categories; values eq treats as equal get the
    same canonical key. UntypedAtomic follows the value-comparison rule
    (cast to string). Returns (None, None) for uncanonicalizable types.
    """
    if isinstance(value, bool):
        return "b", ("b", value)
    if is_numeric_value(value):
        if isinstance(value, float):
            if value != value:  # NaN never equals anything
                return "n", ("nan", id(object()))
            dec = Decimal(repr(value))
        else:
            dec = Decimal(value)
        return "n", ("n", dec.normalize())
    if isinstance(value, str):  # includes UntypedAtomic
        return "s", ("s", str(value))
    if isinstance(value, datetime.datetime):
        return "dt", ("dt", value)
    if isinstance(value, datetime.date):
        return "d", ("d", value)
    if isinstance(value, datetime.time):
        return "t", ("t", value)
    return None, None


def grouping_key(value) -> tuple:
    """Canonical hashable form of a group-by key value.

    NULL (None) forms its own group, as SQL GROUP BY requires. Numeric
    values of different representations (2, 2.0, Decimal("2")) group
    together via Decimal canonicalization.
    """
    from ..errors import XQueryTypeError

    if value is None:
        return ("null",)
    if isinstance(value, bool):
        return ("b", value)
    if is_numeric_value(value):
        if isinstance(value, float):
            dec = Decimal(repr(value))
        else:
            dec = Decimal(value)
        return ("n", dec.normalize())
    if isinstance(value, str):
        return ("s", str(value))
    if isinstance(value, datetime.datetime):
        return ("dt", value.isoformat())
    if isinstance(value, datetime.date):
        return ("d", value.isoformat())
    if isinstance(value, datetime.time):
        return ("t", value.isoformat())
    raise XQueryTypeError(
        f"cannot group by values of type {type(value).__name__}",
        code="XPTY0004")


# ---------------------------------------------------------------------------
# Grouped-aggregation lowering (vector executor + parallel partial-agg)
# ---------------------------------------------------------------------------

#: Reserved prefix for the synthetic variables that hold finalized
#: aggregate values after an :class:`AggregateClause` (shares the \\x00
#: convention with ``ORDINAL_PREFIX`` so no user query can collide).
AGG_VAR_PREFIX = "\x00agg:"

#: Aggregate functions the vector executor can lower. Each decomposes
#: into a partial state and an associative merge (the Tout-XML mediator
#: contract): count → int, sum/avg → (total, count), min/max →
#: (best, seen), distinct-backed forms → ordered value list.
AGG_FUNCS = frozenset({"count", "sum", "avg", "min", "max"})


class AggregateSpec:
    """One aggregate column of an :class:`AggregateClause`.

    ``value`` is the per-row argument expression, rewritten to read the
    group *source* variable (the translator emits a fresh row variable
    per aggregate occurrence; lowering substitutes it away so identical
    aggregates unify). ``star`` marks ``fn:count($partition)`` — SQL
    ``COUNT(*)`` — which counts rows, not values. ``empty_zero``
    distinguishes 1-arg ``fn:sum`` (empty input → 0) from the
    translator's 2-arg ``fn:sum(..., ())`` (empty input → NULL).
    """

    __slots__ = ("func", "star", "distinct", "empty_zero", "value", "var")

    def __init__(self, func: str, star: bool, distinct: bool,
                 empty_zero: bool, value, var: str):
        self.func = func
        self.star = star
        self.distinct = distinct
        self.empty_zero = empty_zero
        self.value = value
        self.var = var


class AggregateClause:
    """A ``group ... by`` plus every aggregate read from its partition,
    lowered into one hash-aggregation operator.

    ``keys`` keeps the GroupClause's ``(key_expr, key_var)`` pairs —
    key expressions read ``source_var`` per row, and downstream clauses
    reference the key variables. ``specs`` are the aggregates; after
    this clause only key variables and spec variables are in scope.
    """

    __slots__ = ("source_var", "partition_var", "keys", "specs")

    def __init__(self, source_var: str, partition_var: str,
                 keys: tuple, specs: tuple):
        self.source_var = source_var
        self.partition_var = partition_var
        self.keys = keys
        self.specs = specs


def _rewrite_expr(node, hook):
    """Rebuild *node* bottom-up, replacing any sub-expression for which
    *hook* returns a non-None node (the replacement is NOT re-visited).
    Node kinds mirror :func:`_iter_children`; unknown/leaf kinds are
    returned unchanged."""
    replacement = hook(node)
    if replacement is not None:
        return replacement

    def rw(child):
        return _rewrite_expr(child, hook)

    if isinstance(node, ast.SequenceExpr):
        return replace(node, items=tuple(rw(item) for item in node.items))
    if isinstance(node, ast.IfExpr):
        return replace(node, condition=rw(node.condition),
                       then=rw(node.then), else_=rw(node.else_))
    if isinstance(node, (ast.OrExpr, ast.AndExpr, ast.ValueComparison,
                         ast.GeneralComparison, ast.Arithmetic)):
        return replace(node, left=rw(node.left), right=rw(node.right))
    if isinstance(node, ast.RangeExpr):
        return replace(node, low=rw(node.low), high=rw(node.high))
    if isinstance(node, ast.UnaryMinus):
        return replace(node, operand=rw(node.operand))
    if isinstance(node, ast.PathExpr):
        return replace(node, base=rw(node.base), steps=tuple(
            replace(step, predicates=tuple(rw(p) for p in step.predicates))
            for step in node.steps))
    if isinstance(node, ast.FilterExpr):
        return replace(node, base=rw(node.base),
                       predicates=tuple(rw(p) for p in node.predicates))
    if isinstance(node, ast.XFunctionCall):
        return replace(node, args=tuple(rw(arg) for arg in node.args))
    if isinstance(node, ast.ElementConstructor):
        return replace(
            node,
            attributes=tuple(
                replace(attr, parts=tuple(
                    part if isinstance(part, str) else rw(part)
                    for part in attr.parts))
                for attr in node.attributes),
            content=tuple(part if isinstance(part, str) else rw(part)
                          for part in node.content))
    return node


def substitute_var(expr, old: str, new: str):
    """*expr* with every ``VarRef(old)`` replaced by ``VarRef(new)``.
    Callers guarantee *expr* contains no binding forms (FLWOR /
    quantifier), so no shadowing analysis is needed."""
    return _rewrite_expr(
        expr,
        lambda node: ast.VarRef(name=new)
        if isinstance(node, ast.VarRef) and node.name == old else None)


def _contains_binder(node) -> bool:
    if isinstance(node, (ast.FLWOR, ast.QuantifiedExpr)):
        return True
    return any(_contains_binder(child) for child in _iter_children(node))


def _match_aggregate(node, partition_var: str, is_fn):
    """Match one translator-emitted aggregate call over *partition_var*.

    *is_fn* is ``(expr, local, arity) -> bool`` testing for an ``fn:``
    namespace call (supplied by the caller, which owns the static
    context for prefix resolution). Recognized shapes (stage 3's
    ``_gen_aggregate``)::

        fn:count($P)                            COUNT(*)
        fn:count((for $r in $P return V))       COUNT(V)
        fn:sum((for $r in $P return V), ())     SUM(V), empty → NULL
        fn:sum((for $r in $P return V))         SUM(V), empty → 0
        fn:avg|min|max((for $r in $P return V))
        ...(fn:distinct-values((for ...)))      DISTINCT variants

    Returns ``(func, star, distinct, empty_zero, row_var, value)`` or
    None. *value* may read only the row variable (no partition refs, no
    nested binders — that rejects scalar subqueries).
    """
    if not isinstance(node, ast.XFunctionCall):
        return None
    if is_fn(node, "count", 1) and isinstance(node.args[0], ast.VarRef) \
            and node.args[0].name == partition_var:
        return ("count", True, False, False, None, None)
    empty_zero = False
    if is_fn(node, "sum", 2):
        second = node.args[1]
        if not (isinstance(second, ast.SequenceExpr) and not second.items):
            return None
        func, inner = "sum", node.args[0]
    elif is_fn(node, "sum", 1):
        func, inner, empty_zero = "sum", node.args[0], True
    elif is_fn(node, "count", 1):
        func, inner = "count", node.args[0]
    elif is_fn(node, "avg", 1):
        func, inner = "avg", node.args[0]
    elif is_fn(node, "min", 1):
        func, inner = "min", node.args[0]
    elif is_fn(node, "max", 1):
        func, inner = "max", node.args[0]
    else:
        return None
    distinct = False
    if is_fn(inner, "distinct-values", 1):
        distinct = True
        inner = inner.args[0]
    if not (isinstance(inner, ast.FLWOR) and len(inner.clauses) == 1):
        return None
    head = inner.clauses[0]
    if not (isinstance(head, ast.ForClause)
            and isinstance(head.source, ast.VarRef)
            and head.source.name == partition_var):
        return None
    value = inner.return_expr
    if _contains_binder(value) or partition_var in free_vars(value):
        return None
    return (func, False, distinct, empty_zero, head.var, value)


def lower_group_aggregates(group: ast.GroupClause, post_clauses,
                           return_expr, is_fn):
    """Lower *group* plus everything downstream of it into an
    :class:`AggregateClause`.

    Walks the post-group clauses (only where/order are eligible — HAVING
    and grouped ORDER BY) and the return expression, replacing each
    recognized aggregate call with a reference to a synthetic
    ``AGG_VAR_PREFIX`` variable (structurally identical aggregates
    unify). Returns ``(clause, new_post_clauses, new_return_expr)``, or
    None when any aggregate shape is unsupported or a partition/source
    reference survives the rewrite — the caller then falls back to the
    tuple path wholesale.
    """
    specs: list[AggregateSpec] = []

    def hook(node):
        matched = _match_aggregate(node, group.partition_var, is_fn)
        if matched is not None:
            func, star, distinct, empty_zero, row_var, value = matched
            if value is not None:
                value = substitute_var(value, row_var, group.source_var)
            for spec in specs:
                if (spec.func == func and spec.star == star
                        and spec.distinct == distinct
                        and spec.empty_zero == empty_zero
                        and spec.value == value):
                    return ast.VarRef(name=spec.var)
            var = f"{AGG_VAR_PREFIX}{len(specs)}"
            specs.append(AggregateSpec(func, star, distinct, empty_zero,
                                       value, var))
            return ast.VarRef(name=var)
        if isinstance(node, (ast.FLWOR, ast.QuantifiedExpr)):
            # Don't descend into binders: an aggregate buried inside one
            # leaves a partition reference behind and fails validation.
            return node
        return None

    new_post = []
    rewritten = []
    for clause in post_clauses:
        if isinstance(clause, ast.WhereClause):
            condition = _rewrite_expr(clause.condition, hook)
            new_post.append(ast.WhereClause(condition=condition))
            rewritten.append(condition)
        elif isinstance(clause, ast.OrderClause):
            new_specs = tuple(replace(spec, key=_rewrite_expr(spec.key, hook))
                              for spec in clause.specs)
            new_post.append(ast.OrderClause(specs=new_specs))
            rewritten.extend(spec.key for spec in new_specs)
        else:
            return None
    new_return = _rewrite_expr(return_expr, hook)
    rewritten.append(new_return)
    for expr in rewritten:
        fv = free_vars(expr)
        if group.partition_var in fv or group.source_var in fv:
            return None
    clause = AggregateClause(group.source_var, group.partition_var,
                             group.keys, tuple(specs))
    return clause, tuple(new_post), new_return


def estimate_group_count(stats, keys, source_var: str) -> Optional[int]:
    """NDV-product estimate of a grouped scan's output cardinality,
    clamped to the table's row count. None when any key column lacks NDV
    statistics (unknown column shape, stats disabled)."""
    if stats is None or stats.row_count is None:
        return None
    estimate = 1
    for key_expr, _key_var in keys:
        ndv = _column_ndv(stats, _scan_column(key_expr, source_var))
        if not ndv:
            return None
        estimate *= ndv
    return min(estimate, stats.row_count)
