"""Static analysis over XQuery ASTs: free-variable computation.

Used by the evaluator's hash-join planner to decide whether a where
condition is an equi-join between two for-bound variables (and whether a
join side's source is independent of the tuple stream, so its hash table
can be built once).
"""

from __future__ import annotations

from . import ast


def free_vars(expr: ast.XExpr) -> frozenset[str]:
    """Names of variables *expr* reads that are not bound inside it."""
    free: set[str] = set()
    _collect(expr, frozenset(), free)
    return frozenset(free)


def _collect(node, bound: frozenset[str], free: set[str]) -> None:
    if isinstance(node, ast.VarRef):
        if node.name not in bound:
            free.add(node.name)
        return
    if isinstance(node, ast.FLWOR):
        inner = bound
        for clause in node.clauses:
            if isinstance(clause, ast.ForClause):
                _collect(clause.source, inner, free)
                inner = inner | {clause.var}
            elif isinstance(clause, ast.LetClause):
                _collect(clause.value, inner, free)
                inner = inner | {clause.var}
            elif isinstance(clause, ast.WhereClause):
                _collect(clause.condition, inner, free)
            elif isinstance(clause, ast.GroupClause):
                for key_expr, _var in clause.keys:
                    _collect(key_expr, inner, free)
                inner = inner | {clause.partition_var} \
                    | {var for _e, var in clause.keys}
            elif isinstance(clause, ast.OrderClause):
                for spec in clause.specs:
                    _collect(spec.key, inner, free)
        _collect(node.return_expr, inner, free)
        return
    if isinstance(node, ast.QuantifiedExpr):
        _collect(node.source, bound, free)
        _collect(node.condition, bound | {node.var}, free)
        return
    if isinstance(node, ast.SequenceExpr):
        for item in node.items:
            _collect(item, bound, free)
        return
    if isinstance(node, ast.IfExpr):
        for child in (node.condition, node.then, node.else_):
            _collect(child, bound, free)
        return
    if isinstance(node, (ast.OrExpr, ast.AndExpr, ast.ValueComparison,
                         ast.GeneralComparison, ast.Arithmetic)):
        _collect(node.left, bound, free)
        _collect(node.right, bound, free)
        return
    if isinstance(node, ast.RangeExpr):
        _collect(node.low, bound, free)
        _collect(node.high, bound, free)
        return
    if isinstance(node, ast.UnaryMinus):
        _collect(node.operand, bound, free)
        return
    if isinstance(node, ast.PathExpr):
        _collect(node.base, bound, free)
        for step in node.steps:
            for predicate in step.predicates:
                _collect(predicate, bound, free)
        return
    if isinstance(node, ast.FilterExpr):
        _collect(node.base, bound, free)
        for predicate in node.predicates:
            _collect(predicate, bound, free)
        return
    if isinstance(node, ast.XFunctionCall):
        for arg in node.args:
            _collect(arg, bound, free)
        return
    if isinstance(node, ast.ElementConstructor):
        for attr in node.attributes:
            for part in attr.parts:
                if not isinstance(part, str):
                    _collect(part, bound, free)
        for part in node.content:
            if not isinstance(part, str):
                _collect(part, bound, free)
        return
    # Literals, ContextItem: nothing to do.
