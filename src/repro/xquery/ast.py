"""AST nodes for the XQuery dialect the AquaLogic translator emits.

The dialect covers: a prolog with schema imports, namespace declarations
and external variables; FLWOR expressions (with the BEA ``group`` clause
extension the paper uses for SQL GROUP BY); quantified expressions;
conditional expressions; value and general comparisons; arithmetic; child-
axis path expressions with predicates; direct element constructors with
enclosed expressions; literals; variables; and function calls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union


class XNode:
    """Marker base for XQuery AST nodes."""

    __slots__ = ()


class XExpr(XNode):
    """Marker base for expressions."""

    __slots__ = ()


# -- prolog -----------------------------------------------------------------


@dataclass(frozen=True)
class SchemaImport(XNode):
    """``import schema namespace p = "uri" at "location";``"""

    prefix: str
    uri: str
    location: Optional[str] = None


@dataclass(frozen=True)
class NamespaceDecl(XNode):
    """``declare namespace p = "uri";``"""

    prefix: str
    uri: str


@dataclass(frozen=True)
class VarDecl(XNode):
    """``declare variable $name [as xs:type] external;`` (external only —
    the translator uses these for JDBC prepared-statement parameters)."""

    name: str
    type_name: Optional[str] = None


@dataclass(frozen=True)
class Module(XNode):
    """A complete query: prolog declarations plus the body expression."""

    prolog: tuple[Union[SchemaImport, NamespaceDecl, VarDecl], ...]
    body: XExpr


# -- FLWOR ------------------------------------------------------------------


@dataclass(frozen=True)
class ForClause(XNode):
    """``for $var in expr`` — one binding (multi-binding ``for`` clauses
    are parsed into consecutive ForClause nodes)."""

    var: str
    source: XExpr


@dataclass(frozen=True)
class LetClause(XNode):
    """``let $var := expr``"""

    var: str
    value: XExpr


@dataclass(frozen=True)
class WhereClause(XNode):
    condition: XExpr


@dataclass(frozen=True)
class GroupClause(XNode):
    """BEA group-by extension:

    ``group $source as $partition by keyExpr as $keyVar (, ...)*``

    Partitions the incoming tuple stream by the key expressions. After the
    clause, each tuple binds ``partition`` to the concatenation of the
    ``source`` variable's values across the group and each key variable to
    its (possibly empty, for SQL NULL) key value.
    """

    source_var: str
    partition_var: str
    keys: tuple[tuple[XExpr, str], ...]


@dataclass(frozen=True)
class OrderSpec(XNode):
    key: XExpr
    ascending: bool = True
    empty_least: bool = True


@dataclass(frozen=True)
class OrderClause(XNode):
    specs: tuple[OrderSpec, ...]


FLWORClause = Union[ForClause, LetClause, WhereClause, GroupClause,
                    OrderClause]


@dataclass(frozen=True)
class FLWOR(XExpr):
    clauses: tuple[FLWORClause, ...]
    return_expr: XExpr


# -- other expressions --------------------------------------------------------


@dataclass(frozen=True)
class XLiteral(XExpr):
    """A string, integer, decimal, or double literal."""

    value: object


@dataclass(frozen=True)
class VarRef(XExpr):
    name: str


@dataclass(frozen=True)
class SequenceExpr(XExpr):
    """``(e1, e2, ...)`` — including ``()`` for the empty sequence."""

    items: tuple[XExpr, ...]


@dataclass(frozen=True)
class IfExpr(XExpr):
    condition: XExpr
    then: XExpr
    else_: XExpr


@dataclass(frozen=True)
class QuantifiedExpr(XExpr):
    """``some|every $var in source satisfies condition``"""

    kind: str  # "some" | "every"
    var: str
    source: XExpr
    condition: XExpr


@dataclass(frozen=True)
class OrExpr(XExpr):
    left: XExpr
    right: XExpr


@dataclass(frozen=True)
class AndExpr(XExpr):
    left: XExpr
    right: XExpr


@dataclass(frozen=True)
class ValueComparison(XExpr):
    """eq | ne | lt | le | gt | ge"""

    op: str
    left: XExpr
    right: XExpr


@dataclass(frozen=True)
class GeneralComparison(XExpr):
    """= | != | < | <= | > | >="""

    op: str
    left: XExpr
    right: XExpr


@dataclass(frozen=True)
class RangeExpr(XExpr):
    """``low to high`` — an integer range sequence."""

    low: XExpr
    high: XExpr


@dataclass(frozen=True)
class Arithmetic(XExpr):
    """+ | - | * | div | idiv | mod"""

    op: str
    left: XExpr
    right: XExpr


@dataclass(frozen=True)
class UnaryMinus(XExpr):
    operand: XExpr


@dataclass(frozen=True)
class ContextItem(XExpr):
    """``.`` — or the implicit origin of a relative path inside a
    predicate, e.g. the bare ``CUSTID`` in the paper's
    ``ns1:PAYMENTS()[($c/CUSTOMERID = CUSTID)]``."""


@dataclass(frozen=True)
class PathStep(XNode):
    """A child-axis step: a name test (local name) or the ``*`` wildcard,
    with optional positional/boolean predicates."""

    name: Optional[str]  # None means '*'
    predicates: tuple[XExpr, ...] = ()


@dataclass(frozen=True)
class PathExpr(XExpr):
    """``base/step/step...`` — base may itself carry predicates (via
    FilterExpr)."""

    base: XExpr
    steps: tuple[PathStep, ...]


@dataclass(frozen=True)
class FilterExpr(XExpr):
    """``primary[predicate]...`` — e.g. ``ns1:PAYMENTS()[...]`` (paper
    Example 10)."""

    base: XExpr
    predicates: tuple[XExpr, ...]


@dataclass(frozen=True)
class XFunctionCall(XExpr):
    """A function call by prefixed QName (``fn:data``, ``xs:integer``,
    ``fn-bea:if-empty``, ``ns0:CUSTOMERS``, ...)."""

    prefix: str
    local: str
    args: tuple[XExpr, ...]

    @property
    def display(self) -> str:
        return f"{self.prefix}:{self.local}" if self.prefix else self.local


@dataclass(frozen=True)
class AttributeConstructor(XNode):
    """A static attribute in a direct constructor. ``parts`` alternates
    literal strings and enclosed expressions."""

    name: str
    parts: tuple[Union[str, XExpr], ...]


@dataclass(frozen=True)
class ElementConstructor(XExpr):
    """A direct element constructor. ``content`` items are literal text
    runs (str), nested constructors, or enclosed expressions."""

    name: str
    prefix: str = ""
    attributes: tuple[AttributeConstructor, ...] = ()
    content: tuple[Union[str, XExpr], ...] = ()
