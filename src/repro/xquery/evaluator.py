"""Dynamic evaluation of the XQuery dialect.

A tree-walking evaluator over the AST in ``repro.xquery.ast``. FLWOR
expressions are evaluated as tuple streams (lists of variable
environments), the model the XQuery formal semantics uses, which makes the
BEA ``group`` clause a natural stream transformation.

This interpreter is the engine's semantics oracle: the closure compiler
(``repro.xquery.compile``) is the production executor and is differentially
tested against it. Clause planning (filter hoisting, hash equi-joins) lives
in ``repro.xquery.planner`` and is shared by both.

Function calls into non-builtin namespaces (the data service functions,
``ns0:CUSTOMERS()``) are delegated to a *function resolver* supplied by the
host — in this package, the DSP runtime (``repro.engine.dsp``).
"""

from __future__ import annotations

from typing import Callable, Optional

from ..errors import XQueryDynamicError, XQueryStaticError, XQueryTypeError
from ..xmlmodel import Attribute, Document, Element, QName, Text, copy_node
from . import ast
from .atomic import (
    Sequence,
    arithmetic,
    effective_boolean_value,
    general_comparison,
    is_node,
    is_numeric_value,
    negate,
    order_key,
    serialize_atomic,
    single_atomic,
    value_comparison,
)
from .functions import DEFAULT_NAMESPACES, call_builtin, is_builtin_namespace
from .planner import (
    HashJoinClause,
    grouping_key as _grouping_key,
    hoist_filters,
    join_key as _join_key,
    plan_clauses,
    split_conjuncts as _split_conjuncts,
)

#: Host-supplied resolver for module-level (data service) functions:
#: (namespace_uri, local_name, evaluated_argument_sequences) -> sequence.
#: A resolver declaring a keyword parameter named ``context`` (like
#: ``DSPRuntime.call_function``) additionally receives the executing
#: query's lifecycle context from the compiled executor.
FunctionResolver = Callable[[str, str, list], list]

#: Reserved variable-frame key under which the compiled executor threads
#: the active ``repro.engine.lifecycle.QueryContext`` through per-row
#: frames. The NUL prefix guarantees it can never collide with a real
#: XQuery variable name, and it rides along frame ``bind()`` copies for
#: free. ``repro.engine.lifecycle`` re-exports it as the canonical name.
CONTEXT_KEY = "\x00lifecycle"

#: Back-compat alias: the planner owns the class since the executor split.
_HashJoinClause = HashJoinClause


class StaticContext:
    """Namespaces in scope plus the host function resolver."""

    def __init__(self, resolver: Optional[FunctionResolver] = None):
        self.namespaces: dict[str, str] = dict(DEFAULT_NAMESPACES)
        self.resolver = resolver

    def declare(self, prefix: str, uri: str) -> None:
        self.namespaces[prefix] = uri

    def resolve_prefix(self, prefix: str) -> str:
        try:
            return self.namespaces[prefix]
        except KeyError:
            raise XQueryStaticError(
                f"undeclared namespace prefix {prefix!r}",
                code="XPST0081") from None


class _Frame:
    """A variable environment with optional context item/position."""

    __slots__ = ("variables", "context_item", "context_position")

    def __init__(self, variables: dict[str, Sequence],
                 context_item=None, context_position: int = 0):
        self.variables = variables
        self.context_item = context_item
        self.context_position = context_position

    def bind(self, name: str, value: Sequence) -> "_Frame":
        variables = dict(self.variables)
        variables[name] = value
        return _Frame(variables, self.context_item, self.context_position)

    def with_context(self, item, position: int) -> "_Frame":
        return _Frame(self.variables, item, position)

    def lookup(self, name: str) -> Sequence:
        try:
            return self.variables[name]
        except KeyError:
            raise XQueryStaticError(f"unbound variable ${name}",
                                    code="XPST0008") from None


def _as_sequence(value) -> Sequence:
    """Normalize a host-supplied variable value into a sequence."""
    if value is None:
        return []
    if isinstance(value, list):
        return value
    return [value]


def bind_module_variables(module: ast.Module,
                          variables: Optional[dict[str, object]]) \
        -> dict[str, Sequence]:
    """Check external variable declarations against supplied values and
    build the root variable bindings (shared by both executors)."""
    bindings: dict[str, Sequence] = {}
    supplied = variables or {}
    for decl in module.prolog:
        if isinstance(decl, ast.VarDecl):
            if decl.name not in supplied:
                raise XQueryDynamicError(
                    f"no value supplied for external variable "
                    f"${decl.name}", code="XPDY0002")
            bindings[decl.name] = _as_sequence(supplied[decl.name])
    for name, value in supplied.items():
        bindings.setdefault(name, _as_sequence(value))
    return bindings


class Evaluator:
    """Evaluates one parsed module (or standalone expression)."""

    def __init__(self, module: ast.Module,
                 resolver: Optional[FunctionResolver] = None,
                 variables: Optional[dict[str, object]] = None,
                 optimize: bool = True):
        self._module = module
        self._static = StaticContext(resolver)
        self._optimize = optimize
        #: Per-FLWOR planned clause lists, keyed by node identity: a
        #: nested FLWOR (e.g. a wrapper cell) is planned once per
        #: evaluator, not once per tuple.
        self._plans: dict[int, list] = {}
        for decl in module.prolog:
            if isinstance(decl, (ast.SchemaImport, ast.NamespaceDecl)):
                self._static.declare(decl.prefix, decl.uri)
        self._root = _Frame(bind_module_variables(module, variables))

    def evaluate(self) -> Sequence:
        return self._eval(self._module.body, self._root)

    # -- dispatch ---------------------------------------------------------

    def _eval(self, expr: ast.XExpr, frame: _Frame) -> Sequence:
        method = self._DISPATCH.get(type(expr))
        if method is None:
            raise XQueryStaticError(
                f"cannot evaluate node {type(expr).__name__}")
        return method(self, expr, frame)

    def _eval_literal(self, expr: ast.XLiteral, frame: _Frame) -> Sequence:
        return [expr.value]

    def _eval_varref(self, expr: ast.VarRef, frame: _Frame) -> Sequence:
        return frame.lookup(expr.name)

    def _eval_sequence(self, expr: ast.SequenceExpr,
                       frame: _Frame) -> Sequence:
        result: list = []
        for item in expr.items:
            result.extend(self._eval(item, frame))
        return result

    def _eval_context(self, expr: ast.ContextItem,
                      frame: _Frame) -> Sequence:
        if frame.context_item is None:
            raise XQueryDynamicError("context item is undefined here",
                                     code="XPDY0002")
        return [frame.context_item]

    def _eval_if(self, expr: ast.IfExpr, frame: _Frame) -> Sequence:
        if effective_boolean_value(self._eval(expr.condition, frame)):
            return self._eval(expr.then, frame)
        return self._eval(expr.else_, frame)

    def _eval_or(self, expr: ast.OrExpr, frame: _Frame) -> Sequence:
        if effective_boolean_value(self._eval(expr.left, frame)):
            return [True]
        return [effective_boolean_value(self._eval(expr.right, frame))]

    def _eval_and(self, expr: ast.AndExpr, frame: _Frame) -> Sequence:
        if not effective_boolean_value(self._eval(expr.left, frame)):
            return [False]
        return [effective_boolean_value(self._eval(expr.right, frame))]

    def _eval_value_comparison(self, expr: ast.ValueComparison,
                               frame: _Frame) -> Sequence:
        return value_comparison(expr.op, self._eval(expr.left, frame),
                                self._eval(expr.right, frame))

    def _eval_general_comparison(self, expr: ast.GeneralComparison,
                                 frame: _Frame) -> Sequence:
        return [general_comparison(expr.op, self._eval(expr.left, frame),
                                   self._eval(expr.right, frame))]

    def _eval_range(self, expr: ast.RangeExpr, frame: _Frame) -> Sequence:
        low = single_atomic(self._eval(expr.low, frame), "range start")
        high = single_atomic(self._eval(expr.high, frame), "range end")
        if low is None or high is None:
            return []
        if not isinstance(low, int) or not isinstance(high, int):
            raise XQueryTypeError("range bounds must be integers",
                                  code="XPTY0004")
        return list(range(low, high + 1))

    def _eval_arithmetic(self, expr: ast.Arithmetic,
                         frame: _Frame) -> Sequence:
        return arithmetic(expr.op, self._eval(expr.left, frame),
                          self._eval(expr.right, frame))

    def _eval_unary(self, expr: ast.UnaryMinus, frame: _Frame) -> Sequence:
        return negate(self._eval(expr.operand, frame))

    def _eval_quantified(self, expr: ast.QuantifiedExpr,
                         frame: _Frame) -> Sequence:
        source = self._eval(expr.source, frame)
        for item in source:
            inner = frame.bind(expr.var, [item])
            holds = effective_boolean_value(self._eval(expr.condition, inner))
            if expr.kind == "some" and holds:
                return [True]
            if expr.kind == "every" and not holds:
                return [False]
        return [expr.kind == "every"]

    # -- paths -------------------------------------------------------------

    def _eval_path(self, expr: ast.PathExpr, frame: _Frame) -> Sequence:
        current = self._eval(expr.base, frame)
        for step in expr.steps:
            matched: list = []
            for item in current:
                if isinstance(item, Document):
                    children = [c for c in item.children
                                if isinstance(c, Element)]
                elif isinstance(item, Element):
                    children = list(item.child_elements())
                else:
                    raise XQueryTypeError(
                        "path step applied to a non-node item",
                        code="XPTY0019")
                for child in children:
                    if step.name is None or child.name.local == step.name:
                        matched.append(child)
            current = self._apply_predicates(matched, step.predicates, frame)
        return current

    def _eval_filter(self, expr: ast.FilterExpr, frame: _Frame) -> Sequence:
        base = self._eval(expr.base, frame)
        return self._apply_predicates(base, expr.predicates, frame)

    def _apply_predicates(self, items: Sequence,
                          predicates: tuple[ast.XExpr, ...],
                          frame: _Frame) -> Sequence:
        for predicate in predicates:
            kept: list = []
            for position, item in enumerate(items, start=1):
                inner = frame.with_context(item, position)
                result = self._eval(predicate, inner)
                if (len(result) == 1 and is_numeric_value(result[0])
                        and not isinstance(result[0], bool)):
                    if float(result[0]) == position:
                        kept.append(item)
                elif effective_boolean_value(result):
                    kept.append(item)
            items = kept
        return items

    # -- function calls -------------------------------------------------------

    def _eval_function_call(self, expr: ast.XFunctionCall,
                            frame: _Frame) -> Sequence:
        uri = self._static.resolve_prefix(expr.prefix)
        args = [self._eval(arg, frame) for arg in expr.args]
        if is_builtin_namespace(uri):
            return call_builtin(uri, expr.local, args)
        if self._static.resolver is None:
            raise XQueryStaticError(
                f"no resolver for function {expr.display}", code="XPST0017")
        return self._static.resolver(uri, expr.local, args)

    # -- constructors ------------------------------------------------------------

    def _eval_constructor(self, expr: ast.ElementConstructor,
                          frame: _Frame) -> Sequence:
        if expr.prefix:
            uri = self._static.resolve_prefix(expr.prefix)
        else:
            uri = ""
        element = Element(QName(expr.name, uri, expr.prefix))
        for attr in expr.attributes:
            element.attributes.append(
                Attribute(QName(attr.name),
                          self._attribute_value(attr, frame)))
        for part in expr.content:
            if isinstance(part, str):
                element.append(Text(part))
            else:
                _append_content(element, self._eval(part, frame))
        return [element]

    def _attribute_value(self, attr: ast.AttributeConstructor,
                         frame: _Frame) -> str:
        parts: list[str] = []
        for part in attr.parts:
            if isinstance(part, str):
                parts.append(part)
            else:
                values = self._eval(part, frame)
                parts.append(" ".join(
                    serialize_atomic(v) if not is_node(v)
                    else v.string_value() for v in values))
        return "".join(parts)

    # -- FLWOR --------------------------------------------------------------------

    def _eval_flwor(self, expr: ast.FLWOR, frame: _Frame) -> Sequence:
        tuples: list[_Frame] = [frame]
        if self._optimize:
            clauses = self._plans.get(id(expr))
            if clauses is None:
                clauses = plan_clauses(expr.clauses, expr.return_expr)
                self._plans[id(expr)] = clauses
        else:
            clauses = list(expr.clauses)
        for clause in clauses:
            if isinstance(clause, HashJoinClause):
                tuples = self._apply_hash_join(clause, tuples)
            elif isinstance(clause, ast.ForClause):
                tuples = self._apply_for(clause, tuples)
            elif isinstance(clause, ast.LetClause):
                tuples = [t.bind(clause.var, self._eval(clause.value, t))
                          for t in tuples]
            elif isinstance(clause, ast.WhereClause):
                tuples = [t for t in tuples
                          if effective_boolean_value(
                              self._eval(clause.condition, t))]
            elif isinstance(clause, ast.GroupClause):
                tuples = self._apply_group(clause, tuples)
            elif isinstance(clause, ast.OrderClause):
                tuples = self._apply_order(clause, tuples)
            else:  # pragma: no cover - parser prevents this
                raise XQueryStaticError(
                    f"unknown FLWOR clause {type(clause).__name__}")
        result: list = []
        for t in tuples:
            result.extend(self._eval(expr.return_expr, t))
        return result

    def _apply_for(self, clause: ast.ForClause,
                   tuples: list[_Frame]) -> list[_Frame]:
        output = []
        for t in tuples:
            for item in self._eval(clause.source, t):
                output.append(t.bind(clause.var, [item]))
        return output

    # -- hash equi-join application ------------------------------------
    #
    # The planner (repro.xquery.planner) replaces (for, where-eq...)
    # groups with HashJoinClause nodes, possibly multi-key. Correctness
    # is preserved exactly: NULL (empty) keys never match, cross-
    # category key comparisons fall back to pairwise evaluation so type
    # errors still surface, and NaN never matches itself.

    def _hoist_filters(self, clauses):
        """Back-compat shim over :func:`repro.xquery.planner.hoist_filters`."""
        return hoist_filters(clauses)

    def _plan_clauses(self, clauses):
        """Back-compat shim over :func:`repro.xquery.planner.plan_clauses`."""
        return plan_clauses(clauses)

    def _apply_hash_join(self, join: HashJoinClause,
                         tuples: list[_Frame]) -> list[_Frame]:
        if not tuples:
            return []
        var = join.for_clause.var
        items = self._eval(join.for_clause.source, tuples[0])
        build = _build_join_table(
            join, items,
            lambda expr, item: single_atomic(
                self._eval(expr, tuples[0].bind(var, [item])), "join key"))
        if build is None:
            output = []
            for t in tuples:
                for item in self._pairwise_matches(join, t, items):
                    output.append(t.bind(var, [item]))
            return output
        table, categories = build
        output = []
        for t in tuples:
            matched = _probe_join_table(
                join, table, categories,
                lambda expr: single_atomic(self._eval(expr, t), "join key"))
            if matched is _PAIRWISE:
                matched = self._pairwise_matches(join, t, items)
            for item in matched:
                output.append(t.bind(var, [item]))
        return output

    def _pairwise_matches(self, join: HashJoinClause, t: _Frame,
                          items: Sequence) -> list:
        var = join.for_clause.var
        matched = []
        for item in items:
            inner = t.bind(var, [item])
            if all(effective_boolean_value(self._eval(condition, inner))
                   for _b, _p, condition in join.keys):
                matched.append(item)
        return matched

    def _apply_group(self, clause: ast.GroupClause,
                     tuples: list[_Frame]) -> list[_Frame]:
        groups: dict[tuple, dict] = {}
        order: list[tuple] = []
        for t in tuples:
            key_values = []
            for key_expr, _key_var in clause.keys:
                key_values.append(single_atomic(
                    self._eval(key_expr, t), "group key"))
            key = tuple(_grouping_key(v) for v in key_values)
            if key not in groups:
                groups[key] = {
                    "first": t,
                    "keys": key_values,
                    "partition": [],
                }
                order.append(key)
            groups[key]["partition"].extend(
                t.variables.get(clause.source_var, []))
        output = []
        for key in order:
            info = groups[key]
            frame = info["first"]
            frame = frame.bind(clause.partition_var, info["partition"])
            for (key_expr, key_var), value in zip(clause.keys, info["keys"]):
                frame = frame.bind(key_var,
                                   [] if value is None else [value])
            output.append(frame)
        return output

    def _apply_order(self, clause: ast.OrderClause,
                     tuples: list[_Frame]) -> list[_Frame]:
        def sort_key(t: _Frame):
            keys = []
            for spec in clause.specs:
                value = single_atomic(self._eval(spec.key, t), "order key")
                key = order_key(value)
                if value is None and not spec.empty_least:
                    key = (2, 0, 0)  # empty greatest
                keys.append(_Directional(key, spec.ascending))
            return keys

        return sorted(tuples, key=sort_key)

    _DISPATCH = {
        ast.XLiteral: _eval_literal,
        ast.VarRef: _eval_varref,
        ast.SequenceExpr: _eval_sequence,
        ast.ContextItem: _eval_context,
        ast.IfExpr: _eval_if,
        ast.OrExpr: _eval_or,
        ast.AndExpr: _eval_and,
        ast.ValueComparison: _eval_value_comparison,
        ast.GeneralComparison: _eval_general_comparison,
        ast.RangeExpr: _eval_range,
        ast.Arithmetic: _eval_arithmetic,
        ast.UnaryMinus: _eval_unary,
        ast.QuantifiedExpr: _eval_quantified,
        ast.PathExpr: _eval_path,
        ast.FilterExpr: _eval_filter,
        ast.XFunctionCall: _eval_function_call,
        ast.ElementConstructor: _eval_constructor,
        ast.FLWOR: _eval_flwor,
    }


def _append_content(element: Element, values: Sequence) -> None:
    """Append an enclosed expression's result: nodes are copied,
    adjacent atomic values are joined with single spaces."""
    pending: list[str] = []

    def flush() -> None:
        if pending:
            element.append(Text(" ".join(pending)))
            pending.clear()

    for value in values:
        if isinstance(value, (Element, Text)):
            flush()
            element.append(copy_node(value))
        elif isinstance(value, Document):
            flush()
            for child in value.children:
                element.append(copy_node(child))
        elif isinstance(value, Attribute):
            raise XQueryTypeError(
                "attribute nodes cannot appear in element content here",
                code="XQTY0024")
        else:
            pending.append(serialize_atomic(value))
    flush()


#: Sentinel returned by _probe_join_table when a cross-category probe
#: requires the exact (pairwise) path.
_PAIRWISE = object()


def _build_join_table(join: HashJoinClause, items: Sequence, eval_key):
    """Build the composite-key hash table: ``(table, categories)`` or
    ``None`` when any key value is uncanonicalizable or a key position
    mixes comparison categories (both force pairwise evaluation, which
    keeps eq's type-error semantics exact).

    *eval_key(build_expr, item)* evaluates one build key against one
    build-side item; key positions evaluate in conjunct order and stop
    at the first NULL, mirroring the split-where plan's short-circuit.
    """
    nkeys = len(join.keys)
    table: dict[tuple, list] = {}
    categories: list[set] = [set() for _ in range(nkeys)]
    for item in items:
        canon_parts: list = []
        for index, (build_key, _probe, _cond) in enumerate(join.keys):
            key_value = eval_key(build_key, item)
            if key_value is None:
                canon_parts = None
                break  # eq against NULL never matches
            category, canon = _join_key(key_value)
            if category is None:
                return None
            categories[index].add(category)
            canon_parts.append(canon)
        if canon_parts is None:
            continue
        table.setdefault(tuple(canon_parts), []).append(item)
    if any(len(found) > 1 for found in categories):
        # Mixed-category build keys would make a cross-category probe
        # silently skip the pair that should raise a type error; fall
        # back to pairwise evaluation (exact semantics) in that case.
        return None
    return table, categories


def _probe_join_table(join: HashJoinClause, table: dict,
                      categories: list, eval_probe):
    """Probe with one tuple's composite key: the matching build items,
    ``[]`` when a NULL probe key rules the tuple out, or ``_PAIRWISE``
    when a cross-category probe must re-check pairwise (so the type
    error the unoptimized plan raises still surfaces)."""
    probe_parts: list = []
    for index, (_build, probe_key, _cond) in enumerate(join.keys):
        probe_value = eval_probe(probe_key)
        if probe_value is None:
            return []  # NULL probe matches nothing under eq
        category, canon = _join_key(probe_value)
        if category is None or (categories[index]
                                and category not in categories[index]):
            return _PAIRWISE
        probe_parts.append(canon)
    return table.get(tuple(probe_parts), [])


class _Directional:
    """Wraps a sort key, inverting comparisons for descending specs."""

    __slots__ = ("key", "ascending")

    def __init__(self, key, ascending: bool):
        self.key = key
        self.ascending = ascending

    def __lt__(self, other: "_Directional") -> bool:
        if self.ascending:
            return self.key < other.key
        return other.key < self.key

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Directional) and self.key == other.key
