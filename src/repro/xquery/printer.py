"""Render XQuery ASTs back to query text.

Primarily a development/debugging aid, the printer also powers the
parser round-trip property tests: ``parse(print(parse(q)))`` must equal
``parse(q)`` for every query the translator can emit.
"""

from __future__ import annotations

from decimal import Decimal

from . import ast


def print_module(module: ast.Module) -> str:
    lines = []
    for decl in module.prolog:
        if isinstance(decl, ast.SchemaImport):
            line = f'import schema namespace {decl.prefix} = "{decl.uri}"'
            if decl.location:
                line += f' at "{decl.location}"'
            lines.append(line + ";")
        elif isinstance(decl, ast.NamespaceDecl):
            lines.append(f'declare namespace {decl.prefix} = '
                         f'"{decl.uri}";')
        else:
            assert isinstance(decl, ast.VarDecl)
            type_part = f" as xs:{decl.type_name}" if decl.type_name else ""
            lines.append(f"declare variable ${decl.name}{type_part} "
                         f"external;")
    lines.append(print_expr(module.body))
    return "\n".join(lines)


def print_expr(expr: ast.XExpr) -> str:
    return _expr(expr)


def _string_literal(value: str) -> str:
    escaped = value.replace("&", "&amp;").replace('"', '""')
    return f'"{escaped}"'


def _expr(expr: ast.XExpr) -> str:  # noqa: C901 - exhaustive dispatch
    if isinstance(expr, ast.XLiteral):
        value = expr.value
        if isinstance(value, str):
            return _string_literal(value)
        if isinstance(value, bool):
            return "fn:true()" if value else "fn:false()"
        if isinstance(value, Decimal):
            text = str(value)
            return text if "." in text else text + ".0"
        if isinstance(value, float):
            return repr(value) if "e" in repr(value) else f"{value!r}e0"
        return str(value)
    if isinstance(expr, ast.VarRef):
        return f"${expr.name}"
    if isinstance(expr, ast.ContextItem):
        return "."
    if isinstance(expr, ast.SequenceExpr):
        return "(" + ", ".join(_expr(item) for item in expr.items) + ")"
    if isinstance(expr, ast.IfExpr):
        return (f"if ({_expr(expr.condition)}) then "
                f"{_paren(expr.then)} else {_paren(expr.else_)}")
    if isinstance(expr, ast.QuantifiedExpr):
        return (f"{expr.kind} ${expr.var} in {_paren(expr.source)} "
                f"satisfies {_paren(expr.condition)}")
    if isinstance(expr, ast.OrExpr):
        return f"{_paren(expr.left)} or {_paren(expr.right)}"
    if isinstance(expr, ast.AndExpr):
        return f"{_paren(expr.left)} and {_paren(expr.right)}"
    if isinstance(expr, (ast.ValueComparison, ast.GeneralComparison)):
        return f"{_paren(expr.left)} {expr.op} {_paren(expr.right)}"
    if isinstance(expr, ast.RangeExpr):
        return f"{_paren(expr.low)} to {_paren(expr.high)}"
    if isinstance(expr, ast.Arithmetic):
        return f"{_paren(expr.left)} {expr.op} {_paren(expr.right)}"
    if isinstance(expr, ast.UnaryMinus):
        return f"-{_paren(expr.operand)}"
    if isinstance(expr, ast.PathExpr):
        steps = []
        for step in expr.steps:
            name = step.name if step.name is not None else "*"
            predicates = "".join(f"[{_expr(p)}]"
                                 for p in step.predicates)
            steps.append(f"{name}{predicates}")
        if isinstance(expr.base, ast.ContextItem):
            # A bare relative path (valid inside predicates).
            return "/".join(steps) if steps else "."
        return _paren(expr.base) + "/" + "/".join(steps)
    if isinstance(expr, ast.FilterExpr):
        predicates = "".join(f"[{_expr(p)}]" for p in expr.predicates)
        return f"{_paren(expr.base)}{predicates}"
    if isinstance(expr, ast.XFunctionCall):
        name = f"{expr.prefix}:{expr.local}" if expr.prefix else expr.local
        return f"{name}(" + ", ".join(_expr(a) for a in expr.args) + ")"
    if isinstance(expr, ast.ElementConstructor):
        return _constructor(expr)
    if isinstance(expr, ast.FLWOR):
        return _flwor(expr)
    raise TypeError(f"cannot print {type(expr).__name__}")


_ATOMS = (ast.XLiteral, ast.VarRef, ast.SequenceExpr, ast.XFunctionCall,
          ast.ElementConstructor, ast.PathExpr, ast.FilterExpr,
          ast.ContextItem)


def _paren(expr: ast.XExpr) -> str:
    text = _expr(expr)
    if isinstance(expr, _ATOMS):
        return text
    return f"({text})"


def _flwor(expr: ast.FLWOR) -> str:
    lines = []
    for clause in expr.clauses:
        if isinstance(clause, ast.ForClause):
            lines.append(f"for ${clause.var} in {_paren(clause.source)}")
        elif isinstance(clause, ast.LetClause):
            lines.append(f"let ${clause.var} := {_paren(clause.value)}")
        elif isinstance(clause, ast.WhereClause):
            lines.append(f"where {_paren(clause.condition)}")
        elif isinstance(clause, ast.GroupClause):
            keys = ", ".join(f"{_paren(key)} as ${var}"
                             for key, var in clause.keys)
            lines.append(f"group ${clause.source_var} as "
                         f"${clause.partition_var} by {keys}")
        else:
            assert isinstance(clause, ast.OrderClause)
            specs = []
            for spec in clause.specs:
                text = _paren(spec.key)
                if not spec.ascending:
                    text += " descending"
                if not spec.empty_least:
                    text += " empty greatest"
                specs.append(text)
            lines.append("order by " + ", ".join(specs))
    lines.append(f"return {_paren(expr.return_expr)}")
    return "\n".join(lines)


def _constructor(expr: ast.ElementConstructor) -> str:
    name = f"{expr.prefix}:{expr.name}" if expr.prefix else expr.name
    attrs = []
    for attr in expr.attributes:
        parts = []
        for part in attr.parts:
            if isinstance(part, str):
                parts.append(part.replace("&", "&amp;")
                             .replace('"', "&quot;")
                             .replace("{", "{{").replace("}", "}}"))
            else:
                parts.append("{" + _expr(part) + "}")
        attrs.append(f' {attr.name}="{"".join(parts)}"')
    open_tag = f"<{name}{''.join(attrs)}"
    if not expr.content:
        return open_tag + "/>"
    chunks = [open_tag + ">"]
    for part in expr.content:
        if isinstance(part, str):
            chunks.append(part.replace("&", "&amp;").replace("<", "&lt;")
                          .replace("{", "{{").replace("}", "}}"))
        elif isinstance(part, ast.ElementConstructor):
            chunks.append(_constructor(part))
        else:
            chunks.append("{" + _expr(part) + "}")
    chunks.append(f"</{name}>")
    return "".join(chunks)
