"""Atomic values, atomization, casts, comparisons, and arithmetic.

Items in the XQuery data model are nodes or atomic values. We represent
atomic values as native Python objects:

=================  =========================
xs type            Python representation
=================  =========================
xs:string          str
xs:boolean         bool
xs:integer family  int
xs:decimal         decimal.Decimal
xs:double/float    float
xs:date            datetime.date
xs:time            datetime.time
xs:dateTime        datetime.datetime
xs:untypedAtomic   UntypedAtomic (str subclass)
=================  =========================

Sequences are plain Python lists, always kept flat.

NULL rule (see repro.xmlmodel.model): atomizing an element with no
children yields the empty sequence, so SQL NULL survives round trips
through constructed row elements.
"""

from __future__ import annotations

import datetime
import math
from decimal import Decimal, InvalidOperation

from ..errors import XQueryDynamicError, XQueryTypeError
from ..xmlmodel import Attribute, Document, Element, Text

Sequence = list  # type alias for readability


class UntypedAtomic(str):
    """xs:untypedAtomic — the atomization result of untyped elements."""

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"UntypedAtomic({str.__repr__(self)})"


def is_node(item: object) -> bool:
    return isinstance(item, (Element, Text, Attribute, Document))


def is_numeric_value(item: object) -> bool:
    return isinstance(item, (int, float, Decimal)) \
        and not isinstance(item, bool)


# ---------------------------------------------------------------------------
# Atomization (fn:data semantics)
# ---------------------------------------------------------------------------

_CAST_BY_ANNOTATION = {
    "string": lambda s: s,
    "boolean": lambda s: _parse_boolean(s),
    "short": int,
    "int": int,
    "integer": int,
    "long": int,
    "decimal": Decimal,
    "float": float,
    "double": float,
    "date": datetime.date.fromisoformat,
    "time": datetime.time.fromisoformat,
    "dateTime": lambda s: datetime.datetime.fromisoformat(s),
}


def parse_lexical(xs_type: str, text: str) -> object:
    """Parse a lexical value for an xs: simple type (schema validation
    for externally sourced data, e.g. CSV-backed data services)."""
    cast = _CAST_BY_ANNOTATION.get(xs_type)
    if cast is None:
        raise XQueryTypeError(f"unknown simple type xs:{xs_type}",
                              code="XPTY0004")
    try:
        return cast(text.strip() if xs_type != "string" else text)
    except (ValueError, InvalidOperation) as exc:
        raise XQueryDynamicError(
            f"cannot interpret {text!r} as xs:{xs_type}",
            code="FORG0001") from exc


def atomize_item(item: object) -> Sequence:
    """Atomize one item, returning a (possibly empty) sequence."""
    if isinstance(item, Element):
        if item.is_empty():
            return []  # the SQL NULL encoding
        value = item.string_value()
        if item.type_annotation is not None:
            cast = _CAST_BY_ANNOTATION.get(item.type_annotation)
            if cast is None:
                raise XQueryTypeError(
                    f"unknown type annotation {item.type_annotation}",
                    code="XPTY0004")
            try:
                return [cast(value.strip()
                             if item.type_annotation != "string" else value)]
            except (ValueError, InvalidOperation) as exc:
                raise XQueryDynamicError(
                    f"cannot interpret {value!r} as "
                    f"xs:{item.type_annotation}", code="FORG0001") from exc
        return [UntypedAtomic(value)]
    if isinstance(item, (Text, Attribute)):
        return [UntypedAtomic(item.string_value())]
    if isinstance(item, Document):
        return [UntypedAtomic(item.string_value())]
    return [item]


def atomize(sequence: Sequence) -> Sequence:
    """fn:data over a sequence."""
    result: list = []
    for item in sequence:
        result.extend(atomize_item(item))
    return result


def single_atomic(sequence: Sequence, context: str) -> object | None:
    """Atomize and require at most one value; None for empty."""
    values = atomize(sequence)
    if not values:
        return None
    if len(values) > 1:
        raise XQueryTypeError(
            f"{context}: expected a single atomic value, got a sequence "
            f"of {len(values)}", code="XPTY0004")
    return values[0]


# ---------------------------------------------------------------------------
# String values and boolean parsing
# ---------------------------------------------------------------------------


def _parse_boolean(text: str) -> bool:
    text = text.strip()
    if text in ("true", "1"):
        return True
    if text in ("false", "0"):
        return False
    raise ValueError(f"invalid xs:boolean literal {text!r}")


def string_value(item: object) -> str:
    """fn:string of a single item."""
    if is_node(item):
        return item.string_value()
    return serialize_atomic(item)


def serialize_atomic(value: object) -> str:
    """Lexical form of an atomic value, SQL-result-friendly.

    This implements ``fn-bea:serialize-atomic``. Deviation from canonical
    XML Schema lexical forms, on purpose: integral doubles print without
    an exponent ("12", not "1.2E1") because the driver's text codec parses
    these strings back by SQL column type.
    """
    if type(value) is str:
        return value
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        if math.isnan(value):
            return "NaN"
        if math.isinf(value):
            return "INF" if value > 0 else "-INF"
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return repr(value)
    if isinstance(value, Decimal):
        return format(value, "f")
    if isinstance(value, datetime.datetime):
        return value.isoformat(sep="T")
    if isinstance(value, (datetime.date, datetime.time)):
        return value.isoformat()
    return str(value)


# ---------------------------------------------------------------------------
# Effective boolean value
# ---------------------------------------------------------------------------


def effective_boolean_value(sequence: Sequence) -> bool:
    """EBV per XQuery 1.0 section 2.4.3."""
    if not sequence:
        return False
    first = sequence[0]
    if is_node(first):
        return True
    if len(sequence) > 1:
        raise XQueryTypeError(
            "effective boolean value of a multi-item atomic sequence",
            code="FORG0006")
    if isinstance(first, bool):
        return first
    if isinstance(first, str):  # includes UntypedAtomic
        return len(first) > 0
    if is_numeric_value(first):
        if isinstance(first, float) and math.isnan(first):
            return False
        return first != 0
    raise XQueryTypeError(
        f"no effective boolean value for {type(first).__name__}",
        code="FORG0006")


# ---------------------------------------------------------------------------
# Numeric promotion, arithmetic
# ---------------------------------------------------------------------------


def _to_numeric(value: object, context: str) -> int | Decimal | float:
    if isinstance(value, UntypedAtomic):
        try:
            return float(value)
        except ValueError as exc:
            raise XQueryDynamicError(
                f"{context}: cannot cast {str(value)!r} to xs:double",
                code="FORG0001") from exc
    if is_numeric_value(value):
        return value
    raise XQueryTypeError(
        f"{context}: operand is not numeric ({type(value).__name__})",
        code="XPTY0004")


def _promote_pair(a, b):
    """Promote two numerics to a common representation."""
    if isinstance(a, float) or isinstance(b, float):
        return float(a), float(b)
    if isinstance(a, Decimal) or isinstance(b, Decimal):
        return (a if isinstance(a, Decimal) else Decimal(a),
                b if isinstance(b, Decimal) else Decimal(b))
    return a, b


def arithmetic(op: str, left: Sequence, right: Sequence) -> Sequence:
    """Evaluate ``left op right`` with XQuery empty-sequence propagation."""
    lv = single_atomic(left, f"left operand of {op}")
    rv = single_atomic(right, f"right operand of {op}")
    if lv is None or rv is None:
        return []
    a = _to_numeric(lv, f"left operand of {op}")
    b = _to_numeric(rv, f"right operand of {op}")
    a, b = _promote_pair(a, b)
    try:
        if op == "+":
            return [a + b]
        if op == "-":
            return [a - b]
        if op == "*":
            return [a * b]
        if op == "div":
            if isinstance(a, int) and isinstance(b, int):
                # integer div integer is xs:decimal per F&O 6.2.4
                return [Decimal(a) / Decimal(b)]
            return [a / b]
        if op == "idiv":
            if isinstance(a, int) and isinstance(b, int):
                quotient = Decimal(a) / Decimal(b)
            else:
                quotient = a / b
            return [int(quotient)]  # truncates toward zero
        if op == "mod":
            # XQuery mod truncates (result takes the dividend's sign).
            if isinstance(a, float):
                return [math.fmod(a, b)]
            if isinstance(a, int) and isinstance(b, int):
                return [a - b * int(Decimal(a) / Decimal(b))]
            return [a - b * int(a / b)]
    except (ZeroDivisionError, InvalidOperation):
        if op == "div" and isinstance(a, float):
            if a == 0:
                return [float("nan")]
            return [math.copysign(math.inf, a) * math.copysign(1.0, b)]
        raise XQueryDynamicError(f"division by zero in {op}",
                                 code="FOAR0001") from None
    raise XQueryTypeError(f"unknown arithmetic operator {op}")


def negate(operand: Sequence) -> Sequence:
    value = single_atomic(operand, "unary minus")
    if value is None:
        return []
    number = _to_numeric(value, "unary minus")
    return [-number]


# ---------------------------------------------------------------------------
# Comparisons
# ---------------------------------------------------------------------------

_OP_NAMES = {"eq": "eq", "ne": "ne", "lt": "lt", "le": "le",
             "gt": "gt", "ge": "ge",
             "=": "eq", "!=": "ne", "<": "lt", "<=": "le",
             ">": "gt", ">=": "ge"}


def _coerce_for_value_comparison(a, b):
    """Cast untyped operands per the value-comparison rules."""
    if isinstance(a, UntypedAtomic):
        a = str(a)
    if isinstance(b, UntypedAtomic):
        b = str(b)
    return a, b


def _coerce_for_general_comparison(a, b):
    """General comparisons cast untyped to the *other* operand's type."""
    if isinstance(a, UntypedAtomic) and not isinstance(b, UntypedAtomic):
        a = cast_untyped_to_type_of(a, b)
    elif isinstance(b, UntypedAtomic) and not isinstance(a, UntypedAtomic):
        b = cast_untyped_to_type_of(b, a)
    else:
        a, b = _coerce_for_value_comparison(a, b)
    return a, b


def cast_untyped_to_type_of(untyped: UntypedAtomic, other: object):
    text = str(untyped)
    try:
        if is_numeric_value(other):
            return float(text)
        if isinstance(other, bool):
            return _parse_boolean(text)
        if isinstance(other, datetime.datetime):
            return datetime.datetime.fromisoformat(text.strip())
        if isinstance(other, datetime.date):
            return datetime.date.fromisoformat(text.strip())
        if isinstance(other, datetime.time):
            return datetime.time.fromisoformat(text.strip())
    except ValueError as exc:
        raise XQueryDynamicError(
            f"cannot cast {text!r} for comparison with "
            f"{type(other).__name__}", code="FORG0001") from exc
    return text


def _comparison_category(value: object) -> str:
    if isinstance(value, bool):
        return "boolean"
    if is_numeric_value(value):
        return "numeric"
    if isinstance(value, str):
        return "string"
    if isinstance(value, datetime.datetime):
        return "dateTime"
    if isinstance(value, datetime.date):
        return "date"
    if isinstance(value, datetime.time):
        return "time"
    return type(value).__name__


def compare_values(op: str, a: object, b: object) -> bool:
    """Compare two (already coerced) atomic values."""
    name = _OP_NAMES[op]
    cat_a, cat_b = _comparison_category(a), _comparison_category(b)
    if cat_a != cat_b:
        raise XQueryTypeError(
            f"cannot compare {cat_a} with {cat_b}", code="XPTY0004")
    if cat_a == "numeric":
        a, b = _promote_pair(a, b)
    if name == "eq":
        return a == b
    if name == "ne":
        return a != b
    try:
        if name == "lt":
            return a < b
        if name == "le":
            return a <= b
        if name == "gt":
            return a > b
        return a >= b
    except TypeError as exc:
        raise XQueryTypeError(
            f"values of type {type(a).__name__} are not ordered",
            code="XPTY0004") from exc


def value_comparison(op: str, left: Sequence, right: Sequence) -> Sequence:
    """eq/ne/lt/le/gt/ge: empty operand yields the empty sequence."""
    lv = single_atomic(left, f"left operand of {op}")
    rv = single_atomic(right, f"right operand of {op}")
    if lv is None or rv is None:
        return []
    a, b = _coerce_for_value_comparison(lv, rv)
    return [compare_values(op, a, b)]


def general_comparison(op: str, left: Sequence, right: Sequence) -> bool:
    """= != < <= > >=: existentially quantified over both sequences."""
    lvs = atomize(left)
    rvs = atomize(right)
    for lv in lvs:
        for rv in rvs:
            a, b = _coerce_for_general_comparison(lv, rv)
            if compare_values(op, a, b):
                return True
    return False


def order_key(value: object | None):
    """Sort key for ORDER BY: empty (None) sorts least; values sort within
    their comparable class."""
    if value is None:
        return (0, 0, 0)
    if isinstance(value, bool):
        return (1, 0, value)
    if is_numeric_value(value):
        return (1, 1, float(value))
    if isinstance(value, str):
        return (1, 2, str(value))
    if isinstance(value, datetime.datetime):
        return (1, 3, value.isoformat())
    if isinstance(value, datetime.date):
        return (1, 4, value.isoformat())
    if isinstance(value, datetime.time):
        return (1, 5, value.isoformat())
    raise XQueryTypeError(
        f"cannot order values of type {type(value).__name__}",
        code="XPTY0004")


# ---------------------------------------------------------------------------
# Constructor-function casts (xs:TYPE(value))
# ---------------------------------------------------------------------------


def cast_to(type_local: str, sequence: Sequence) -> Sequence:
    """Apply an xs: constructor function; empty input yields empty."""
    value = single_atomic(sequence, f"xs:{type_local} cast")
    if value is None:
        return []
    try:
        return [_cast_value(type_local, value)]
    except (ValueError, InvalidOperation, OverflowError) as exc:
        raise XQueryDynamicError(
            f"cannot cast {serialize_atomic(value)!r} to xs:{type_local}",
            code="FORG0001") from exc


def _cast_value(type_local: str, value: object):
    if type_local == "string":
        return serialize_atomic(value)
    if type_local == "untypedAtomic":
        return UntypedAtomic(serialize_atomic(value))
    if type_local == "boolean":
        if isinstance(value, bool):
            return value
        if is_numeric_value(value):
            return value != 0
        return _parse_boolean(str(value))
    if type_local in ("integer", "int", "long", "short"):
        if isinstance(value, str):
            return int(str(value).strip())
        if isinstance(value, bool):
            return int(value)
        if is_numeric_value(value):
            return int(value)
        raise ValueError(f"bad source type for xs:{type_local}")
    if type_local == "decimal":
        if isinstance(value, bool):
            return Decimal(int(value))
        if isinstance(value, float):
            return Decimal(repr(value))
        if isinstance(value, (int, Decimal)):
            return Decimal(value)
        return Decimal(str(value).strip())
    if type_local in ("double", "float"):
        if isinstance(value, bool):
            return float(value)
        if is_numeric_value(value):
            return float(value)
        text = str(value).strip()
        if text == "INF":
            return math.inf
        if text == "-INF":
            return -math.inf
        return float(text)
    if type_local == "date":
        if isinstance(value, datetime.datetime):
            return value.date()
        if isinstance(value, datetime.date):
            return value
        return datetime.date.fromisoformat(str(value).strip())
    if type_local == "time":
        if isinstance(value, datetime.datetime):
            return value.time()
        if isinstance(value, datetime.time):
            return value
        return datetime.time.fromisoformat(str(value).strip())
    if type_local == "dateTime":
        if isinstance(value, datetime.datetime):
            return value
        if isinstance(value, datetime.date):
            return datetime.datetime.combine(value, datetime.time())
        return datetime.datetime.fromisoformat(str(value).strip())
    raise XQueryTypeError(f"unknown cast target xs:{type_local}",
                          code="XPST0051")
